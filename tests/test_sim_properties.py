"""Property-based tests for the simulation kernel.

These exercise the invariants every higher-level substrate relies on:
deterministic ordering, monotonic time, resource conservation and store
conservation under arbitrary programs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Environment, PriorityStore, PriorityItem, Resource, Store


@settings(max_examples=60, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=50))
def test_property_events_processed_in_time_order(delays):
    env = Environment()
    fired = []

    def waiter(env, delay, idx):
        yield env.timeout(delay)
        fired.append((env.now, idx))

    for i, delay in enumerate(delays):
        env.process(waiter(env, delay, i))
    env.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    assert env.now == pytest.approx(max(delays))


@settings(max_examples=60, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=30))
def test_property_same_seed_same_schedule_is_deterministic(delays):
    def run_once():
        env = Environment()
        order = []

        def proc(env, d, i):
            yield env.timeout(d)
            order.append(i)

        for i, d in enumerate(delays):
            env.process(proc(env, d, i))
        env.run()
        return order

    assert run_once() == run_once()


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    holds=st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=1, max_size=40),
)
def test_property_resource_never_exceeds_capacity(capacity, holds):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    max_observed = {"users": 0}

    def user(env, resource, hold):
        with resource.request() as req:
            yield req
            max_observed["users"] = max(max_observed["users"], resource.count)
            assert resource.count <= capacity
            yield env.timeout(hold)

    for hold in holds:
        env.process(user(env, resource, hold))
    env.run()
    assert max_observed["users"] <= capacity
    assert resource.count == 0
    assert resource.queued == 0


@settings(max_examples=40, deadline=None)
@given(
    puts=st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=40),
)
def test_property_store_conserves_items(puts):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env, store):
        for item in puts:
            yield store.put(item)
            yield env.timeout(0.1)

    def consumer(env, store):
        for _ in range(len(puts)):
            item = yield store.get()
            received.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == puts
    assert len(store) == 0


@settings(max_examples=40, deadline=None)
@given(
    items=st.lists(st.tuples(st.integers(min_value=0, max_value=100),
                             st.integers(min_value=0, max_value=10**6)),
                   min_size=1, max_size=40),
)
def test_property_priority_store_always_pops_minimum(items):
    env = Environment()
    store = PriorityStore(env)
    popped = []

    def producer(env, store):
        for priority, value in items:
            yield store.put(PriorityItem(priority, value))

    def consumer(env, store):
        yield env.timeout(1.0)
        for _ in range(len(items)):
            got = yield store.get()
            popped.append(got.priority)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert popped == sorted(p for p, _ in items)


@settings(max_examples=40, deadline=None)
@given(
    amounts=st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=1, max_size=30),
)
def test_property_container_levels_conserved(amounts):
    env = Environment()
    tank = Container(env, capacity=10**9, init=0.0)

    def producer(env, tank):
        for amount in amounts:
            yield tank.put(amount)
            yield env.timeout(0.01)

    def consumer(env, tank):
        for amount in amounts:
            yield tank.get(amount)

    env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert tank.level == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=1, max_value=30), hold=st.floats(min_value=0.5, max_value=5.0))
def test_property_fifo_resource_grants_in_arrival_order(n, hold):
    env = Environment()
    resource = Resource(env, capacity=1)
    grant_order = []

    def user(env, resource, idx):
        yield env.timeout(idx * 0.001)  # strictly increasing arrival order
        with resource.request() as req:
            yield req
            grant_order.append(idx)
            yield env.timeout(hold)

    for i in range(n):
        env.process(user(env, resource, i))
    env.run()
    assert grant_order == list(range(n))
