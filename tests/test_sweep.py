"""Sweep plane: pickle-safety, seeding, sharded execution and merge laws.

The contracts the million-request sweeps rely on:

* every shipped deployment/gateway config pickle-round-trips (cells ship to
  spawned workers);
* named random streams are pure functions of (root seed, key) — independent
  of spawn order and worker assignment;
* a sweep's merged metrics are bit-identical whether run on 1 worker or 4;
* histogram merges are exact and order-independent; merged quantiles stay
  within the documented relative-error bound of the pooled exact quantiles;
* crashed or failing shards are retried a bounded number of times and one
  bad cell never takes down the sweep.
"""

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import RandomSource, stable_seed
from repro.core import (
    federated_config,
    quickstart_config,
    sophia_benchmark_config,
)
from repro.gateway import GatewayConfig, default_middleware_factories
from repro.metrics import DEFAULT_REL_ERR, LogBucketHistogram, MergeableSummary, RequestRecord
from repro.placement import ReservationMiddleware
from repro.sweep import ArrivalSpec, ScenarioSpec, SweepRunner, SweepSpec

MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"
MODEL_70B = "meta-llama/Llama-3.3-70B-Instruct"


# ---------------------------------------------------------------- pickle safety
class TestConfigPickleSafety:
    @pytest.mark.parametrize("build", [
        lambda: quickstart_config(),
        lambda: quickstart_config(generate_text=False),
        lambda: sophia_benchmark_config(MODEL_70B),
        lambda: sophia_benchmark_config(MODEL_8B, max_instances=2, num_nodes=4),
        lambda: federated_config(MODEL_70B),
        lambda: federated_config(MODEL_8B, sophia_nodes=2, polaris_nodes=2),
    ])
    def test_shipped_deployment_configs_round_trip(self, build):
        config = build()
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config

    def test_gateway_config_with_middlewares_round_trips(self):
        config = GatewayConfig(
            middleware_factories=default_middleware_factories()
            + [ReservationMiddleware.factory()]
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone.middleware_factories == config.middleware_factories

    def test_scenario_spec_round_trips(self):
        spec = ScenarioSpec(
            key="grid/rate=4/seed=1", runner="engine", model=MODEL_8B,
            num_requests=100, arrival=ArrivalSpec.for_rate(4.0), seed=1,
            kernel_queue="calendar", engine={"macro_stepping": True},
            params={"deployment": sophia_benchmark_config(MODEL_8B)},
            tags={"rate": 4.0, "seed": 1},
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


# ---------------------------------------------------------------- named streams
class TestSpawnNamed:
    def test_same_key_same_stream(self):
        a = RandomSource(42).spawn_named("grid/rate=4").uniform(0, 1)
        b = RandomSource(42).spawn_named("grid/rate=4").uniform(0, 1)
        assert a == b

    def test_different_keys_differ(self):
        a = RandomSource(42).spawn_named("grid/rate=4").uniform(0, 1)
        b = RandomSource(42).spawn_named("grid/rate=8").uniform(0, 1)
        assert a != b

    def test_independent_of_spawn_order(self):
        root1 = RandomSource(42)
        first_then_second = (root1.spawn_named("a").uniform(0, 1),
                             root1.spawn_named("b").uniform(0, 1))
        root2 = RandomSource(42)
        second_then_first = (root2.spawn_named("b").uniform(0, 1),
                             root2.spawn_named("a").uniform(0, 1))
        assert first_then_second == (second_then_first[1], second_then_first[0])

    def test_stable_seed_is_pure(self):
        assert stable_seed(0, "grid/a", "workload") == stable_seed(0, "grid/a", "workload")
        assert stable_seed(0, "grid/a") != stable_seed(0, "grid/b")
        assert stable_seed(1, "grid/a") != stable_seed(0, "grid/a")


# ---------------------------------------------------------------- grid expansion
class TestSweepSpec:
    def test_expand_is_deterministic_and_complete(self):
        spec = SweepSpec("g", runner="engine",
                         base={"model": MODEL_8B, "num_requests": 10},
                         axes={"rate": [1.0, 2.0], "seed": [0, 1, 2]})
        cells = spec.expand()
        assert len(cells) == spec.num_cells == 6
        assert [c.key for c in cells] == [c.key for c in spec.expand()]
        assert cells[0].key == "g/rate=1/seed=0"
        # last axis varies fastest
        assert cells[1].key == "g/rate=1/seed=1"
        # spec fields route to fields, everything else to params/tags
        assert cells[0].num_requests == 10 and cells[0].params["rate"] == 1.0
        assert cells[0].tags == {"rate": 1.0, "seed": 0}

    def test_duplicate_keys_rejected(self):
        cells = [ScenarioSpec(key="same", runner="engine"),
                 ScenarioSpec(key="same", runner="engine")]
        with pytest.raises(Exception, match="duplicate"):
            SweepRunner().run(cells)

    def test_empty_axis_rejected(self):
        with pytest.raises(Exception, match="no values"):
            SweepSpec("g", runner="engine", axes={"rate": []}).expand()


# ---------------------------------------------------------------- worker identity
def _tiny_grid():
    return SweepSpec(
        "identity", runner="engine",
        base={"model": MODEL_8B, "num_requests": 30},
        axes={"rate": [4.0, 16.0], "seed": [0, 1]},
    ).expand()


class TestWorkerCountIdentity:
    def test_1_vs_4_workers_bit_identical(self):
        """The tentpole determinism property: merged metrics do not depend on
        the worker count or on shard completion order."""
        cells = _tiny_grid()
        serial = SweepRunner(workers=1).run(cells)
        parallel = SweepRunner(workers=4).run(cells)
        assert serial.ok and parallel.ok
        assert serial.merged().fingerprint() == parallel.merged().fingerprint()
        # per-shard payloads are identical too, not just the reduction
        sp, pp = serial.payload_by_key(), parallel.payload_by_key()
        for key in sp:
            assert sp[key]["mergeable"].fingerprint() == pp[key]["mergeable"].fingerprint()
        # and real worker processes actually ran the parallel sweep
        assert any(e["pid"] != os.getpid() for e in parallel.timeline)

    def test_seed_axis_varies_results(self):
        cells = _tiny_grid()
        result = SweepRunner(workers=1).run(cells)
        by_key = result.payload_by_key()
        assert (by_key["identity/rate=4/seed=0"]["mergeable"].fingerprint()
                != by_key["identity/rate=4/seed=1"]["mergeable"].fingerprint())


# ---------------------------------------------------------------- retry bounds
def flaky_runner(spec):
    sentinel = spec.params["sentinel"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("attempted")
        raise RuntimeError("transient shard failure")
    return {"mergeable": MergeableSummary(label=spec.key, num_requests=1,
                                          num_successful=1, duration_s=1.0)}


def crashing_runner(spec):
    os._exit(13)  # hard worker crash: no exception, no cleanup


def ok_runner(spec):
    return {"mergeable": MergeableSummary(label=spec.key, num_requests=1,
                                          num_successful=1, duration_s=1.0)}


class TestBoundedRetry:
    def test_transient_failure_retried_serially(self, tmp_path):
        sentinel = str(tmp_path / "flaky")
        cell = ScenarioSpec(key="flaky", runner=flaky_runner,
                            params={"sentinel": sentinel})
        result = SweepRunner(workers=1, max_retries=1).run([cell])
        assert result.ok
        assert result.results[0].attempts == 2

    def test_retries_are_bounded(self):
        def always_failing(spec):
            raise RuntimeError("permanent shard failure")

        cell = ScenarioSpec(key="hopeless", runner=always_failing)
        result = SweepRunner(workers=1, max_retries=2).run([cell])
        assert not result.ok
        assert result.results[0].attempts == 3
        assert "permanent shard failure" in result.results[0].error

    def test_worker_crash_does_not_kill_sweep(self):
        """A hard worker crash (os._exit) breaks the pool; the runner must
        rebuild it, retry the crashed shard, and keep the healthy results."""
        cells = [ScenarioSpec(key="ok-1", runner=ok_runner),
                 ScenarioSpec(key="crash", runner=crashing_runner),
                 ScenarioSpec(key="ok-2", runner=ok_runner)]
        # fork context: test-local runners stay importable in the children
        result = SweepRunner(workers=2, mp_context="fork", max_retries=1).run(cells)
        assert not result.ok
        assert [r.key for r in result.failures] == ["crash"]
        assert result.results[0].ok and result.results[2].ok
        crash = result.results[1]
        assert crash.attempts == 2


# ---------------------------------------------------------------- merge laws
def _histogram_from(values):
    h = LogBucketHistogram()
    h.add_many(values)
    return h


positive_samples = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200)


class TestMergeLaws:
    @settings(max_examples=60, deadline=None)
    @given(values=positive_samples, data=st.data())
    def test_histogram_merge_is_order_independent(self, values, data):
        """Sharding and merge order never change the bucket table."""
        num_shards = data.draw(st.integers(min_value=1, max_value=5))
        assignment = data.draw(st.lists(
            st.integers(min_value=0, max_value=num_shards - 1),
            min_size=len(values), max_size=len(values)))
        shards = [[] for _ in range(num_shards)]
        for value, shard in zip(values, assignment):
            shards[shard].append(value)
        histograms = [_histogram_from(shard) for shard in shards]
        order = data.draw(st.permutations(range(num_shards)))
        merged = histograms[order[0]]
        for index in order[1:]:
            merged = merged.merge(histograms[index])
        assert merged == _histogram_from(values)

    @settings(max_examples=60, deadline=None)
    @given(values=positive_samples)
    def test_histogram_merge_is_associative(self, values):
        third = max(1, len(values) // 3)
        a = _histogram_from(values[:third])
        b = _histogram_from(values[third:2 * third])
        c = _histogram_from(values[2 * third:])
        assert (a.merge(b)).merge(c) == a.merge(b.merge(c))

    def test_canonical_order_merge_is_bit_identical(self):
        """The runner merges in cell order; the same order must always
        produce the same fingerprint (floats and all)."""
        rng = np.random.default_rng(7)
        shards = []
        for i in range(6):
            records = [RequestRecord(request_id=f"s{i}-r{j}", model="m",
                                     send_time=0.0,
                                     completion_time=float(v),
                                     prompt_tokens=10, output_tokens=5,
                                     success=True)
                       for j, v in enumerate(rng.lognormal(1.0, 1.0, size=50))]
            shards.append(MergeableSummary.from_records(records, label=f"s{i}"))
        once = MergeableSummary.merge_all(shards, label="all")
        again = MergeableSummary.merge_all(shards, label="all")
        assert once.fingerprint() == again.fingerprint()
        assert once.num_requests == 300 and once.num_shards == 6

    def test_layout_mismatch_rejected(self):
        with pytest.raises(ValueError, match="layout"):
            LogBucketHistogram(rel_err=0.01).merge(LogBucketHistogram(rel_err=0.02))


# ---------------------------------------------------------------- quantile bound
class TestQuantileAccuracy:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_merged_quantiles_within_documented_bound(self, seed, q):
        """Merged-shard quantiles are within ``rel_err`` relative error of the
        exact inverted-CDF quantile of the pooled raw samples."""
        rng = np.random.default_rng(seed)
        pooled = rng.lognormal(mean=1.5, sigma=1.2, size=4000)
        shards = np.array_split(pooled, 8)
        merged = None
        for shard in shards:
            h = _histogram_from(shard)
            merged = h if merged is None else merged.merge(h)
        exact = float(np.percentile(pooled, q * 100, method="inverted_cdf"))
        estimate = merged.quantile(q)
        assert abs(estimate - exact) / exact <= DEFAULT_REL_ERR

    def test_bound_documented_in_summary_extras(self):
        summary = MergeableSummary.from_records(
            [RequestRecord(request_id="r", model="m", send_time=0.0,
                           completion_time=1.0, prompt_tokens=1,
                           output_tokens=1, success=True)])
        extras = summary.to_benchmark_summary().extras
        assert extras["quantile_rel_err"] == DEFAULT_REL_ERR
