"""Tests for compute endpoints: cold starts, hot nodes, auto-scaling,
fault tolerance, batch jobs and the client SDK."""

import pytest

from repro.auth import GlobusAuthLikeService, IdentityProvider
from repro.cluster import PBSScheduler, SchedulerConfig, small_test_cluster
from repro.common import AuthenticationError, ConfigurationError, NotFoundError
from repro.faas import (
    HANDLER_BATCH,
    HANDLER_CHAT,
    ComputeClient,
    ComputeEndpoint,
    EndpointConfig,
    ModelHostingConfig,
    RelayService,
    TaskStatus,
)
from repro.serving import InferenceRequest, default_catalog
from repro.sim import Environment

CATALOG = default_catalog()
MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"
MODEL_70B = "meta-llama/Llama-3.3-70B-Instruct"


def build_stack(
    num_nodes=2,
    models=None,
    poll_interval=0.5,
    monitor_interval=10.0,
    scheduler_cfg=None,
):
    """Environment + scheduler + endpoint + relay wired together."""
    env = Environment()
    cluster = small_test_cluster(num_nodes=num_nodes)
    scheduler = PBSScheduler(
        env, cluster, scheduler_cfg or SchedulerConfig(cycle_latency_s=1.0, prologue_s=2.0)
    )
    models = models or [ModelHostingConfig(model=MODEL_8B, max_parallel_tasks=16)]
    config = EndpointConfig(
        endpoint_id="ep-test",
        cluster=cluster.name,
        models=models,
        poll_interval_s=poll_interval,
        monitor_interval_s=monitor_interval,
    )
    endpoint = ComputeEndpoint(env, scheduler, CATALOG, config)
    relay = RelayService(env)
    relay.functions.register("fn-chat", "chat", HANDLER_CHAT, owner="admins")
    relay.functions.register("fn-batch", "batch", HANDLER_BATCH, owner="admins")
    relay.register_endpoint(endpoint)
    return env, cluster, scheduler, endpoint, relay


def chat_payload(i, model=MODEL_8B, output=60):
    request = InferenceRequest(
        request_id=f"req-{i:05d}", model=model, prompt_tokens=200, max_output_tokens=output
    )
    return {"request": request}


def test_endpoint_cluster_mismatch_rejected():
    env = Environment()
    cluster = small_test_cluster()
    scheduler = PBSScheduler(env, cluster)
    config = EndpointConfig(endpoint_id="ep", cluster="another-cluster", models=[])
    with pytest.raises(ConfigurationError):
        ComputeEndpoint(env, scheduler, CATALOG, config)


def test_cold_start_first_request_acquires_node_and_loads_model():
    env, cluster, scheduler, endpoint, relay = build_stack()
    future = relay.submit("fn-chat", "ep-test", chat_payload(0))
    env.run(until=future.done)
    result = future.record.result
    assert future.record.status == TaskStatus.COMPLETED
    assert result.success
    # Cold start: scheduler queue + prologue + 8B model load (~29s) + inference.
    assert future.record.total_time_s > 25.0
    assert endpoint.ready_instance_count() == 1


def test_hot_instance_serves_second_request_quickly():
    env, cluster, scheduler, endpoint, relay = build_stack()
    first = relay.submit("fn-chat", "ep-test", chat_payload(0))
    env.run(until=first.done)

    second = relay.submit("fn-chat", "ep-test", chat_payload(1))
    start = env.now
    env.run(until=second.done)
    warm_latency = env.now - start
    assert warm_latency < 10.0
    assert warm_latency < first.record.total_time_s / 3


def test_hot_idle_timeout_releases_instance_and_job():
    env, cluster, scheduler, endpoint, relay = build_stack(
        models=[ModelHostingConfig(model=MODEL_8B, hot_idle_timeout_s=120.0)],
        monitor_interval=10.0,
    )
    future = relay.submit("fn-chat", "ep-test", chat_payload(0))
    env.run(until=future.done)
    assert endpoint.ready_instance_count() == 1
    # After the idle timeout the monitor retires the instance and frees nodes.
    env.run(until=env.now + 300.0)
    assert endpoint.ready_instance_count() == 0
    assert len(cluster.free_nodes) == cluster.total_nodes
    status = endpoint.model_status(MODEL_8B)[0]
    assert status.state == "cold"


def test_model_status_transitions_cold_starting_running():
    env, cluster, scheduler, endpoint, relay = build_stack()
    assert endpoint.model_status(MODEL_8B)[0].state == "cold"
    future = relay.submit("fn-chat", "ep-test", chat_payload(0))
    env.run(until=10.0)
    # Node acquired (or queued) and model loading.
    assert endpoint.model_status(MODEL_8B)[0].state in ("queued", "starting")
    env.run(until=future.done)
    assert endpoint.model_status(MODEL_8B)[0].state == "running"


def test_unhosted_model_task_fails_cleanly():
    env, cluster, scheduler, endpoint, relay = build_stack()
    payload = chat_payload(0, model=MODEL_70B)
    future = relay.submit("fn-chat", "ep-test", payload)
    env.run(until=future.done)
    assert future.record.status == TaskStatus.FAILED
    assert "not hosted" in future.record.error


def test_endpoint_rejects_task_without_trusted_client():
    env = Environment()
    cluster = small_test_cluster()
    scheduler = PBSScheduler(env, cluster, SchedulerConfig(cycle_latency_s=1.0, prologue_s=0.0))
    config = EndpointConfig(
        endpoint_id="ep-secure",
        cluster=cluster.name,
        models=[ModelHostingConfig(model=MODEL_8B)],
        required_client_id="admin-client",
        poll_interval_s=0.1,
    )
    endpoint = ComputeEndpoint(env, scheduler, CATALOG, config)
    relay = RelayService(env)
    relay.functions.register("fn-chat", "chat", HANDLER_CHAT, owner="admins")
    relay.register_endpoint(endpoint)

    bad = relay.submit("fn-chat", "ep-secure", chat_payload(0))
    env.run(until=bad.done)
    assert bad.record.status == TaskStatus.FAILED

    good_payload = chat_payload(1)
    good_payload["client_id"] = "admin-client"
    good = relay.submit("fn-chat", "ep-secure", good_payload)
    env.run(until=good.done)
    assert good.record.status == TaskStatus.COMPLETED


def test_auto_scaling_launches_additional_instances_under_load():
    env, cluster, scheduler, endpoint, relay = build_stack(
        num_nodes=3,
        models=[
            ModelHostingConfig(
                model=MODEL_8B,
                max_instances=3,
                max_parallel_tasks=4,
                scale_up_queue_per_instance=2,
            )
        ],
    )
    futures = [relay.submit("fn-chat", "ep-test", chat_payload(i, output=200)) for i in range(150)]
    env.run(until=env.all_of([f.done for f in futures]))
    assert endpoint.ready_instance_count() >= 2
    assert all(f.record.status == TaskStatus.COMPLETED for f in futures)
    # Instances never exceed the configured maximum.
    pool = endpoint.pools[MODEL_8B]
    assert len(pool.instances) <= 3


def test_auto_scaling_respects_max_instances_one():
    env, cluster, scheduler, endpoint, relay = build_stack(
        num_nodes=3,
        models=[ModelHostingConfig(model=MODEL_8B, max_instances=1, max_parallel_tasks=4)],
    )
    futures = [relay.submit("fn-chat", "ep-test", chat_payload(i)) for i in range(30)]
    env.run(until=env.all_of([f.done for f in futures]))
    pool = endpoint.pools[MODEL_8B]
    assert len(pool.instances) == 1


def test_fault_tolerance_restarts_failed_instance():
    env, cluster, scheduler, endpoint, relay = build_stack(monitor_interval=5.0)
    first = relay.submit("fn-chat", "ep-test", chat_payload(0))
    env.run(until=first.done)
    pool = endpoint.pools[MODEL_8B]
    instance = pool.ready_instances[0]
    instance.fail("injected failure")
    assert endpoint.ready_instance_count() == 0
    # The health monitor notices and relaunches within a couple of minutes.
    env.run(until=env.now + 200.0)
    assert pool.restarts == 1
    assert endpoint.ready_instance_count() == 1
    # New instance keeps serving requests.
    again = relay.submit("fn-chat", "ep-test", chat_payload(1))
    env.run(until=again.done)
    assert again.record.status == TaskStatus.COMPLETED


def test_prewarm_brings_model_up_without_traffic():
    env, cluster, scheduler, endpoint, relay = build_stack()
    events = endpoint.prewarm(MODEL_8B, instances=1)
    assert len(events) == 1
    env.run(until=events[0])
    assert endpoint.ready_instance_count() == 1
    assert endpoint.model_status(MODEL_8B)[0].state == "running"


def test_batch_handler_runs_dedicated_job():
    env, cluster, scheduler, endpoint, relay = build_stack()
    requests = [
        InferenceRequest(
            request_id=f"batch-{i}", model=MODEL_8B, prompt_tokens=150, max_output_tokens=100
        )
        for i in range(50)
    ]
    future = relay.submit("fn-batch", "ep-test", {"model": MODEL_8B, "requests": requests})
    env.run(until=future.done)
    assert future.record.status == TaskStatus.COMPLETED
    run_result = future.record.result
    assert run_result.num_completed == 50
    assert run_result.load_time_s > 0
    # The dedicated job was released afterwards.
    assert len(cluster.free_nodes) == cluster.total_nodes


def test_batch_handler_requires_model_and_requests():
    env, cluster, scheduler, endpoint, relay = build_stack()
    future = relay.submit("fn-batch", "ep-test", {"model": MODEL_8B, "requests": []})
    env.run(until=future.done)
    assert future.record.status == TaskStatus.FAILED


def test_model_status_unknown_model_raises():
    env, cluster, scheduler, endpoint, relay = build_stack()
    with pytest.raises(NotFoundError):
        endpoint.model_status("not-a-model-anyone-hosts")


# ---------------------------------------------------------------------------
# Compute client SDK
# ---------------------------------------------------------------------------

def make_auth(env):
    auth = GlobusAuthLikeService(env)
    auth.register_provider(IdentityProvider("ANL", "anl.gov"))
    auth.register_confidential_client("gateway-client", "s3cret", owner="admins")
    return auth


def test_compute_client_validates_confidential_client():
    env, cluster, scheduler, endpoint, relay = build_stack()
    auth = make_auth(env)
    client = ComputeClient(env, relay, "gateway-client", "s3cret", auth=auth)
    assert client.client_id == "gateway-client"
    with pytest.raises(AuthenticationError):
        ComputeClient(env, relay, "gateway-client", "wrong", auth=auth)


def test_compute_client_future_vs_polling_retrieval():
    env, cluster, scheduler, endpoint, relay = build_stack()
    auth = make_auth(env)
    client = ComputeClient(env, relay, "gateway-client", "s3cret", auth=auth)

    def run_future(env):
        fut = client.submit("fn-chat", "ep-test", chat_payload(0))
        result = yield from client.wait_future(fut)
        return (env.now, result)

    p1 = env.process(run_future(env))
    env.run(until=p1)
    t_future, result_future = p1.value
    assert result_future.success

    def run_polling(env):
        start = env.now
        fut = client.submit("fn-chat", "ep-test", chat_payload(1))
        result = yield from client.wait_polling(fut)
        return (env.now - start, result)

    p2 = env.process(run_polling(env))
    env.run(until=p2)
    t_polling, result_polling = p2.value
    assert result_polling.success
    # Polling quantises completion to the 2 s poll interval: the warm-path
    # latency via polling is strictly larger than via futures.
    warm_future_latency = None

    def run_future_again(env):
        start = env.now
        fut = client.submit("fn-chat", "ep-test", chat_payload(2))
        yield from client.wait_future(fut)
        return env.now - start

    p3 = env.process(run_future_again(env))
    env.run(until=p3)
    warm_future_latency = p3.value
    assert t_polling > warm_future_latency
