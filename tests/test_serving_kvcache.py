"""Tests (including property-based) for the paged KV-cache manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import KVCacheConfig, KVCacheManager


def make_manager(capacity_tokens=1600, block_size=16):
    return KVCacheManager(KVCacheConfig(capacity_tokens=capacity_tokens, block_size=block_size))


def test_config_validation():
    with pytest.raises(ValueError):
        KVCacheConfig(capacity_tokens=-1)
    with pytest.raises(ValueError):
        KVCacheConfig(capacity_tokens=100, block_size=0)


def test_blocks_for_rounds_up():
    mgr = make_manager()
    assert mgr.blocks_for(1) == 1
    assert mgr.blocks_for(16) == 1
    assert mgr.blocks_for(17) == 2
    assert mgr.blocks_for(0) == 0


def test_allocate_and_free():
    mgr = make_manager(capacity_tokens=160)  # 10 blocks
    assert mgr.total_blocks == 10
    assert mgr.allocate("a", 64)  # 4 blocks
    assert mgr.used_blocks == 4
    assert mgr.free_blocks == 6
    assert mgr.holds("a")
    mgr.free("a")
    assert mgr.used_blocks == 0
    assert not mgr.holds("a")


def test_allocate_fails_when_full():
    mgr = make_manager(capacity_tokens=160)
    assert mgr.allocate("a", 100)
    assert not mgr.allocate("b", 100)
    assert mgr.allocation_failures == 1


def test_duplicate_allocation_rejected():
    mgr = make_manager()
    mgr.allocate("a", 10)
    with pytest.raises(ValueError):
        mgr.allocate("a", 10)


def test_grow_within_block_is_free():
    mgr = make_manager()
    mgr.allocate("a", 10)
    used = mgr.used_blocks
    assert mgr.grow("a", 15)
    assert mgr.used_blocks == used


def test_grow_allocates_new_blocks():
    mgr = make_manager()
    mgr.allocate("a", 16)
    assert mgr.grow("a", 40)
    assert mgr.used_blocks == 3


def test_grow_unknown_sequence_raises():
    mgr = make_manager()
    with pytest.raises(KeyError):
        mgr.grow("ghost", 10)


def test_grow_fails_when_pool_exhausted():
    mgr = make_manager(capacity_tokens=64)  # 4 blocks
    mgr.allocate("a", 32)
    mgr.allocate("b", 32)
    assert not mgr.grow("a", 64)
    assert mgr.allocation_failures == 1


def test_preempt_tracks_counter():
    mgr = make_manager()
    mgr.allocate("a", 32)
    mgr.preempt("a")
    assert mgr.preemptions == 1
    assert mgr.used_blocks == 0
    # Preempting an unknown sequence is a no-op.
    mgr.preempt("ghost")
    assert mgr.preemptions == 1


def test_utilization_and_reset():
    mgr = make_manager(capacity_tokens=160)
    mgr.allocate("a", 80)
    assert mgr.utilization == pytest.approx(0.5)
    mgr.reset()
    assert mgr.used_blocks == 0
    assert mgr.utilization == 0.0


def test_zero_capacity_reports_full():
    mgr = make_manager(capacity_tokens=0)
    assert mgr.utilization == 1.0
    assert not mgr.can_allocate(1)


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=40),
    capacity=st.integers(min_value=160, max_value=8000),
)
def test_property_block_accounting_never_goes_negative_or_overflows(sizes, capacity):
    """Invariant: used + free == total, and used never exceeds total."""
    mgr = KVCacheManager(KVCacheConfig(capacity_tokens=capacity, block_size=16))
    allocated = []
    for i, tokens in enumerate(sizes):
        seq = f"seq-{i}"
        if mgr.allocate(seq, tokens):
            allocated.append(seq)
        assert 0 <= mgr.used_blocks <= mgr.total_blocks
        assert mgr.used_blocks + mgr.free_blocks == mgr.total_blocks
    # Free everything; the pool must return to empty.
    for seq in allocated:
        mgr.free(seq)
    assert mgr.used_blocks == 0


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "grow", "free"]),
                  st.integers(min_value=0, max_value=9),
                  st.integers(min_value=1, max_value=200)),
        min_size=1,
        max_size=60,
    )
)
def test_property_random_operation_sequences_keep_invariants(ops):
    mgr = KVCacheManager(KVCacheConfig(capacity_tokens=3200, block_size=16))
    alive = {}
    for op, idx, tokens in ops:
        seq = f"s{idx}"
        if op == "alloc" and seq not in alive:
            if mgr.allocate(seq, tokens):
                alive[seq] = tokens
        elif op == "grow" and seq in alive:
            if mgr.grow(seq, alive[seq] + tokens):
                alive[seq] += tokens
        elif op == "free" and seq in alive:
            mgr.free(seq)
            del alive[seq]
        assert mgr.used_blocks + mgr.free_blocks == mgr.total_blocks
        # Used blocks must cover at least one block per live sequence and
        # exactly match the per-sequence accounting.
        assert mgr.used_blocks >= len(alive)
        assert mgr.used_blocks == sum(mgr._allocated.values())
