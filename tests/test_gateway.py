"""Tests for the Inference Gateway: auth layer, rate limiting, caching,
OpenAI endpoints, batches, jobs, dashboard and the optimization toggles."""

import pytest

from repro.common import (
    AuthenticationError,
    AuthorizationError,
    NotFoundError,
    RateLimitError,
    ValidationError,
)
from repro.auth import AccessPolicy
from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.gateway import GatewayConfig, RetrievalMode, ServerMode, SlidingWindowRateLimiter
from repro.serving import InferenceRequest
from repro.workload import ShareGPTWorkload, requests_to_jsonl

MODEL_7B = "Qwen/Qwen2.5-7B-Instruct"
MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"
EMBED = "nvidia/NV-Embed-v2"


def small_deployment(gateway_config=None, users=None, generate_text=True):
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="devcluster",
                kind="small",
                num_nodes=2,
                scheduler="local",
                models=[
                    ModelDeploymentSpec(MODEL_7B, max_parallel_tasks=32),
                    ModelDeploymentSpec(MODEL_8B, max_parallel_tasks=32),
                    ModelDeploymentSpec(EMBED, backend="infinity"),
                ],
            )
        ],
        gateway=gateway_config or GatewayConfig(),
        users=users or ["researcher@anl.gov", "student@university.edu"],
        generate_text=generate_text,
    )
    return FIRSTDeployment(config)


@pytest.fixture(scope="module")
def warm_deployment():
    """A deployment with the 7B model already hot (shared across read-only tests)."""
    deployment = small_deployment()
    deployment.warm_up(MODEL_7B)
    return deployment


# -- rate limiter unit tests ---------------------------------------------------------

def test_rate_limiter_sliding_window():
    limiter = SlidingWindowRateLimiter(max_requests=3, window_s=10.0)
    limiter.check("u", now=0.0)
    limiter.check("u", now=1.0)
    limiter.check("u", now=2.0)
    with pytest.raises(RateLimitError):
        limiter.check("u", now=3.0)
    # After the window slides, capacity frees up.
    limiter.check("u", now=11.0)
    assert limiter.rejections == 1
    # Only the events still inside the 10 s window count (t=2 and t=11).
    assert limiter.current_usage("u", now=11.0) == 2


def test_rate_limiter_validation():
    with pytest.raises(ValueError):
        SlidingWindowRateLimiter(0, 10.0)
    with pytest.raises(ValueError):
        SlidingWindowRateLimiter(10, 0.0)


# -- end-to-end request path ------------------------------------------------------------

def test_chat_completion_end_to_end(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    response = client.chat_completion(
        MODEL_7B, [{"role": "user", "content": "Summarise the climate runs"}], max_tokens=64
    )
    assert response["object"] == "chat.completion"
    assert response["model"] == MODEL_7B
    assert response["usage"]["completion_tokens"] == 64
    assert response["choices"][0]["message"]["content"].startswith(f"[{MODEL_7B}]")


def test_completion_endpoint(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    response = client.completion(MODEL_7B, "Explain PBS job arrays", max_tokens=32)
    assert response["usage"]["completion_tokens"] == 32


def test_embeddings_endpoint(warm_deployment):
    deployment = warm_deployment
    client = deployment.client("researcher@anl.gov")
    response = client.embedding(EMBED, "parallel filesystem striping guidance")
    assert response["object"] == "list"
    vector = response["data"][0]["embedding"]
    assert len(vector) == deployment.catalog.get(EMBED).embedding_dim


def test_unknown_model_rejected(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    with pytest.raises(ValidationError):
        client.chat_completion("no-such-model", [{"role": "user", "content": "hi"}])


def test_missing_messages_rejected(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    with pytest.raises(ValidationError):
        client.chat_completion(MODEL_7B, [])


def test_excessive_max_tokens_rejected(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    with pytest.raises(ValidationError):
        client.chat_completion(MODEL_7B, [{"role": "user", "content": "hi"}], max_tokens=10**6)


def test_invalid_token_rejected(warm_deployment):
    deployment = warm_deployment
    gateway = deployment.gateway
    request = InferenceRequest("bad-token-req", MODEL_7B, prompt_tokens=10, max_output_tokens=10)
    ev = gateway.submit_request("forged-token", request)
    with pytest.raises(AuthenticationError):
        deployment.env.run(until=ev)


def test_model_policy_enforced(warm_deployment):
    deployment = warm_deployment
    deployment.auth.groups.create_group("qwen-vip")
    deployment.auth.policies.add_policy(
        AccessPolicy("qwen-lock", resource=f"model:{MODEL_8B}", required_groups=["qwen-vip"])
    )
    client = deployment.client("student@university.edu")
    with pytest.raises(AuthorizationError):
        client.chat_completion(MODEL_8B, [{"role": "user", "content": "hi"}], max_tokens=8)
    # Member of the group is allowed (model may need a cold start, so just
    # verify authorization passes by going through the full path).
    deployment.auth.groups.add_member("qwen-vip", "researcher@anl.gov")
    ok_client = deployment.client("researcher@anl.gov")
    response = ok_client.chat_completion(MODEL_8B, [{"role": "user", "content": "hi"}],
                                         max_tokens=8)
    assert response["usage"]["completion_tokens"] == 8


def test_gateway_rate_limit_enforced():
    deployment = small_deployment(
        gateway_config=GatewayConfig(rate_limit_requests=2, rate_limit_window_s=60.0)
    )
    deployment.warm_up(MODEL_7B)
    client = deployment.client("researcher@anl.gov")
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "1"}], max_tokens=8)
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "2"}], max_tokens=8)
    with pytest.raises(RateLimitError):
        client.chat_completion(MODEL_7B, [{"role": "user", "content": "3"}], max_tokens=8)
    assert deployment.gateway.metrics.rate_limited == 1


def test_token_introspection_cache_counts(warm_deployment):
    deployment = warm_deployment
    client = deployment.client("researcher@anl.gov")
    before_misses = deployment.gateway.auth_layer.cache_misses
    before_hits = deployment.gateway.auth_layer.cache_hits
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "a"}], max_tokens=8)
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "b"}], max_tokens=8)
    assert deployment.gateway.auth_layer.cache_misses == before_misses + 1
    assert deployment.gateway.auth_layer.cache_hits >= before_hits + 1


def test_response_cache_short_circuits_identical_requests():
    deployment = small_deployment(gateway_config=GatewayConfig(enable_response_cache=True))
    deployment.warm_up(MODEL_7B)
    client = deployment.client("researcher@anl.gov")
    msg = [{"role": "user", "content": "identical request"}]
    client.chat_completion(MODEL_7B, msg, max_tokens=16)
    t0 = deployment.now
    client.chat_completion(MODEL_7B, msg, max_tokens=16)
    cached_latency = deployment.now - t0
    assert deployment.gateway.response_cache.hits == 1
    assert cached_latency < 1.0  # no compute round trip


def test_request_logging_and_usage_summary(warm_deployment):
    deployment = warm_deployment
    db = deployment.database
    before = db.total_requests
    client = deployment.client("researcher@anl.gov")
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "log me"}], max_tokens=16)
    assert db.total_requests == before + 1
    entry = db.request_log[-1]
    assert entry.user == "researcher@anl.gov"
    assert entry.model == MODEL_7B
    assert entry.status == "completed"
    assert entry.output_tokens == 16
    assert entry.latency_s > 0
    summary = db.usage_summary()
    assert summary["total_users"] >= 1
    assert summary["total_output_tokens"] >= 16


def test_jobs_endpoint_reports_model_states(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    jobs = client.jobs()
    by_model = {j["model"]: j for j in jobs}
    assert by_model[MODEL_7B]["state"] == "running"
    assert by_model[MODEL_8B]["state"] in ("cold", "running", "starting", "queued")
    assert by_model[MODEL_7B]["cluster"] == "devcluster"


def test_list_models_endpoint(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    listing = client.models()
    ids = [m["id"] for m in listing["data"]]
    assert MODEL_7B in ids and MODEL_8B in ids and EMBED in ids


def test_dashboard_metrics(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "metrics"}], max_tokens=8)
    dashboard = client.dashboard()
    assert dashboard["total_requests"] >= 1
    assert dashboard["database"]["total_requests"] >= 1
    models = {m["model"] for m in dashboard["models"]}
    assert MODEL_7B in models


def test_batch_endpoint_end_to_end(warm_deployment):
    deployment = warm_deployment
    client = deployment.client("researcher@anl.gov")
    requests = ShareGPTWorkload().generate(MODEL_7B, num_requests=25)
    batch = client.create_batch(requests_to_jsonl(requests))
    assert batch["status"] == "in_progress"
    final = client.wait_for_batch(batch["id"], poll_every_s=60.0)
    assert final["status"] == "completed"
    assert final["request_counts"]["completed"] == 25
    assert final["output_tokens"] > 0


def test_batch_requires_single_model(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    mixed = (
        ShareGPTWorkload().generate(MODEL_7B, num_requests=2)
        + ShareGPTWorkload().generate(MODEL_8B, num_requests=2, id_prefix="other")
    )
    with pytest.raises(ValidationError):
        client.create_batch(requests_to_jsonl(mixed))


def test_get_unknown_batch_raises(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    with pytest.raises(NotFoundError):
        client.get_batch("batch-does-not-exist")


def test_token_refresh_is_transparent(warm_deployment):
    deployment = warm_deployment
    client = deployment.client("researcher@anl.gov")
    old_token = client.access_token
    # Jump past the 48 h token lifetime; the client refreshes automatically.
    deployment.run_for(48 * 3600.0 + 10.0)
    new_token = client.access_token
    assert new_token != old_token
    response = client.chat_completion(MODEL_7B, [{"role": "user", "content": "still works"}],
                                      max_tokens=8)
    assert response["usage"]["completion_tokens"] == 8


def test_sync_legacy_mode_limits_concurrency():
    config = GatewayConfig(server_mode=ServerMode.SYNC_LEGACY, sync_workers=9)
    deployment = small_deployment(gateway_config=config, generate_text=False)
    deployment.warm_up(MODEL_7B)
    gateway = deployment.gateway
    client = deployment.client("researcher@anl.gov")
    events = [
        client.submit(
            InferenceRequest(f"sync-{i}", MODEL_7B, prompt_tokens=100, max_output_tokens=80)
        )
        for i in range(30)
    ]
    deployment.run_for(5.0)
    # With 9 blocking workers, at most 9 requests are in flight at once.
    assert gateway.workers.count <= 9
    assert gateway.workers.queued > 0
    deployment.env.run(until=deployment.env.all_of(events))
    assert all(ev.value.success for ev in events)


def test_polling_retrieval_mode_adds_latency():
    fut_deploy = small_deployment(
        gateway_config=GatewayConfig(retrieval_mode=RetrievalMode.FUTURES), generate_text=False
    )
    fut_deploy.warm_up(MODEL_7B)
    poll_deploy = small_deployment(
        gateway_config=GatewayConfig(retrieval_mode=RetrievalMode.POLLING), generate_text=False
    )
    poll_deploy.warm_up(MODEL_7B)

    def one_latency(deployment):
        client = deployment.client("researcher@anl.gov")
        req = InferenceRequest("lat-0", MODEL_7B, prompt_tokens=100, max_output_tokens=50)
        start = deployment.now
        ev = client.submit(req)
        deployment.env.run(until=ev)
        return deployment.now - start

    # Warm the auth cache first so the comparison isolates retrieval mode.
    for d in (fut_deploy, poll_deploy):
        c = d.client("researcher@anl.gov")
        c.chat_completion(MODEL_7B, [{"role": "user", "content": "warm"}], max_tokens=8)

    lat_futures = one_latency(fut_deploy)
    lat_polling = one_latency(poll_deploy)
    assert lat_polling > lat_futures
