"""Tests for the Inference Gateway: the API v2 middleware pipeline, typed
error envelopes, streaming, auth layer, rate limiting, caching, OpenAI
endpoints, batches, jobs, dashboard and the optimization toggles."""

import pytest

from repro.common import (
    AuthenticationError,
    AuthorizationError,
    NotFoundError,
    RateLimitError,
    ValidationError,
)
from repro.auth import AccessPolicy
from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.gateway import (
    GatewayConfig,
    Middleware,
    RetrievalMode,
    ServerMode,
    SlidingWindowRateLimiter,
    default_middleware_factories,
)
from repro.serving import InferenceRequest
from repro.workload import ShareGPTWorkload, requests_to_jsonl

MODEL_7B = "Qwen/Qwen2.5-7B-Instruct"
MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"
EMBED = "nvidia/NV-Embed-v2"


def small_deployment(gateway_config=None, users=None, generate_text=True):
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="devcluster",
                kind="small",
                num_nodes=2,
                scheduler="local",
                models=[
                    ModelDeploymentSpec(MODEL_7B, max_parallel_tasks=32),
                    ModelDeploymentSpec(MODEL_8B, max_parallel_tasks=32),
                    ModelDeploymentSpec(EMBED, backend="infinity"),
                ],
            )
        ],
        gateway=gateway_config or GatewayConfig(),
        users=users or ["researcher@anl.gov", "student@university.edu"],
        generate_text=generate_text,
    )
    return FIRSTDeployment(config)


@pytest.fixture(scope="module")
def warm_deployment():
    """A deployment with the 7B model already hot (shared across read-only tests)."""
    deployment = small_deployment()
    deployment.warm_up(MODEL_7B)
    return deployment


# -- rate limiter unit tests ---------------------------------------------------------

def test_rate_limiter_sliding_window():
    limiter = SlidingWindowRateLimiter(max_requests=3, window_s=10.0)
    limiter.check("u", now=0.0)
    limiter.check("u", now=1.0)
    limiter.check("u", now=2.0)
    with pytest.raises(RateLimitError):
        limiter.check("u", now=3.0)
    # After the window slides, capacity frees up.
    limiter.check("u", now=11.0)
    assert limiter.rejections == 1
    # Only the events still inside the 10 s window count (t=2 and t=11).
    assert limiter.current_usage("u", now=11.0) == 2


def test_rate_limiter_validation():
    with pytest.raises(ValueError):
        SlidingWindowRateLimiter(0, 10.0)
    with pytest.raises(ValueError):
        SlidingWindowRateLimiter(10, 0.0)


# -- end-to-end request path ------------------------------------------------------------

def test_chat_completion_end_to_end(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    response = client.chat_completion(
        MODEL_7B, [{"role": "user", "content": "Summarise the climate runs"}], max_tokens=64
    )
    assert response["object"] == "chat.completion"
    assert response["model"] == MODEL_7B
    assert response["usage"]["completion_tokens"] == 64
    assert response["choices"][0]["message"]["content"].startswith(f"[{MODEL_7B}]")


def test_completion_endpoint(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    response = client.completion(MODEL_7B, "Explain PBS job arrays", max_tokens=32)
    assert response["usage"]["completion_tokens"] == 32


def test_embeddings_endpoint(warm_deployment):
    deployment = warm_deployment
    client = deployment.client("researcher@anl.gov")
    response = client.embedding(EMBED, "parallel filesystem striping guidance")
    assert response["object"] == "list"
    vector = response["data"][0]["embedding"]
    assert len(vector) == deployment.catalog.get(EMBED).embedding_dim


def test_unknown_model_rejected(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    with pytest.raises(ValidationError):
        client.chat_completion("no-such-model", [{"role": "user", "content": "hi"}])


def test_missing_messages_rejected(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    with pytest.raises(ValidationError):
        client.chat_completion(MODEL_7B, [])


def test_excessive_max_tokens_rejected(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    with pytest.raises(ValidationError):
        client.chat_completion(MODEL_7B, [{"role": "user", "content": "hi"}], max_tokens=10**6)


def test_invalid_token_rejected(warm_deployment):
    deployment = warm_deployment
    gateway = deployment.gateway
    request = InferenceRequest("bad-token-req", MODEL_7B, prompt_tokens=10, max_output_tokens=10)
    ev = gateway.submit_request("forged-token", request)
    with pytest.raises(AuthenticationError):
        deployment.env.run(until=ev)


def test_model_policy_enforced(warm_deployment):
    deployment = warm_deployment
    deployment.auth.groups.create_group("qwen-vip")
    deployment.auth.policies.add_policy(
        AccessPolicy("qwen-lock", resource=f"model:{MODEL_8B}", required_groups=["qwen-vip"])
    )
    client = deployment.client("student@university.edu")
    with pytest.raises(AuthorizationError):
        client.chat_completion(MODEL_8B, [{"role": "user", "content": "hi"}], max_tokens=8)
    # Member of the group is allowed (model may need a cold start, so just
    # verify authorization passes by going through the full path).
    deployment.auth.groups.add_member("qwen-vip", "researcher@anl.gov")
    ok_client = deployment.client("researcher@anl.gov")
    response = ok_client.chat_completion(MODEL_8B, [{"role": "user", "content": "hi"}],
                                         max_tokens=8)
    assert response["usage"]["completion_tokens"] == 8


def test_gateway_rate_limit_enforced():
    deployment = small_deployment(
        gateway_config=GatewayConfig(rate_limit_requests=2, rate_limit_window_s=60.0)
    )
    deployment.warm_up(MODEL_7B)
    client = deployment.client("researcher@anl.gov")
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "1"}], max_tokens=8)
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "2"}], max_tokens=8)
    with pytest.raises(RateLimitError):
        client.chat_completion(MODEL_7B, [{"role": "user", "content": "3"}], max_tokens=8)
    assert deployment.gateway.metrics.rate_limited == 1


def test_token_introspection_cache_counts(warm_deployment):
    deployment = warm_deployment
    client = deployment.client("researcher@anl.gov")
    before_misses = deployment.gateway.auth_layer.cache_misses
    before_hits = deployment.gateway.auth_layer.cache_hits
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "a"}], max_tokens=8)
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "b"}], max_tokens=8)
    assert deployment.gateway.auth_layer.cache_misses == before_misses + 1
    assert deployment.gateway.auth_layer.cache_hits >= before_hits + 1


def test_response_cache_short_circuits_identical_requests():
    deployment = small_deployment(gateway_config=GatewayConfig(enable_response_cache=True))
    deployment.warm_up(MODEL_7B)
    client = deployment.client("researcher@anl.gov")
    msg = [{"role": "user", "content": "identical request"}]
    client.chat_completion(MODEL_7B, msg, max_tokens=16)
    t0 = deployment.now
    client.chat_completion(MODEL_7B, msg, max_tokens=16)
    cached_latency = deployment.now - t0
    assert deployment.gateway.response_cache.hits == 1
    assert cached_latency < 1.0  # no compute round trip


def test_request_logging_and_usage_summary(warm_deployment):
    deployment = warm_deployment
    db = deployment.database
    before = db.total_requests
    client = deployment.client("researcher@anl.gov")
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "log me"}], max_tokens=16)
    assert db.total_requests == before + 1
    entry = db.request_log[-1]
    assert entry.user == "researcher@anl.gov"
    assert entry.model == MODEL_7B
    assert entry.status == "completed"
    assert entry.output_tokens == 16
    assert entry.latency_s > 0
    summary = db.usage_summary()
    assert summary["total_users"] >= 1
    assert summary["total_output_tokens"] >= 16


def test_jobs_endpoint_reports_model_states(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    jobs = client.jobs()
    by_model = {j["model"]: j for j in jobs}
    assert by_model[MODEL_7B]["state"] == "running"
    assert by_model[MODEL_8B]["state"] in ("cold", "running", "starting", "queued")
    assert by_model[MODEL_7B]["cluster"] == "devcluster"


def test_list_models_endpoint(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    listing = client.models()
    ids = [m["id"] for m in listing["data"]]
    assert MODEL_7B in ids and MODEL_8B in ids and EMBED in ids


def test_dashboard_metrics(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "metrics"}], max_tokens=8)
    dashboard = client.dashboard()
    assert dashboard["total_requests"] >= 1
    assert dashboard["database"]["total_requests"] >= 1
    models = {m["model"] for m in dashboard["models"]}
    assert MODEL_7B in models


def test_batch_endpoint_end_to_end(warm_deployment):
    deployment = warm_deployment
    client = deployment.client("researcher@anl.gov")
    requests = ShareGPTWorkload().generate(MODEL_7B, num_requests=25)
    batch = client.create_batch(requests_to_jsonl(requests))
    assert batch["status"] == "in_progress"
    final = client.wait_for_batch(batch["id"], poll_every_s=60.0)
    assert final["status"] == "completed"
    assert final["request_counts"]["completed"] == 25
    assert final["output_tokens"] > 0


def test_batch_requires_single_model(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    mixed = (
        ShareGPTWorkload().generate(MODEL_7B, num_requests=2)
        + ShareGPTWorkload().generate(MODEL_8B, num_requests=2, id_prefix="other")
    )
    with pytest.raises(ValidationError):
        client.create_batch(requests_to_jsonl(mixed))


def test_get_unknown_batch_raises(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    with pytest.raises(NotFoundError):
        client.get_batch("batch-does-not-exist")


def test_token_refresh_is_transparent(warm_deployment):
    deployment = warm_deployment
    client = deployment.client("researcher@anl.gov")
    old_token = client.access_token
    # Jump past the 48 h token lifetime; the client refreshes automatically.
    deployment.run_for(48 * 3600.0 + 10.0)
    new_token = client.access_token
    assert new_token != old_token
    response = client.chat_completion(MODEL_7B, [{"role": "user", "content": "still works"}],
                                      max_tokens=8)
    assert response["usage"]["completion_tokens"] == 8


def test_sync_legacy_mode_limits_concurrency():
    config = GatewayConfig(server_mode=ServerMode.SYNC_LEGACY, sync_workers=9)
    deployment = small_deployment(gateway_config=config, generate_text=False)
    deployment.warm_up(MODEL_7B)
    gateway = deployment.gateway
    client = deployment.client("researcher@anl.gov")
    events = [
        client.submit(
            InferenceRequest(f"sync-{i}", MODEL_7B, prompt_tokens=100, max_output_tokens=80)
        )
        for i in range(30)
    ]
    deployment.run_for(5.0)
    # With 9 blocking workers, at most 9 requests are in flight at once.
    assert gateway.workers.count <= 9
    assert gateway.workers.queued > 0
    deployment.env.run(until=deployment.env.all_of(events))
    assert all(ev.value.success for ev in events)


def test_polling_retrieval_mode_adds_latency():
    fut_deploy = small_deployment(
        gateway_config=GatewayConfig(retrieval_mode=RetrievalMode.FUTURES), generate_text=False
    )
    fut_deploy.warm_up(MODEL_7B)
    poll_deploy = small_deployment(
        gateway_config=GatewayConfig(retrieval_mode=RetrievalMode.POLLING), generate_text=False
    )
    poll_deploy.warm_up(MODEL_7B)

    def one_latency(deployment):
        client = deployment.client("researcher@anl.gov")
        req = InferenceRequest("lat-0", MODEL_7B, prompt_tokens=100, max_output_tokens=50)
        start = deployment.now
        ev = client.submit(req)
        deployment.env.run(until=ev)
        return deployment.now - start

    # Warm the auth cache first so the comparison isolates retrieval mode.
    for d in (fut_deploy, poll_deploy):
        c = d.client("researcher@anl.gov")
        c.chat_completion(MODEL_7B, [{"role": "user", "content": "warm"}], max_tokens=8)

    lat_futures = one_latency(fut_deploy)
    lat_polling = one_latency(poll_deploy)
    assert lat_polling > lat_futures


# -- API v2: middleware pipeline ----------------------------------------------------------

DEFAULT_STAGES = [
    "validation", "auth", "rate-limit", "response-cache",
    "accounting", "routing", "dispatch",
]


def test_default_pipeline_stage_order(warm_deployment):
    assert warm_deployment.gateway.pipeline.stage_names() == DEFAULT_STAGES


def test_successful_request_traverses_every_stage(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "trace me"}], max_tokens=8)
    assert warm_deployment.gateway.last_context.trace == DEFAULT_STAGES


def test_custom_middleware_via_gateway_config():
    """A deployment inserts its own stage without touching InferenceGatewayAPI."""

    class TaggingMiddleware(Middleware):
        name = "tagging"

        def process(self, ctx, call_next):
            ctx.request.metadata["tagged_by"] = "tagging-middleware"
            yield from call_next(ctx)

    factories = default_middleware_factories()
    factories.insert(0, TaggingMiddleware)
    deployment = small_deployment(
        gateway_config=GatewayConfig(middleware_factories=factories),
        generate_text=False,
    )
    deployment.warm_up(MODEL_7B)
    client = deployment.client("researcher@anl.gov")
    ev = client.submit(
        InferenceRequest("tagged-0", MODEL_7B, prompt_tokens=20, max_output_tokens=8)
    )
    result = deployment.env.run(until=ev)
    # The tag travelled through the whole stack and back on the result.
    assert result.metadata["tagged_by"] == "tagging-middleware"
    assert deployment.gateway.last_context.trace == ["tagging"] + DEFAULT_STAGES


def test_rate_limit_trip_skips_downstream_stages():
    deployment = small_deployment(
        gateway_config=GatewayConfig(rate_limit_requests=1, rate_limit_window_s=60.0)
    )
    deployment.warm_up(MODEL_7B)
    client = deployment.client("researcher@anl.gov")
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "1"}], max_tokens=8)
    with pytest.raises(RateLimitError):
        client.chat_completion(MODEL_7B, [{"role": "user", "content": "2"}], max_tokens=8)
    trace = deployment.gateway.last_context.trace
    assert trace == ["validation", "auth", "rate-limit"]
    # The envelope form carries the right type/status.
    lenient = deployment.client("researcher@anl.gov", raise_on_error=False)
    envelope = lenient.chat_completion(MODEL_7B, [{"role": "user", "content": "3"}],
                                       max_tokens=8)
    assert envelope["error"]["type"] == "rate_limit_error"
    assert envelope["error"]["status"] == 429


def test_cache_hit_short_circuits_pipeline():
    deployment = small_deployment(gateway_config=GatewayConfig(enable_response_cache=True))
    deployment.warm_up(MODEL_7B)
    client = deployment.client("researcher@anl.gov")
    msg = [{"role": "user", "content": "short circuit"}]
    client.chat_completion(MODEL_7B, msg, max_tokens=16)
    client.chat_completion(MODEL_7B, msg, max_tokens=16)
    ctx = deployment.gateway.last_context
    assert ctx.cache_hit
    assert ctx.trace == ["validation", "auth", "rate-limit", "response-cache"]
    assert "dispatch" not in ctx.trace


# -- API v2: typed error envelopes ---------------------------------------------------------

def test_unknown_model_error_envelope(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov", raise_on_error=False)
    envelope = client.chat_completion("no-such-model", [{"role": "user", "content": "hi"}])
    assert envelope["error"] == {
        "type": "invalid_request_error",
        "code": "invalid_request",
        "message": "Unknown model: no-such-model",
        "status": 422,
    }


def test_expired_token_error_envelope(warm_deployment):
    deployment = warm_deployment
    bundle = deployment.auth.issue_token("researcher@anl.gov")
    deployment.run_for(48 * 3600.0 + 10.0)  # past the 48 h token lifetime
    body = {"model": MODEL_7B, "messages": [{"role": "user", "content": "hi"}],
            "max_tokens": 8}
    proc = deployment.env.process(
        deployment.gateway.chat_completions(bundle.access_token, body)
    )
    envelope = deployment.env.run(until=proc)
    assert envelope["error"]["type"] == "authentication_error"
    assert envelope["error"]["code"] == "invalid_token"
    assert envelope["error"]["status"] == 401
    # The failure never reached the stages past auth.
    assert deployment.gateway.last_context.trace == ["validation", "auth"]


# -- API v2: end-to-end streaming ----------------------------------------------------------

def test_streaming_chat_completion_yields_openai_chunks(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    chunks = list(client.chat_completion(
        MODEL_7B, [{"role": "user", "content": "stream please"}],
        max_tokens=12, stream=True,
    ))
    assert len(chunks) >= 2
    assert all(c["object"] == "chat.completion.chunk" for c in chunks)
    # First chunk announces the assistant role; last carries the finish reason.
    assert chunks[0]["choices"][0]["delta"]["role"] == "assistant"
    assert chunks[-1]["choices"][0]["finish_reason"] == "stop"
    assert chunks[-1]["usage"]["completion_tokens"] == 12
    # One content chunk per generated token.
    content_chunks = [c for c in chunks[1:-1] if c["choices"][0]["delta"].get("content")]
    assert len(content_chunks) == 12


def test_streaming_records_gateway_observed_token_times(warm_deployment):
    deployment = warm_deployment
    client = deployment.client("researcher@anl.gov")
    request = InferenceRequest("stream-typed-0", MODEL_7B, prompt_tokens=50,
                               max_output_tokens=10, stream=True)
    send_time = deployment.now
    ev = client.submit(request)
    result = deployment.env.run(until=ev)
    times = result.metadata["gateway_token_times"]
    assert len(times) == 10
    assert times == sorted(times)
    # Gateway-observed TTFT is after send and before the full response lands.
    assert send_time < result.metadata["gateway_first_token_time"] < deployment.now


def test_streaming_not_supported_for_embeddings(warm_deployment):
    from repro.serving import RequestKind

    deployment = warm_deployment
    request = InferenceRequest("stream-embed-0", EMBED, prompt_tokens=10,
                               max_output_tokens=1, kind=RequestKind.EMBEDDING,
                               stream=True)
    client = deployment.client("researcher@anl.gov")
    ev = client.submit(request)
    with pytest.raises(ValidationError):
        deployment.env.run(until=ev)


def test_streaming_error_is_raised_from_iterator(warm_deployment):
    client = warm_deployment.client("researcher@anl.gov")
    with pytest.raises(ValidationError):
        list(client.chat_completion("no-such-model", [{"role": "user", "content": "x"}],
                                    stream=True))


# -- routing-cache staleness ----------------------------------------------------------------

def test_stale_routing_cache_falls_back_to_fresh_selection():
    """A cached endpoint that left the federation is evicted, not an error."""
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="c1", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(MODEL_7B, max_parallel_tasks=32)],
            ),
            ClusterDeploymentSpec(
                name="c2", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(MODEL_7B, max_parallel_tasks=32)],
            ),
        ],
        users=["researcher@anl.gov"],
        generate_text=False,
    )
    deployment = FIRSTDeployment(config)
    deployment.warm_up(MODEL_7B)  # warms an instance on the first endpoint
    client = deployment.client("researcher@anl.gov")
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "a"}], max_tokens=8)
    cache_key = (MODEL_7B, "researcher@anl.gov")
    cached_id = deployment.gateway._routing_cache[cache_key].endpoint_id
    assert cached_id == "ep-c1"

    deployment.registry.deregister("ep-c1")
    # Well inside the routing-cache TTL: the stale entry must be evicted and
    # the request re-routed to the surviving endpoint instead of crashing.
    response = client.chat_completion(MODEL_7B, [{"role": "user", "content": "b"}],
                                      max_tokens=8)
    assert response["usage"]["completion_tokens"] == 8
    assert deployment.gateway._routing_cache[cache_key].endpoint_id == "ep-c2"
