"""Unit tests for the model catalog and specs."""

import pytest

from repro.serving import ModelCatalog, ModelKind, ModelSpec, default_catalog


def test_model_spec_validation():
    with pytest.raises(ValueError):
        ModelSpec("bad", params_b=0)
    with pytest.raises(ValueError):
        ModelSpec("bad", params_b=7, default_tp=0)


def test_model_spec_derived_sizes():
    spec = ModelSpec("meta-llama/Llama-3.1-8B-Instruct", 8, default_tp=4, n_layers=32,
                     kv_heads=8, head_dim=128)
    assert spec.weights_gb == pytest.approx(16.0)
    # 2 (K+V) * 32 layers * 8 heads * 128 dim * 2 bytes
    assert spec.kv_bytes_per_token == pytest.approx(2 * 32 * 8 * 128 * 2)
    assert spec.gpus_required(gpu_memory_gb=40.0) == 1
    assert spec.vram_per_gpu_gb(tp=4) == pytest.approx(16.0 * 1.2 / 4)


def test_gpus_required_scales_with_model_size():
    big = ModelSpec("llama-405b", 405, default_tp=16)
    small = ModelSpec("llama-8b", 8, default_tp=1)
    assert big.gpus_required(40.0) > small.gpus_required(40.0)
    # A 405B model cannot fit on a single 8-GPU 40 GB node.
    assert big.gpus_required(40.0) > 8


def test_catalog_contains_paper_models():
    catalog = default_catalog()
    # Benchmark models of §5
    assert "meta-llama/Llama-3.3-70B-Instruct" in catalog
    assert "meta-llama/Llama-3.1-8B-Instruct" in catalog
    assert "google/gemma-2-27b-it" in catalog
    # The three functional groups of §4.2
    assert len(catalog.by_kind(ModelKind.CHAT)) >= 8
    assert len(catalog.by_kind(ModelKind.VISION)) == 2
    assert len(catalog.by_kind(ModelKind.EMBEDDING)) == 1


def test_catalog_alias_lookup():
    catalog = default_catalog()
    spec = catalog.get("Llama-3.3-70B")
    assert spec.name == "meta-llama/Llama-3.3-70B-Instruct"
    assert spec.default_tp == 8
    spec8 = catalog.get("Llama-3.1-8B")
    assert spec8.default_tp == 4


def test_catalog_registration_and_duplicates():
    catalog = ModelCatalog()
    spec = ModelSpec("org/new-model", 13)
    catalog.register(spec)
    assert "org/new-model" in catalog
    with pytest.raises(ValueError):
        catalog.register(spec)
    catalog.unregister("org/new-model")
    assert "org/new-model" not in catalog
    with pytest.raises(KeyError):
        catalog.get("org/new-model")


def test_catalog_names_sorted_and_iterable():
    catalog = default_catalog()
    assert catalog.names == sorted(catalog.names)
    assert len(list(iter(catalog))) == len(catalog)


def test_embedding_model_flag():
    catalog = default_catalog()
    nv = catalog.get("nvidia/NV-Embed-v2")
    assert nv.is_embedding
    assert nv.embedding_dim > 0
