"""Partitioned federated runs: bit-identity, streaming, snapshots, sweep.

The hard guarantee under test: merged results of a partitioned federated
deployment are **bit-identical** for any worker count (serial fallback,
2 and 4 spawn workers) and any kernel queue backend.  Fingerprints are
SHA-256 over exact float reprs, so "close" is a failure.

Requires numpy (ShareGPT workload) — listed in conftest's no-numpy
``collect_ignore``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas import RelayBoundaryProxy, RelayService
from repro.metrics import RequestRecord
from repro.parallel import (
    FederatedScenario,
    PartitionedDeployment,
    golden_trace,
    trace_fingerprint,
)
from repro.placement import TopologyView
from repro.sim import Environment


def _run(workers, **overrides):
    overrides.setdefault("num_requests", 12)
    scenario = FederatedScenario.demo(clusters=2, **overrides)
    return PartitionedDeployment(scenario, workers=workers).run()


# ------------------------------------------------------------- bit-identity
def test_serial_run_completes_every_request():
    result = _run(workers=1)
    assert len(result.records) == 12
    assert all(r.success for r in result.records)
    assert result.stats.windows > 0
    assert result.stats.message_kinds.get("dispatch") == 12
    assert result.stats.message_kinds.get("result") == 12


@pytest.mark.parametrize("backend", ["heap", "calendar", "packed"])
def test_workers_bit_identical_across_backends(backend):
    fingerprints = {
        workers: _run(workers=workers, kernel_queue=backend).fingerprint
        for workers in (1, 2, 4)
    }
    assert len(set(fingerprints.values())) == 1, fingerprints


def test_queue_backends_simulate_identically():
    fingerprints = {backend: _run(workers=1, kernel_queue=backend).fingerprint
                    for backend in ("heap", "calendar", "packed")}
    assert len(set(fingerprints.values())) == 1, fingerprints


@settings(max_examples=3, deadline=None)
@given(
    num_requests=st.integers(min_value=1, max_value=16),
    rate=st.sampled_from([0.5, 2.0, 8.0]),
    clusters=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=3),
)
def test_property_parallel_matches_serial(num_requests, rate, clusters, seed):
    def fingerprint(workers):
        scenario = FederatedScenario.demo(
            clusters=clusters, num_requests=num_requests, rate=rate, seed=seed)
        return PartitionedDeployment(scenario, workers=workers).run().fingerprint

    assert fingerprint(1) == fingerprint(2)


# ------------------------------------------------------------- streaming
def test_streaming_tokens_cross_the_boundary():
    result = _run(workers=1, stream=True)
    assert all(r.token_times for r in result.records if r.success)
    for record in result.records:
        assert record.first_token_time == record.token_times[0]
        assert record.first_token_time >= record.send_time
        assert list(record.token_times) == sorted(record.token_times)


def test_streaming_bit_identical_across_workers():
    assert (_run(workers=1, stream=True).fingerprint
            == _run(workers=2, stream=True).fingerprint)


# ------------------------------------------------------------- merged artifacts
def test_merged_registry_spans_gateway_and_clusters():
    result = _run(workers=1)
    metrics = result.registry.to_dict()
    assert "parallel_gateway_latency_s" in metrics
    assert "parallel_cluster_tasks_total" in metrics
    children = metrics["parallel_cluster_tasks_total"]["children"]
    assert {"cluster0", "cluster1"} <= set(children)


def test_merged_summary_and_stats_expose_run_shape():
    result = _run(workers=1)
    assert result.merged.num_requests == 12
    summary = result.to_summary_dict()
    assert summary["requests"] == 12
    assert summary["windows"] == result.stats.windows
    assert summary["fingerprint"] == result.fingerprint


def test_trace_fingerprint_is_order_insensitive_but_value_sensitive():
    records = [
        RequestRecord(request_id=f"r{i}", model="m", send_time=float(i),
                      completion_time=float(i) + 1.0, prompt_tokens=10,
                      output_tokens=5, success=True)
        for i in range(4)
    ]
    shuffled = [records[2], records[0], records[3], records[1]]
    baseline = trace_fingerprint(records)
    assert baseline == trace_fingerprint(shuffled)
    assert golden_trace(records) == golden_trace(shuffled)
    records[0].completion_time += 1e-12
    assert trace_fingerprint(records) != baseline


# ------------------------------------------------------------- boundary proxy
def test_boundary_proxy_routes_and_snapshot_refreshes_view():
    from repro.core import calibration
    from repro.federation import FederationRegistry

    env = Environment()
    view = TopologyView(env, FederationRegistry())
    relay = RelayService(env, calibration.default_relay_config())
    proxy = RelayBoundaryProxy(env, "ep-remote", "remote", ["model-a"],
                               view=view)
    assert proxy.is_boundary_proxy
    assert proxy.ready_instance_count() == 0
    assert proxy.kernel_backlog("model-a") == 0

    snapshot = {
        "model": "model-a", "endpoint_id": "ep-remote", "cluster": "remote",
        "ready_instances": 2, "starting_instances": 1, "draining_instances": 0,
        "queued_jobs": 0, "waiting_tasks": 3, "in_flight_tasks": 4,
        "slots_per_instance": 8, "max_instances": 4,
        "cold_start_estimate_s": 30.0, "computed_at": 12.5,
    }
    view.apply_partition_snapshot(snapshot)
    assert proxy.ready_instance_count() == 2
    assert proxy.kernel_backlog("model-a") == 3 + 4
    signal = view.pool_signal("ep-remote", "model-a")
    assert signal.ready_instances == 2 and signal.computed_at == 12.5
    # The remote signal participates in model-wide placement queries.
    assert any(s.endpoint_id == "ep-remote"
               for s in view.signals_for_model("model-a"))
    _ = relay  # the proxy registers like any endpoint; relay built above


# ------------------------------------------------------------- sweep integration
def test_partitioned_sweep_cell_merges_registries():
    from repro.sweep import SweepRunner
    from repro.sweep.spec import ScenarioSpec

    cells = [
        ScenarioSpec(key=f"part-{backend}", runner="partitioned",
                     num_requests=6, kernel_queue=backend,
                     params={"rate": 2.0})
        for backend in ("heap", "calendar")
    ]
    result = SweepRunner(workers=1).run(cells)
    assert result.ok
    assert result.merged(label="cells").num_requests == 12
    registry = result.merged_registry()
    assert registry is not None
    merged = registry.to_dict()
    assert "parallel_requests_total" in merged
    total = sum(merged["parallel_requests_total"]["children"].values())
    assert total == 12
    payloads = result.payloads()
    assert payloads[0]["fingerprint"] == payloads[1]["fingerprint"]
    assert all("partition_stats" in p for p in payloads)


def test_sweep_without_registries_merges_to_none():
    from repro.sweep.runner import ShardResult, SweepResult

    result = SweepResult([ShardResult(key="a", ok=True, payload={})],
                         workers=1, wall_s=0.0, timeline=[])
    assert result.merged_registry() is None
