"""Golden-trace and property tests for engine macro-stepping.

The macro-stepped engine must reproduce the per-token reference loop
(`EngineConfig(macro_stepping=False)`) *exactly* in simulated time: same
per-request timings, same stats, same KV accounting, same preemptions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import A100_40GB, dgx_a100_spec
from repro.serving import (
    ContinuousBatchingEngine,
    EngineConfig,
    InferenceRequest,
    PerformanceModel,
    default_catalog,
)
from repro.serving.stream import STREAM_CHANNEL_KEY, StreamChannel
from repro.sim import Environment
from repro.workload import PoissonArrival, ShareGPTWorkload

CATALOG = default_catalog()
SPEC_70B = CATALOG.get("Llama-3.3-70B")
SPEC_8B = CATALOG.get("Llama-3.1-8B")

RESULT_FIELDS = (
    "request_id",
    "success",
    "error",
    "prompt_tokens",
    "output_tokens",
    "engine_enqueue_time",
    "prefill_start_time",
    "first_token_time",
    "completion_time",
)


def result_trace(result):
    return tuple(getattr(result, f) for f in RESULT_FIELDS)


def make_engine(env, macro, spec=SPEC_70B, tp=8, kv_capacity=None, max_num_seqs=256,
                crossover=None):
    perf = PerformanceModel(spec, tp, A100_40GB, node_spec=dgx_a100_spec())
    if kv_capacity is not None:
        class TinyKV(PerformanceModel):
            def kv_capacity_tokens(self, vram_utilization=0.9):
                return kv_capacity
        perf = TinyKV(spec, tp, A100_40GB, node_spec=dgx_a100_spec())
    config = EngineConfig(generate_text=False, macro_stepping=macro,
                          max_num_seqs=max_num_seqs)
    if crossover is not None:
        config.vector_batch_crossover = crossover
    return ContinuousBatchingEngine(env, perf, config)


def run_trace(macro, requests, offsets, kv_capacity=None, stream_indices=(),
              stop_at=None, drain_at=None, max_num_seqs=256, crossover=None):
    """Drive one engine over a timed workload; returns the full golden trace."""
    env = Environment()
    engine = make_engine(env, macro, kv_capacity=kv_capacity,
                         max_num_seqs=max_num_seqs, crossover=crossover)
    stream_events = {}
    events = []

    def consume(channel, sink):
        while True:
            item = yield channel.get()
            if item is None:
                return
            sink.append((item.kind, item.index, item.time))

    def driver(env):
        last = 0.0
        for i, (request, offset) in enumerate(zip(requests, offsets)):
            if offset > last:
                yield env.timeout(offset - last)
                last = offset
            if i in stream_indices:
                channel = StreamChannel(env)
                request.stream = True
                request.metadata[STREAM_CHANNEL_KEY] = channel
                stream_events[i] = []
                env.process(consume(channel, stream_events[i]))
            events.append(engine.submit(request))

    def stopper(env):
        yield env.timeout(stop_at)
        engine.stop()

    def drainer(env):
        yield env.timeout(drain_at)
        engine.drain()

    env.process(driver(env))
    if stop_at is not None:
        env.process(stopper(env))
    if drain_at is not None:
        env.process(drainer(env))
    env.run()
    traces = [result_trace(ev.value) for ev in events]
    return {
        "results": traces,
        "stats": engine.stats.snapshot(),
        "allocation_failures": engine.kv.allocation_failures,
        "preemptions": engine.kv.preemptions,
        "kv_used": engine.kv.used_blocks,
        "end_time": env.now,
        "streams": stream_events,
    }


def fresh_requests(lengths, model=SPEC_70B.name):
    return [
        InferenceRequest(f"g-{i:04d}", model, prompt_tokens=p, max_output_tokens=o)
        for i, (p, o) in enumerate(lengths)
    ]


def test_golden_trace_poisson_workload_is_bit_identical():
    """Fixed seed, Poisson arrivals: every timing field matches exactly."""
    workload = ShareGPTWorkload()
    offsets = PoissonArrival(rate=4.0, seed=11).offsets(120)
    golden = run_trace(False, workload.generate(SPEC_70B.name, num_requests=120), offsets)
    macro = run_trace(True, workload.generate(SPEC_70B.name, num_requests=120), offsets)
    assert macro == golden


def test_golden_trace_with_streaming_request_mid_batch():
    """A streaming consumer in the middle of the batch sees identical
    per-token events, and the surrounding requests keep identical timings."""
    lengths = [(64, 40), (128, 60), (96, 25), (200, 80), (50, 35), (80, 50)]
    offsets = [0.0, 0.1, 0.25, 0.4, 0.9, 1.4]
    golden = run_trace(False, fresh_requests(lengths), offsets, stream_indices={2})
    macro = run_trace(True, fresh_requests(lengths), offsets, stream_indices={2})
    assert macro["streams"][2]  # the consumer actually saw tokens
    assert macro == golden


def test_golden_trace_all_at_once_burst():
    """Infinite-rate burst (everything at t=0) matches exactly."""
    workload = ShareGPTWorkload()
    offsets = [0.0] * 150
    golden = run_trace(False, workload.generate(SPEC_70B.name, num_requests=150), offsets)
    macro = run_trace(True, workload.generate(SPEC_70B.name, num_requests=150), offsets)
    assert macro == golden


def test_golden_trace_stop_mid_run():
    """stop() mid-run reports identical partial progress in both modes."""
    lengths = [(100, 300), (120, 280), (90, 260), (110, 240)]
    offsets = [0.0, 0.0, 0.5, 0.5]
    golden = run_trace(False, fresh_requests(lengths), offsets, stop_at=3.0)
    macro = run_trace(True, fresh_requests(lengths), offsets, stop_at=3.0)
    # The queue-drain time differs (the collapsed window timeout outlives the
    # stop), but every result, stat and KV counter must match exactly.
    golden.pop("end_time")
    macro.pop("end_time")
    assert macro == golden
    assert all(not trace[1] for trace in macro["results"])  # everything failed


def test_submit_then_stop_in_one_callback_does_not_double_count_busy_time():
    """A submit() immediately followed by stop() while a window is in flight
    queues a window-split interrupt that is delivered *after* the stop; the
    abandoned window must not be accounted twice."""

    def run(macro):
        env = Environment()
        engine = make_engine(env, macro)
        engine.submit(InferenceRequest("bt-0", SPEC_70B.name, prompt_tokens=80,
                                       max_output_tokens=200))

        def submit_then_stop(env):
            yield env.timeout(2.0)  # mid-window for the macro engine
            engine.submit(InferenceRequest("bt-1", SPEC_70B.name, prompt_tokens=80,
                                           max_output_tokens=200))
            engine.stop()

        env.process(submit_then_stop(env))
        env.run()
        return engine.stats.snapshot()

    assert run(True) == run(False)


def test_stop_counts_each_failed_sequence_exactly_once():
    env = Environment()
    engine = make_engine(env, macro=True)
    for i in range(5):
        engine.submit(InferenceRequest(f"s-{i}", SPEC_70B.name, prompt_tokens=50,
                                       max_output_tokens=100))

    def stopper(env):
        yield env.timeout(1.0)
        engine.stop()
        engine.stop()  # idempotent: second stop finds nothing outstanding

    env.process(stopper(env))
    env.run()
    assert engine.stats.failed == 5
    assert engine.stats.submitted == 5
    assert engine.is_idle
    assert engine.kv.used_blocks == 0


@settings(max_examples=20, deadline=None)
@given(
    lengths=st.lists(
        st.tuples(st.integers(min_value=50, max_value=500),
                  st.integers(min_value=5, max_value=150)),
        min_size=4,
        max_size=24,
    ),
    kv_capacity=st.integers(min_value=1200, max_value=4000),
)
def test_property_macro_stepping_never_skips_kv_preemption(lengths, kv_capacity):
    """Under KV pressure, macro-stepping falls back to per-token stepping and
    reproduces every preemption (and every other outcome) of the reference
    engine — it never glosses over a pressure event inside a window."""
    offsets = [0.0] * len(lengths)
    golden = run_trace(False, fresh_requests(lengths), offsets, kv_capacity=kv_capacity)
    macro = run_trace(True, fresh_requests(lengths), offsets, kv_capacity=kv_capacity)
    assert macro["preemptions"] == golden["preemptions"]
    assert macro["stats"]["preempted"] == golden["stats"]["preempted"]
    assert macro == golden


def test_interrupted_window_releases_unexecuted_kv_reservation():
    """A window abandoned by a mid-flight submission must leave the KV pool
    in the exact per-token state: the end-of-window growth probed at planning
    time must not stay reserved, or the newcomer's admission (and any
    resulting preemption) diverges from the reference engine."""
    lengths = [(100, 400), (100, 400), (100, 50)]
    offsets = [0.0, 0.0, 5.0]  # the third request interrupts a long window
    golden = run_trace(False, fresh_requests(lengths), offsets, kv_capacity=1100)
    macro = run_trace(True, fresh_requests(lengths), offsets, kv_capacity=1100)
    assert macro == golden


@settings(max_examples=15, deadline=None)
@given(
    lengths=st.lists(
        st.tuples(st.integers(min_value=50, max_value=400),
                  st.integers(min_value=5, max_value=150)),
        min_size=2,
        max_size=10,
    ),
    kv_capacity=st.integers(min_value=1500, max_value=3000),
    rate=st.floats(min_value=0.2, max_value=2.0),
)
def test_property_kv_pressure_with_staggered_arrivals(lengths, kv_capacity, rate):
    """KV pressure plus arrivals that interrupt in-flight windows: every
    admission, preemption and timing must still match the reference loop.

    The domain is bounded (modest outputs, KV that fits several sequences):
    deeper starvation regimes make the *reference* engine thrash through
    quadratic preemption restarts, which is a cost problem, not a divergence
    one — equivalence there is covered by the deterministic tests above."""
    offsets = PoissonArrival(rate=rate, seed=13).offsets(len(lengths))
    golden = run_trace(False, fresh_requests(lengths), offsets, kv_capacity=kv_capacity)
    macro = run_trace(True, fresh_requests(lengths), offsets, kv_capacity=kv_capacity)
    assert macro == golden


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    rate=st.floats(min_value=0.5, max_value=30.0),
    max_seqs=st.integers(min_value=1, max_value=8),
)
def test_property_macro_equivalence_under_bounded_concurrency(n, rate, max_seqs):
    workload = ShareGPTWorkload()
    offsets = PoissonArrival(rate=rate, seed=3).offsets(n)
    golden = run_trace(False, workload.generate(SPEC_8B.name, num_requests=n),
                       offsets, max_num_seqs=max_seqs)
    macro = run_trace(True, workload.generate(SPEC_8B.name, num_requests=n),
                      offsets, max_num_seqs=max_seqs)
    assert macro == golden


def test_golden_trace_controller_drain_mid_window():
    """An autoscale controller draining the engine mid-macro-window (a scale
    event) splits the window like an admission does; every request still
    completes with timings bit-identical to the per-token engine."""
    lengths = [(100, 300), (120, 280), (90, 260), (110, 240)]
    offsets = [0.0, 0.0, 0.5, 0.5]
    golden = run_trace(False, fresh_requests(lengths), offsets, drain_at=7.0)
    macro = run_trace(True, fresh_requests(lengths), offsets, drain_at=7.0)
    assert macro == golden
    assert all(trace[1] for trace in macro["results"])  # all succeeded


def test_golden_trace_drain_then_stop():
    """Scale-down drain followed by a hard terminate: partial progress at the
    stop must match the reference engine exactly."""
    lengths = [(100, 300), (120, 280), (90, 260), (110, 240)]
    offsets = [0.0, 0.0, 0.5, 0.5]
    golden = run_trace(False, fresh_requests(lengths), offsets,
                       drain_at=3.0, stop_at=9.0)
    macro = run_trace(True, fresh_requests(lengths), offsets,
                      drain_at=3.0, stop_at=9.0)
    # Same queue-drain caveat as test_golden_trace_stop_mid_run.
    golden.pop("end_time")
    macro.pop("end_time")
    assert macro == golden


@settings(max_examples=15, deadline=None)
@given(
    drain_at=st.floats(min_value=0.1, max_value=60.0),
    rate=st.floats(min_value=0.5, max_value=8.0),
    n=st.integers(min_value=2, max_value=20),
)
def test_property_drain_is_equivalence_preserving(drain_at, rate, n):
    """Wherever the controller's scale event lands — inside a window, at a
    boundary, before admission, after completion — splitting the window must
    not perturb any simulated timing."""
    workload = ShareGPTWorkload()
    offsets = PoissonArrival(rate=rate, seed=5).offsets(n)
    golden = run_trace(False, workload.generate(SPEC_70B.name, num_requests=n),
                       offsets, drain_at=drain_at)
    macro = run_trace(True, workload.generate(SPEC_70B.name, num_requests=n),
                      offsets, drain_at=drain_at)
    assert macro == golden


def test_macro_stepping_uses_fewer_kernel_events():
    """The point of the exercise: same simulated outcome, far fewer events."""

    def count_steps(macro):
        env = Environment()
        engine = make_engine(env, macro)
        steps = 0
        original = env.step

        def counting_step():
            nonlocal steps
            steps += 1
            original()

        env.step = counting_step
        events = [
            engine.submit(InferenceRequest(f"c-{i}", SPEC_70B.name, prompt_tokens=100,
                                           max_output_tokens=150))
            for i in range(4)
        ]
        env.run(until=env.all_of(events))
        return steps

    assert count_steps(True) * 5 < count_steps(False)


def _run_streaming_unconsumed(macro):
    """One streaming request nobody reads plus a plain neighbour; returns the
    channel's undelivered event trace and the kernel-event count."""
    env = Environment()
    engine = make_engine(env, macro)
    channel = StreamChannel(env)
    request = InferenceRequest("ns-0", SPEC_70B.name, prompt_tokens=80,
                               max_output_tokens=120)
    request.stream = True
    request.metadata[STREAM_CHANNEL_KEY] = channel
    steps = 0
    original = env.step

    def counting_step():
        nonlocal steps
        steps += 1
        original()

    env.step = counting_step
    done = engine.submit(request)
    other = engine.submit(InferenceRequest("ns-1", SPEC_70B.name, prompt_tokens=60,
                                           max_output_tokens=90))
    env.run(until=env.all_of([done, other]))
    trace = [(item.kind, item.index, item.time) for item in channel._items]
    return trace, steps


def test_unconsumed_stream_macro_steps_with_identical_events():
    """A streaming channel nobody is reading must not force per-token
    stepping: the macro engine delivers the same event sequence (same kinds,
    indices and production times) in window-sized batches, with far fewer
    kernel events."""
    macro_trace, macro_steps = _run_streaming_unconsumed(True)
    ref_trace, ref_steps = _run_streaming_unconsumed(False)
    assert macro_trace == ref_trace
    assert macro_trace[-1][0] == "done"
    assert len(macro_trace) == 121  # 120 tokens + done
    assert macro_steps * 5 < ref_steps


@pytest.mark.parametrize("crossover", [1, 10**9])
def test_vectorized_planning_is_bit_identical_across_crossover(crossover):
    """Forcing the numpy path on (crossover=1) or off (crossover=huge) must
    not perturb a single timing relative to the per-token reference — the
    scenario's batch widths span the default crossover from both sides."""
    workload = ShareGPTWorkload()
    offsets = PoissonArrival(rate=6.0, seed=17).offsets(80)
    golden = run_trace(False, workload.generate(SPEC_70B.name, num_requests=80),
                       offsets)
    vec = run_trace(True, workload.generate(SPEC_70B.name, num_requests=80),
                    offsets, crossover=crossover)
    assert vec == golden


def test_macro_stepping_without_numpy_is_bit_identical(monkeypatch):
    """The scalar fallback (numpy absent) replays the reference exactly."""
    import repro.serving.engine as engine_mod

    workload = ShareGPTWorkload()
    offsets = PoissonArrival(rate=6.0, seed=19).offsets(60)
    golden = run_trace(False, workload.generate(SPEC_70B.name, num_requests=60),
                       offsets)
    monkeypatch.setattr(engine_mod, "_np", None)
    macro = run_trace(True, workload.generate(SPEC_70B.name, num_requests=60),
                      offsets)
    assert macro == golden
