"""Deliberately hash()-keyed toy scenario for the compare_hashseeds tests.

Not a test module (pytest only collects ``test_*.py``); it exists so the
:func:`repro.analysis.detsan.compare_hashseeds` subprocess halves can import
a target whose "fingerprint" *does* depend on ``PYTHONHASHSEED`` — proving
the harness detects exactly the bug class it gates against.
"""

import hashlib

# detlint: disable-file=DET003 — this module exists to demonstrate the
# hash() hazard the determinism harness must catch; it is never imported by
# production code.

_ITEMS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]


def hash_keyed_fingerprint() -> str:
    """A result keyed by builtin ``hash()`` ordering — the DET003 bug class."""
    ordered = sorted(_ITEMS, key=lambda item: hash(item))
    return hashlib.sha256(repr(ordered).encode()).hexdigest()
