"""Tests for ServingInstance, OfflineBatchRunner, EmbeddingEngine, backends, textgen."""

import numpy as np
import pytest

from repro.cluster import A100_40GB, Node, dgx_a100_spec, small_test_cluster
from repro.serving import (
    BACKENDS,
    EmbeddingEngine,
    EngineConfig,
    InferenceRequest,
    InstanceState,
    OfflineBatchRunner,
    PerformanceModel,
    RequestKind,
    ServingInstance,
    SyntheticTextGenerator,
    default_catalog,
    estimate_tokens,
    get_backend,
    hash_embedding,
)
from repro.sim import Environment

CATALOG = default_catalog()


def make_request(i, prompt=220, output=100, model="meta-llama/Llama-3.3-70B-Instruct"):
    return InferenceRequest(
        request_id=f"req-{i:05d}", model=model, prompt_tokens=prompt, max_output_tokens=output
    )


# ---------------------------------------------------------------------------
# ServingInstance
# ---------------------------------------------------------------------------

def test_instance_cold_start_then_ready():
    env = Environment()
    node = Node("n0", dgx_a100_spec())
    spec = CATALOG.get("Llama-3.3-70B")
    inst = ServingInstance(env, spec, [node], engine_config=EngineConfig(generate_text=False))
    assert inst.state == InstanceState.STARTING
    env.run(until=inst.ready)
    assert inst.state == InstanceState.RUNNING
    # 70B cold start: weight read + engine init ≈ 1 minute.
    assert 40.0 <= env.now <= 120.0
    assert len(node.free_gpus) == 0  # TP=8 reserved all GPUs


def test_instance_serves_requests_after_ready():
    env = Environment()
    node = Node("n0", dgx_a100_spec())
    spec = CATALOG.get("Llama-3.1-8B")
    inst = ServingInstance(env, spec, [node], engine_config=EngineConfig(generate_text=False))

    def run(env):
        yield inst.ready
        ev = inst.submit(make_request(0, model=spec.name))
        result = yield ev
        return result

    p = env.process(run(env))
    env.run(until=p)
    assert p.value.success
    assert p.value.output_tokens == 100


def test_instance_submit_before_ready_raises():
    env = Environment()
    node = Node("n0", dgx_a100_spec())
    spec = CATALOG.get("Llama-3.1-8B")
    inst = ServingInstance(env, spec, [node])
    with pytest.raises(RuntimeError):
        inst.submit(make_request(0))


def test_instance_insufficient_gpus_rolls_back():
    env = Environment()
    node = Node("n0", dgx_a100_spec())
    spec = CATALOG.get("Llama-3.3-70B")
    node.reserve_gpus(4, 20.0, owner="other")  # only 4 free, need 8
    with pytest.raises(RuntimeError):
        ServingInstance(env, spec, [node])
    # The failed attempt must not leak reservations.
    assert len(node.free_gpus) == 4


def test_instance_colocation_on_one_node():
    """Paper §3.2.2: a 70B on 6 GPUs is not modelled, but an 8B (TP=4) and a
    7B (TP=1) co-locate with a 14B (TP=2) on one 8-GPU node."""
    env = Environment()
    node = Node("n0", dgx_a100_spec())
    i1 = ServingInstance(env, CATALOG.get("Llama-3.1-8B"), [node])
    i2 = ServingInstance(env, CATALOG.get("Qwen/Qwen2.5-7B-Instruct"), [node])
    i3 = ServingInstance(env, CATALOG.get("Qwen/Qwen2.5-14B-Instruct"), [node])
    env.run(until=env.all_of([i1.ready, i2.ready, i3.ready]))
    assert len(node.free_gpus) == 8 - (4 + 1 + 2)


def test_instance_multi_node_reservation():
    """A 405B model (~800 GB of VRAM needed, §4.3) spans four 8xA100-40GB nodes."""
    env = Environment()
    cluster = small_test_cluster(num_nodes=4, gpus_per_node=8)
    spec = CATALOG.get("Llama-3.1-405B")
    inst = ServingInstance(env, spec, cluster.nodes, tensor_parallel=32)
    env.run(until=inst.ready)
    assert all(len(n.free_gpus) == 0 for n in cluster.nodes)
    # Multi-node load (weight volume + fabric coordination) takes far longer
    # than a single-node 70B load (~60 s).
    assert inst.load_time_s > 70.0


def test_instance_stop_releases_gpus_and_fails_engine():
    env = Environment()
    node = Node("n0", dgx_a100_spec())
    spec = CATALOG.get("Llama-3.1-8B")
    inst = ServingInstance(env, spec, [node])
    env.run(until=inst.ready)
    inst.stop()
    assert inst.state == InstanceState.STOPPED
    assert len(node.free_gpus) == 8
    with pytest.raises(RuntimeError):
        inst.submit(make_request(0))


def test_instance_stop_while_loading():
    env = Environment()
    node = Node("n0", dgx_a100_spec())
    spec = CATALOG.get("Llama-3.3-70B")
    inst = ServingInstance(env, spec, [node])

    def stopper(env):
        yield env.timeout(5.0)
        inst.stop()

    env.process(stopper(env))
    env.run(until=200.0)
    assert inst.state == InstanceState.STOPPED
    assert len(node.free_gpus) == 8


def test_instance_idle_tracking():
    env = Environment()
    node = Node("n0", dgx_a100_spec())
    spec = CATALOG.get("Llama-3.1-8B")
    inst = ServingInstance(env, spec, [node], engine_config=EngineConfig(generate_text=False))

    def run(env):
        yield inst.ready
        ev = inst.submit(make_request(0, model=spec.name, output=20))
        yield ev
        yield env.timeout(500.0)
        return inst.idle_for_s

    p = env.process(run(env))
    env.run(until=p)
    assert p.value >= 500.0


def test_instance_rejects_embedding_only_backend_for_chat_model():
    env = Environment()
    node = Node("n0", dgx_a100_spec())
    spec = CATALOG.get("Llama-3.1-8B")
    with pytest.raises(ValueError):
        ServingInstance(env, spec, [node], backend="infinity")


# ---------------------------------------------------------------------------
# Offline batch runner
# ---------------------------------------------------------------------------

def test_offline_runner_processes_all_requests():
    env = Environment()
    spec = CATALOG.get("Llama-3.3-70B")
    perf = PerformanceModel(spec, 8, A100_40GB, node_spec=dgx_a100_spec())
    runner = OfflineBatchRunner(env, perf)
    requests = [make_request(i, output=150) for i in range(200)]

    def run(env):
        result = yield from runner.run(requests)
        return result

    p = env.process(run(env))
    env.run(until=p)
    out = p.value
    assert out.num_completed == 200
    assert out.total_output_tokens == 200 * 150
    assert out.load_time_s > 0
    assert out.duration_s == pytest.approx(out.load_time_s + out.processing_time_s)
    # Offline processing reaches close to the engine's saturated throughput.
    assert out.processing_output_tok_s > 1200.0


def test_offline_runner_load_time_amortisation():
    """§5.3.1: the cold start dominates small batches but amortises for large ones."""
    spec = CATALOG.get("Llama-3.3-70B")

    def run_batch(n):
        env = Environment()
        perf = PerformanceModel(spec, 8, A100_40GB, node_spec=dgx_a100_spec())
        runner = OfflineBatchRunner(env, perf)
        reqs = [make_request(i, output=150) for i in range(n)]
        p = env.process(runner.run(reqs))
        env.run(until=p)
        return p.value

    small = run_batch(20)
    large = run_batch(500)
    assert small.load_time_s / small.duration_s > large.load_time_s / large.duration_s
    assert large.overall_output_tok_s > small.overall_output_tok_s


def test_offline_runner_empty_batch():
    env = Environment()
    spec = CATALOG.get("Llama-3.1-8B")
    perf = PerformanceModel(spec, 4, A100_40GB, node_spec=dgx_a100_spec())
    runner = OfflineBatchRunner(env, perf)
    p = env.process(runner.run([]))
    env.run(until=p)
    assert p.value.results == []
    assert p.value.duration_s == 0.0


# ---------------------------------------------------------------------------
# Embedding engine
# ---------------------------------------------------------------------------

def test_hash_embedding_deterministic_and_normalised():
    a = hash_embedding("parallel file system tuning", dim=128)
    b = hash_embedding("parallel file system tuning", dim=128)
    assert np.allclose(a, b)
    assert np.linalg.norm(a) == pytest.approx(1.0)


def test_hash_embedding_similarity_orders_related_texts():
    query = hash_embedding("how do I submit a PBS job on the cluster")
    related = hash_embedding("submit a PBS job with qsub on the cluster login node")
    unrelated = hash_embedding("the climate model uses spectral transforms")
    assert float(query @ related) > float(query @ unrelated)


def test_embedding_engine_batches_and_returns_vectors():
    env = Environment()
    spec = CATALOG.get("nvidia/NV-Embed-v2")
    engine = EmbeddingEngine(env, spec, num_gpus=1)
    reqs = [
        InferenceRequest(
            request_id=f"emb-{i}",
            model=spec.name,
            prompt_tokens=64,
            max_output_tokens=1,
            kind=RequestKind.EMBEDDING,
            prompt_text=f"document {i} about GPU memory",
        )
        for i in range(10)
    ]
    events = [engine.submit(r) for r in reqs]
    env.run(until=env.all_of(events))
    results = [ev.value for ev in events]
    assert all(r.success for r in results)
    assert all(len(r.embedding) == spec.embedding_dim for r in results)
    assert engine.completed == 10
    # Batched: total time well under 10 sequential batches.
    assert env.now < 1.0


# ---------------------------------------------------------------------------
# Backends and text generation
# ---------------------------------------------------------------------------

def test_backend_registry_contents():
    assert "vllm" in BACKENDS and "infinity" in BACKENDS
    assert get_backend("VLLM").throughput_factor == 1.0
    assert get_backend("sglang").throughput_factor > 1.0
    assert not get_backend("infinity").supports_generation
    with pytest.raises(KeyError):
        get_backend("unknown-backend")


def test_textgen_token_count_and_determinism():
    gen = SyntheticTextGenerator()
    req = InferenceRequest("r-1", "m", prompt_tokens=10, max_output_tokens=100,
                           prompt_text="hello")
    text1 = gen.generate(req, 100)
    text2 = gen.generate(req, 100)
    assert text1 == text2
    # ~0.75 words per token
    assert 60 <= len(text1.split()) <= 90
    assert estimate_tokens(text1) >= 80
