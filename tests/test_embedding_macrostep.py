"""Macro-stepping equivalence tests for the embedding engine.

The macro-stepped embedding engine (``EmbeddingEngineConfig.macro_stepping``)
must reproduce the stepwise reference loop exactly — same completion times
for every request — while scheduling fewer kernel events.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    EmbeddingEngine,
    EmbeddingEngineConfig,
    InferenceRequest,
    RequestKind,
    default_catalog,
)
from repro.sim import Environment
from repro.workload import PoissonArrival

CATALOG = default_catalog()
SPEC = CATALOG.get("nvidia/NV-Embed-v2")


def make_request(i, prompt_tokens=64):
    return InferenceRequest(
        request_id=f"emb-{i:04d}",
        model=SPEC.name,
        prompt_tokens=prompt_tokens,
        max_output_tokens=1,
        kind=RequestKind.EMBEDDING,
        prompt_text=f"document {i} about GPU memory",
    )


def run_trace(macro, token_counts, offsets, max_batch_size=8, count_events=False):
    """Drive one embedding engine over a timed workload."""
    env = Environment()
    config = EmbeddingEngineConfig(
        max_batch_size=max_batch_size,
        embedding_dim=SPEC.embedding_dim or 384,
        macro_stepping=macro,
    )
    engine = EmbeddingEngine(env, SPEC, num_gpus=1, config=config)
    steps = 0
    if count_events:
        original = env.step

        def counting_step():
            nonlocal steps
            steps += 1
            original()

        env.step = counting_step
    events = []

    def driver(env):
        last = 0.0
        for i, (tokens, offset) in enumerate(zip(token_counts, offsets)):
            if offset > last:
                yield env.timeout(offset - last)
                last = offset
            events.append(engine.submit(make_request(i, tokens)))

    env.process(driver(env))
    env.run()
    trace = [
        (ev.value.request_id, ev.value.completion_time, ev.value.success)
        for ev in events
    ]
    return {"trace": trace, "completed": engine.completed,
            "end_time": env.now, "steps": steps}


def test_burst_backlog_is_bit_identical_and_cheaper():
    """A burst that fills several complete batches: identical completion
    times with roughly half the kernel events (one per batch, not two)."""
    token_counts = [32 + (i * 7) % 90 for i in range(40)]
    offsets = [0.0] * 40
    golden = run_trace(False, token_counts, offsets, count_events=True)
    macro = run_trace(True, token_counts, offsets, count_events=True)
    assert macro["trace"] == golden["trace"]
    assert macro["end_time"] == golden["end_time"]
    assert macro["steps"] < golden["steps"]


def test_arrivals_during_window_join_partial_batches_identically():
    """Requests landing inside an open batching window must join the same
    batch in both modes (macro only plans batches that are already full)."""
    token_counts = [50] * 12
    # Three at t=0 (partial batch), more trickling in just inside the
    # 10 ms batching window, then a second burst while batch 1 serves.
    offsets = [0.0, 0.0, 0.0, 0.004, 0.006, 0.009,
               0.02, 0.02, 0.02, 0.02, 0.02, 0.021]
    golden = run_trace(False, token_counts, offsets, max_batch_size=4)
    macro = run_trace(True, token_counts, offsets, max_batch_size=4)
    assert macro == golden


@settings(max_examples=30, deadline=None)
@given(
    token_counts=st.lists(st.integers(min_value=1, max_value=512),
                          min_size=1, max_size=60),
    rate=st.floats(min_value=5.0, max_value=5000.0),
    max_batch_size=st.integers(min_value=1, max_value=12),
)
def test_property_macro_stepping_is_equivalence_preserving(
        token_counts, rate, max_batch_size):
    """Any arrival pattern, any batch size: completion times never differ."""
    offsets = PoissonArrival(rate=rate, seed=29).offsets(len(token_counts))
    golden = run_trace(False, token_counts, offsets,
                       max_batch_size=max_batch_size)
    macro = run_trace(True, token_counts, offsets,
                      max_batch_size=max_batch_size)
    assert macro == golden
