"""Seasonal (daily + weekly) terms of the predictive autoscaling policy."""

import pytest

from repro.autoscale import AutoscaleConfig
from repro.autoscale.metrics import MetricsSample
from repro.autoscale.policy import PredictivePolicy, make_policy

DAY = 86400.0
WEEK = 7 * DAY
HOUR = 3600.0


def _sample(t, rate, provisioned=1, waiting=0):
    return MetricsSample(
        time=t, model="m", ready_instances=provisioned, starting_instances=0,
        draining_instances=0, waiting_tasks=waiting, in_flight_tasks=0,
        slots_per_instance=8, arrival_rate_rps=rate, completion_rate_rps=rate,
        kv_utilization=0.1, cold_start_estimate_s=600.0,
        provisioned_instances=provisioned)


def _weekly_rate(t):
    """Flat 1 rps, daily peak of 6 rps at 11:00-13:00, weekly super-peak of
    12 rps on day 6 at the same hours."""
    hour = (t % DAY) / HOUR
    day = int((t % WEEK) // DAY)
    rate = 1.0
    if 11 <= hour < 13:
        rate += 5.0
        if day == 6:
            rate += 6.0
    return rate


def _train(policy, until, step=HOUR):
    t = 0.0
    while t <= until:
        policy._observe(_sample(t, _weekly_rate(t)))
        t += step
    return t - step


def test_seasonal_validation():
    with pytest.raises(ValueError):
        PredictivePolicy(seasonal_periods=(0.0,))
    with pytest.raises(ValueError):
        PredictivePolicy(seasonal_periods=(DAY,), seasonal_gamma=1.5)
    with pytest.raises(ValueError):
        PredictivePolicy(seasonal_periods=(DAY,), seasonal_buckets=0)
    with pytest.raises(ValueError):
        AutoscaleConfig(policy="predictive", seasonal_periods=(-1.0,))


def test_no_seasonal_periods_is_plain_holt():
    plain = PredictivePolicy(instance_rps=1.0)
    seasonal_off = PredictivePolicy(instance_rps=1.0, seasonal_periods=())
    for t in range(0, 20):
        plain._observe(_sample(t * 60.0, 2.0))
        seasonal_off._observe(_sample(t * 60.0, 2.0))
    assert plain.forecast_rate(600.0, 60.0) == seasonal_off.forecast_rate(600.0, 60.0)
    assert seasonal_off.seasonal_at(123.0) == 0.0


def test_config_factory_passes_seasonal_knobs_through():
    policy = make_policy(AutoscaleConfig(
        policy="predictive", seasonal_periods=(DAY, WEEK),
        seasonal_gamma=0.4, seasonal_buckets=48))
    assert policy.seasonal_periods == (DAY, WEEK)
    assert policy.seasonal_gamma == 0.4
    assert policy.seasonal_buckets == (48, 48)  # int broadcasts per period
    per_period = make_policy(AutoscaleConfig(
        policy="predictive", seasonal_periods=(DAY, WEEK),
        seasonal_buckets=(24, 168)))
    assert per_period.seasonal_buckets == (24, 168)
    with pytest.raises(ValueError):
        AutoscaleConfig(policy="predictive", seasonal_periods=(DAY, WEEK),
                        seasonal_buckets=(24,))


def test_forecast_sees_daily_peak_ahead_while_trend_is_flat():
    policy = PredictivePolicy(instance_rps=1.0, seasonal_periods=(DAY,),
                              seasonal_gamma=0.5)
    last = _train(policy, 7 * DAY + 9 * HOUR)  # day 8, 09:00
    assert (last % DAY) / HOUR == 9
    now = policy.forecast_rate(0.0, HOUR)
    ahead = policy.forecast_rate(3 * HOUR, HOUR)  # lands at 12:00
    assert now < 2.5
    assert ahead > now + 2.0


def test_forecast_prewarms_ahead_of_weekly_peak():
    """The regression the satellite demands: with daily+weekly terms the
    policy requests capacity *before* the weekly super-peak hits, while a
    plain Holt policy (flat recent trend) does not."""
    seasonal = PredictivePolicy(lead_s=2 * HOUR, instance_rps=1.0,
                                seasonal_periods=(DAY, WEEK),
                                seasonal_gamma=0.5,
                                seasonal_buckets=(24, 168))
    plain = PredictivePolicy(lead_s=2 * HOUR, instance_rps=1.0)
    until = 2 * WEEK + 6 * DAY + 10 * HOUR  # week 3, day 6, 10:00
    _train(seasonal, until)
    _train(plain, until)

    # Two hours before the super-peak both see the same flat 1 rps traffic,
    # but only the seasonal forecast projects the recurring surge.
    t_now = until
    ahead_seasonal = seasonal.forecast_rate(2 * HOUR, HOUR)
    ahead_plain = plain.forecast_rate(2 * HOUR, HOUR)
    assert ahead_plain < 2.5
    assert ahead_seasonal > ahead_plain + 3.0

    # Decide at 10:10 (still flat traffic, consistent with the pattern);
    # the 2h lead lands at 12:10, inside the recurring super-peak window.
    decision_seasonal = seasonal.decide(_sample(t_now + 600.0, 1.0))
    decision_plain = plain.decide(_sample(t_now + 600.0, 1.0))
    assert decision_seasonal.target > decision_plain.target
    assert "forecast" in (decision_seasonal.reason or "")

    # The weekly term is what distinguishes day 6 noon from any other noon —
    # a daily-only model is constitutionally flat across days of the week.
    noon_day6 = 3 * WEEK + 6 * DAY + 12 * HOUR
    noon_day2 = 3 * WEEK + 2 * DAY + 12 * HOUR
    assert seasonal.seasonal_at(noon_day6) > seasonal.seasonal_at(noon_day2) + 1.0
    daily_only = PredictivePolicy(lead_s=2 * HOUR, instance_rps=1.0,
                                  seasonal_periods=(DAY,), seasonal_gamma=0.5)
    _train(daily_only, until)
    assert daily_only.seasonal_at(noon_day6) == daily_only.seasonal_at(noon_day2)
