"""Tests for metrics summaries, workload generation, arrivals and batch files."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ValidationError
from repro.metrics import MetricsCollector, RequestRecord, percentile, summarize
from repro.workload import (
    BATCH_GENERATION_CONFIG,
    InfiniteArrival,
    PoissonArrival,
    ShareGPTConfig,
    ShareGPTWorkload,
    UniformArrival,
    make_arrival,
    parse_batch_lines,
    read_batch_file,
    requests_to_jsonl,
    write_batch_file,
)


# -- metrics -------------------------------------------------------------------

def make_record(i, send, latency, tokens=100, success=True):
    return RequestRecord(
        request_id=f"r{i}",
        model="m",
        send_time=send,
        completion_time=send + latency,
        prompt_tokens=50,
        output_tokens=tokens,
        success=success,
    )


def test_request_record_latency():
    rec = make_record(0, send=2.0, latency=3.5)
    assert rec.latency_s == pytest.approx(3.5)
    rec.first_token_time = 2.5
    assert rec.time_to_first_token_s == pytest.approx(0.5)


def test_summarize_matches_paper_metric_definitions():
    records = [make_record(i, send=0.0, latency=float(i + 1), tokens=100) for i in range(10)]
    summary = summarize(records, label="test", duration_s=10.0)
    assert summary.num_successful == 10
    assert summary.request_throughput == pytest.approx(1.0)
    assert summary.output_token_throughput == pytest.approx(100.0)
    assert summary.median_latency_s == pytest.approx(5.5)
    assert summary.duration_s == 10.0
    assert "req/s" in summary.row()
    assert summary.to_dict()["num_requests"] == 10


def test_summarize_excludes_failures_from_throughput():
    records = [make_record(i, 0.0, 1.0) for i in range(5)]
    records += [make_record(10 + i, 0.0, 1.0, success=False) for i in range(5)]
    summary = summarize(records, duration_s=5.0)
    assert summary.num_requests == 10
    assert summary.num_successful == 5
    assert summary.request_throughput == pytest.approx(1.0)


def test_summarize_default_duration_spans_send_to_last_completion():
    records = [make_record(0, send=1.0, latency=2.0), make_record(1, send=3.0, latency=4.0)]
    summary = summarize(records)
    assert summary.duration_s == pytest.approx(6.0)  # from t=1 to t=7


def test_summarize_empty():
    summary = summarize([], label="empty")
    assert summary.num_requests == 0
    assert summary.request_throughput == 0.0


def test_percentile_empty_and_basic():
    assert percentile([], 50) == 0.0
    assert percentile([1.0, 2.0, 3.0], 50) == 2.0


def test_collector_partitions_success_and_failure():
    collector = MetricsCollector()
    collector.record(make_record(0, 0.0, 1.0))
    collector.record(make_record(1, 0.0, 1.0, success=False))
    assert len(collector) == 2
    assert len(collector.successful) == 1
    assert len(collector.failed) == 1
    collector.clear()
    assert len(collector) == 0


# -- ShareGPT-like workload --------------------------------------------------------

def test_sharegpt_workload_is_deterministic():
    w1 = ShareGPTWorkload().generate("m", num_requests=50)
    w2 = ShareGPTWorkload().generate("m", num_requests=50)
    assert [(r.prompt_tokens, r.max_output_tokens) for r in w1] == [
        (r.prompt_tokens, r.max_output_tokens) for r in w2
    ]


def test_sharegpt_workload_matches_target_means():
    requests = ShareGPTWorkload().generate("m", num_requests=2000)
    mean_prompt = np.mean([r.prompt_tokens for r in requests])
    mean_output = np.mean([r.max_output_tokens for r in requests])
    # Calibrated to the effective ShareGPT means implied by the paper
    # (~220 prompt / ~180 output tokens); truncation shifts them slightly.
    assert 170 <= mean_prompt <= 270
    assert 140 <= mean_output <= 220


def test_sharegpt_workload_respects_bounds_and_config_validation():
    cfg = ShareGPTConfig(num_requests=500, max_output_tokens=300, min_output_tokens=10)
    requests = ShareGPTWorkload(cfg).generate("m")
    assert all(10 <= r.max_output_tokens <= 300 for r in requests)
    with pytest.raises(ValueError):
        ShareGPTConfig(num_requests=0)
    with pytest.raises(ValueError):
        ShareGPTConfig(mean_prompt_tokens=-1)


def test_batch_generation_profile_longer_outputs():
    interactive = ShareGPTWorkload().generate("m", num_requests=300)
    batch = ShareGPTWorkload(BATCH_GENERATION_CONFIG).generate("m", num_requests=300)
    assert np.mean([r.max_output_tokens for r in batch]) > 2 * np.mean(
        [r.max_output_tokens for r in interactive]
    )


# -- arrivals ------------------------------------------------------------------------

def test_infinite_arrival_all_zero():
    assert InfiniteArrival().offsets(5) == [0.0] * 5
    assert InfiniteArrival().label == "inf"


def test_uniform_arrival_spacing():
    offsets = UniformArrival(rate=2.0).offsets(4)
    assert offsets == [0.0, 0.5, 1.0, 1.5]


def test_poisson_arrival_mean_rate():
    offsets = PoissonArrival(rate=10.0, seed=3).offsets(5000)
    assert offsets[0] == 0.0
    observed_rate = (len(offsets) - 1) / offsets[-1]
    assert observed_rate == pytest.approx(10.0, rel=0.1)


def test_arrival_validation_and_factory():
    with pytest.raises(ValueError):
        PoissonArrival(0.0)
    with pytest.raises(ValueError):
        UniformArrival(-1.0)
    assert isinstance(make_arrival(None), InfiniteArrival)
    assert isinstance(make_arrival(float("inf")), InfiniteArrival)
    assert isinstance(make_arrival(5.0), PoissonArrival)
    assert isinstance(make_arrival(5.0, poisson=False), UniformArrival)


@settings(max_examples=30, deadline=None)
@given(rate=st.floats(min_value=0.1, max_value=100.0), n=st.integers(min_value=1, max_value=200))
def test_property_arrival_offsets_sorted_nonnegative(rate, n):
    for arrival in (PoissonArrival(rate, seed=1), UniformArrival(rate), InfiniteArrival()):
        offsets = arrival.offsets(n)
        assert len(offsets) == n
        assert all(o >= 0 for o in offsets)
        assert offsets == sorted(offsets)


# -- batch JSONL files -------------------------------------------------------------------

def test_batch_jsonl_roundtrip(tmp_path):
    requests = ShareGPTWorkload().generate("meta-llama/Llama-3.3-70B-Instruct", num_requests=20)
    path = write_batch_file(tmp_path / "batch.jsonl", requests)
    parsed = read_batch_file(path)
    assert len(parsed) == 20
    assert parsed[0].model == "meta-llama/Llama-3.3-70B-Instruct"
    assert parsed[0].request_id == requests[0].request_id
    assert parsed[0].max_output_tokens == requests[0].max_output_tokens
    assert parsed[0].prompt_tokens == requests[0].prompt_tokens


def test_batch_jsonl_validation_errors():
    with pytest.raises(ValidationError):
        parse_batch_lines("not json at all")
    with pytest.raises(ValidationError):
        parse_batch_lines('{"custom_id": "x", "body": {"messages": []}}')  # missing model
    with pytest.raises(ValidationError):
        parse_batch_lines('{"custom_id": "x", "body": {"model": "m", "max_tokens": 0}}')
    with pytest.raises(ValidationError):
        parse_batch_lines("")


def test_batch_jsonl_estimates_prompt_tokens_when_no_hint():
    line = ('{"custom_id": "a", "body": {"model": "m", "max_tokens": 10, '
            '"messages": [{"role": "user", "content": "one two three four five six"}]}}')
    parsed = parse_batch_lines(line)
    assert parsed[0].prompt_tokens >= 6
