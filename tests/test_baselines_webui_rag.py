"""Tests for the baselines, the WebUI layer and the RAG pipeline."""

import numpy as np
import pytest

from repro.baselines import DirectVLLMTarget, OpenAIAPIConfig, OpenAIAPITarget
from repro.cluster import Node, dgx_a100_spec
from repro.common import ValidationError
from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.rag import (
    FlatIndex,
    IVFIndex,
    RAGPipeline,
    chunk_corpus,
    chunk_document,
    hpc_documentation_corpus,
)
from repro.serving import InferenceRequest, default_catalog, hash_embedding
from repro.sim import Environment
from repro.webui import SessionStore, WebUIConcurrencyBenchmark, WebUIServer
from repro.workload import BenchmarkClient, PoissonArrival, ShareGPTWorkload

CATALOG = default_catalog()
MODEL_7B = "Qwen/Qwen2.5-7B-Instruct"
MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"


# -- Direct vLLM baseline ---------------------------------------------------------------

def test_direct_target_requires_ready_instance_and_serves():
    env = Environment()
    node = Node("n0", dgx_a100_spec())
    spec = CATALOG.get(MODEL_8B)
    pending, ready = DirectVLLMTarget.launch(env, spec, [node])
    with pytest.raises(RuntimeError):
        DirectVLLMTarget(pending.instance)  # not ready yet
    env.run(until=ready)
    target = pending.materialise()
    ev = target.submit(InferenceRequest("d-0", spec.name, prompt_tokens=100,
                                        max_output_tokens=50))
    env.run(until=ev)
    assert ev.value.success


# -- OpenAI API baseline --------------------------------------------------------------------

def test_openai_target_latency_and_rate_limit():
    env = Environment()
    target = OpenAIAPITarget(env, OpenAIAPIConfig(rate_limit_rps=5.0, median_latency_s=2.0))
    workload = ShareGPTWorkload().generate("gpt-4o-mini", num_requests=100)
    client = BenchmarkClient(env, target, label="OpenAI API")
    proc = env.process(client.run(workload, arrival=PoissonArrival(rate=4.5, seed=2)))
    summary = env.run(until=proc)
    # Below the rate limit, latency stays near the 2 s service time...
    assert 1.5 <= summary.median_latency_s <= 3.5
    # ...and throughput tracks the offered rate, far below FIRST's capability.
    assert 3.0 <= summary.request_throughput <= 5.5
    assert target.completed == 100


def test_openai_target_throttles_infinite_burst():
    env = Environment()
    target = OpenAIAPITarget(env, OpenAIAPIConfig(rate_limit_rps=6.7))
    events = [
        target.submit(InferenceRequest(f"o-{i}", "gpt-4o-mini", prompt_tokens=50,
                                       max_output_tokens=100))
        for i in range(200)
    ]
    env.run(until=env.all_of(events))
    duration = env.now
    assert 200 / duration == pytest.approx(6.7, rel=0.15)
    assert target.rate_limited_waits > 0


# -- WebUI -------------------------------------------------------------------------------------

@pytest.fixture(scope="module")
def webui_deployment():
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="devcluster", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(MODEL_7B, max_parallel_tasks=64)],
            )
        ],
        users=["researcher@anl.gov", "benchmark@anl.gov"],
        generate_text=True,
    )
    deployment = FIRSTDeployment(config)
    deployment.warm_up(MODEL_7B)
    return deployment


def test_session_store_and_history_growth():
    store = SessionStore()
    session = store.create("s-1", user="alice@anl.gov", model=MODEL_7B)
    base = session.history_tokens
    session.add_user_message("How do I submit a PBS job?")
    session.add_assistant_message("Use qsub with a job script.", tokens=20)
    session.add_user_message("And job arrays?")
    assert session.turns == 2
    assert session.history_tokens > base + 20
    assert store.sessions_for("alice@anl.gov") == [session]
    with pytest.raises(ValueError):
        store.create("s-1", user="alice@anl.gov", model=MODEL_7B)
    with pytest.raises(KeyError):
        store.get("missing")


def test_webui_chat_turn_and_model_listing(webui_deployment):
    webui = WebUIServer(webui_deployment)
    assert MODEL_7B in webui.available_models()
    session = webui.new_session("researcher@anl.gov", MODEL_7B)
    reply = webui.chat_turn_blocking(session.session_id, "Explain the debug queue limits",
                                     output_tokens=40)
    assert isinstance(reply, str) and len(reply) > 0
    assert session.turns == 1
    # History now includes the assistant reply, so the next turn's prompt is longer.
    first_prompt_tokens = session.history_tokens
    webui.chat_turn_blocking(session.session_id, "thanks, more detail please", output_tokens=40)
    assert session.history_tokens > first_prompt_tokens
    assert webui.turns_served == 2


def test_webui_rejects_unknown_model(webui_deployment):
    webui = WebUIServer(webui_deployment)
    with pytest.raises(ValidationError):
        webui.new_session("researcher@anl.gov", "not-a-model")


def test_webui_compare_multiple_models(webui_deployment):
    webui = WebUIServer(webui_deployment)
    answers = webui.compare("researcher@anl.gov", [MODEL_7B], "Compare storage tiers")
    assert set(answers) == {MODEL_7B}


def test_webui_concurrency_benchmark_scales(webui_deployment):
    webui = WebUIServer(webui_deployment)
    bench = WebUIConcurrencyBenchmark(webui, user="benchmark@anl.gov")
    low = bench.run(MODEL_7B, concurrency=8, duration_s=60.0)
    high = bench.run(MODEL_7B, concurrency=32, duration_s=60.0)
    assert high.completed_requests > low.completed_requests
    assert high.token_throughput > low.token_throughput
    assert "TP/s" in high.row()
    assert high.to_dict()["concurrency"] == 32


# -- RAG ------------------------------------------------------------------------------------------

def test_chunker_produces_bounded_chunks():
    corpus = hpc_documentation_corpus()
    chunks = chunk_document(corpus[0], max_tokens=32)
    assert len(chunks) >= 2
    assert all(c.tokens <= 40 for c in chunks)
    assert all(c.doc_id == corpus[0].doc_id for c in chunks)
    with pytest.raises(ValueError):
        chunk_document(corpus[0], max_tokens=0)
    all_chunks = chunk_corpus(corpus)
    assert len(all_chunks) >= len(corpus)


def test_flat_index_exact_search():
    index = FlatIndex(dim=16)
    vectors = np.eye(16)[:5]
    index.add(vectors, metadata=list("abcde"))
    hits = index.search(np.eye(16)[2], k=2)
    assert hits[0].metadata == "c"
    assert hits[0].score == pytest.approx(1.0)
    assert len(index) == 5
    with pytest.raises(ValueError):
        index.add(np.eye(8)[:1], ["bad-dim"])
    with pytest.raises(ValueError):
        index.add(np.eye(16)[:2], ["only-one-meta"])


def test_ivf_index_approximates_flat():
    rng = np.random.default_rng(0)
    dim = 32
    vectors = rng.normal(size=(200, dim))
    metadata = [f"item-{i}" for i in range(200)]
    flat = FlatIndex(dim)
    flat.add(vectors, metadata)
    ivf = IVFIndex(dim, n_lists=8, nprobe=4, seed=1)
    ivf.add(vectors, metadata)
    agree = 0
    for i in range(20):
        query = vectors[i] + rng.normal(scale=0.01, size=dim)
        top_flat = flat.search(query, k=1)[0].metadata
        top_ivf = ivf.search(query, k=1)[0].metadata
        agree += int(top_flat == top_ivf)
    assert agree >= 15  # high recall with 4 of 8 lists probed
    assert len(ivf) == 200


def test_rag_pipeline_local_embeddings_retrieves_relevant_docs():
    pipeline = RAGPipeline(client=None, local_embeddings=True, top_k=3)
    n = pipeline.ingest()
    assert n > 10
    answer = pipeline.answer("How do I submit a job with qsub and check the queue?")
    assert any("PBS" in s or "job" in s.lower() for s in answer.sources)
    hits = pipeline.retrieve("How large is the local SSD scratch on each node?")
    assert any(h.metadata.doc_id == "storage" for h in hits)


def test_rag_pipeline_with_first_service(webui_deployment):
    # Reuse the warm deployment; add the embedding model host on the fly is not
    # possible, so use local embeddings but the real chat endpoint.
    client = webui_deployment.client("researcher@anl.gov")
    pipeline = RAGPipeline(client=client, chat_model=MODEL_7B, local_embeddings=True, top_k=2)
    pipeline.ingest()
    answer = pipeline.answer("What is the walltime limit of the debug queue?", max_tokens=64)
    assert len(answer.answer) > 0
    assert len(answer.retrieved) == 2
