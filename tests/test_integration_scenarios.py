"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.serving import InferenceRequest
from repro.workload import BenchmarkClient, PoissonArrival, ShareGPTWorkload, requests_to_jsonl

MODEL_7B = "Qwen/Qwen2.5-7B-Instruct"
MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"


def build_deployment(**kwargs):
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="sophia", kind="small", num_nodes=3, scheduler="pbs",
                models=[
                    ModelDeploymentSpec(MODEL_7B, max_parallel_tasks=48, max_instances=2),
                    ModelDeploymentSpec(MODEL_8B, max_parallel_tasks=48),
                ],
            )
        ],
        users=["alice@anl.gov", "bob@university.edu"],
        generate_text=False,
        **kwargs,
    )
    return FIRSTDeployment(config)


def test_multi_user_mixed_workload_accounting():
    """Two users, two models, interactive + batch — accounting stays consistent."""
    deployment = build_deployment()
    deployment.warm_up(MODEL_7B)
    alice = deployment.client("alice@anl.gov")
    bob = deployment.client("bob@university.edu")

    # Interactive traffic from both users.
    events = []
    for i in range(10):
        events.append(alice.submit(InferenceRequest(f"alice-{i}", MODEL_7B,
                                                    prompt_tokens=100, max_output_tokens=40)))
        events.append(bob.submit(InferenceRequest(f"bob-{i}", MODEL_7B,
                                                  prompt_tokens=100, max_output_tokens=60)))
    deployment.env.run(until=deployment.env.all_of(events))

    # A batch from alice on the other model.
    batch_requests = ShareGPTWorkload().generate(MODEL_8B, num_requests=15, id_prefix="ab")
    batch = alice.create_batch(requests_to_jsonl(batch_requests))
    final = alice.wait_for_batch(batch["id"], poll_every_s=60.0)
    assert final["status"] == "completed"

    db = deployment.database
    # Interactive requests are logged per user with the right token counts.
    alice_logged = db.requests_for_user("alice@anl.gov")
    bob_logged = db.requests_for_user("bob@university.edu")
    assert len(alice_logged) == 10
    assert len(bob_logged) == 10
    assert all(e.output_tokens == 40 for e in alice_logged)
    assert all(e.output_tokens == 60 for e in bob_logged)
    assert db.users["alice@anl.gov"]["tokens"] == 10 * 40 + final["output_tokens"]
    assert db.usage_summary()["total_users"] == 2
    # Gateway metrics agree with the database for interactive traffic.
    assert deployment.gateway.metrics.total_completed == 20
    # Relay accounting: 20 chat tasks + 1 batch task.
    assert deployment.relay.stats.completed == 21


def test_instance_failure_mid_workload_recovers_and_serves_everything():
    """A model-server crash mid-run is detected and restarted; traffic completes."""
    deployment = build_deployment()
    deployment.warm_up(MODEL_7B)
    client = deployment.client("alice@anl.gov")
    requests = ShareGPTWorkload().generate(MODEL_7B, num_requests=40)
    bench = BenchmarkClient(deployment.env, client, label="with-failure")
    proc = deployment.env.process(bench.run(requests, arrival=PoissonArrival(rate=2.0)))

    def saboteur(env):
        yield env.timeout(8.0)
        pool = deployment.endpoints["ep-sophia"].pools[MODEL_7B]
        if pool.ready_instances:
            pool.ready_instances[0].fail("injected crash")

    deployment.env.process(saboteur(deployment.env))
    summary = deployment.env.run(until=proc)

    pool = deployment.endpoints["ep-sophia"].pools[MODEL_7B]
    assert pool.restarts >= 1
    # Requests that were in flight on the crashed instance report failure, but
    # the service recovers and the vast majority completes.
    assert summary.num_successful >= 30
    assert deployment.endpoints["ep-sophia"].ready_instance_count() >= 1


def test_hot_idle_release_then_cold_start_again():
    deployment = build_deployment()
    # Override the idle timeout to something short for the test.
    pool = deployment.endpoints["ep-sophia"].pools[MODEL_7B]
    pool.hosting.hot_idle_timeout_s = 300.0
    client = deployment.client("alice@anl.gov")

    ev = client.submit(InferenceRequest("first", MODEL_7B, prompt_tokens=80,
                                        max_output_tokens=30))
    deployment.env.run(until=ev)
    assert deployment.endpoints["ep-sophia"].ready_instance_count() == 1
    cluster = deployment.clusters["sophia"]
    assert len(cluster.free_nodes) < cluster.total_nodes

    # Idle long enough for the monitor to retire the instance and release nodes.
    deployment.run_for(900.0)
    assert deployment.endpoints["ep-sophia"].ready_instance_count() == 0
    assert len(cluster.free_nodes) == cluster.total_nodes

    # The next request triggers a fresh cold start and still succeeds.
    t0 = deployment.now
    ev = client.submit(InferenceRequest("second", MODEL_7B, prompt_tokens=80,
                                        max_output_tokens=30))
    deployment.env.run(until=ev)
    assert ev.value.success
    assert deployment.now - t0 > 20.0  # cold start paid again


def test_auth_single_flight_coalesces_burst_of_new_token():
    """A burst of requests with a not-yet-cached token triggers one introspection."""
    deployment = build_deployment()
    deployment.warm_up(MODEL_7B)
    client = deployment.client("alice@anl.gov")
    events = [
        client.submit(InferenceRequest(f"burst-{i}", MODEL_7B, prompt_tokens=50,
                                       max_output_tokens=20))
        for i in range(60)
    ]
    deployment.env.run(until=deployment.env.all_of(events))
    assert all(ev.value.success for ev in events)
    layer = deployment.gateway.auth_layer
    assert layer.cache_misses == 1
    assert layer.coalesced == 59
    assert deployment.auth.introspection_calls == 1
    assert deployment.gateway.metrics.rate_limited == 0


def test_sustained_load_relay_queues_but_everything_completes():
    deployment = build_deployment()
    deployment.warm_up(MODEL_7B)
    client = deployment.client("alice@anl.gov")
    requests = ShareGPTWorkload().generate(MODEL_7B, num_requests=300)
    bench = BenchmarkClient(deployment.env, client, label="sustained")
    proc = deployment.env.process(bench.run(requests))
    summary = deployment.env.run(until=proc)
    assert summary.num_successful == 300
    assert deployment.relay.stats.peak_queued >= 200
    # The dashboard reflects the full run.
    dash = deployment.gateway.dashboard()
    assert dash["total_completed"] >= 300
    assert dash["database"]["total_requests"] >= 300


def test_scale_up_and_jobs_endpoint_reflect_additional_instances():
    deployment = build_deployment()
    deployment.warm_up(MODEL_7B)
    client = deployment.client("alice@anl.gov")
    requests = ShareGPTWorkload().generate(MODEL_7B, num_requests=400)
    bench = BenchmarkClient(deployment.env, client, label="scaleup")
    proc = deployment.env.process(bench.run(requests))
    deployment.env.run(until=proc)
    pool = deployment.endpoints["ep-sophia"].pools[MODEL_7B]
    assert len(pool.instances) >= 2  # auto-scaled to the second instance
    states = [j for j in client.jobs() if j["model"] == MODEL_7B]
    assert states[0]["running_instances"] >= 2
