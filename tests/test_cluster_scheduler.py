"""Unit tests for the PBS/Slurm/Kubernetes/local scheduler simulators."""

import pytest

from repro.common import NotFoundError
from repro.cluster import (
    BackgroundLoadConfig,
    BackgroundLoadGenerator,
    FacilityStatusProvider,
    JobRequest,
    JobState,
    KubernetesScheduler,
    LocalScheduler,
    PBSScheduler,
    SchedulerConfig,
    SlurmScheduler,
    make_scheduler,
    small_test_cluster,
)
from repro.sim import Environment


def make_pbs(num_nodes=4, **cfg_kwargs):
    env = Environment()
    cluster = small_test_cluster(num_nodes=num_nodes)
    config = SchedulerConfig(**cfg_kwargs) if cfg_kwargs else None
    sched = PBSScheduler(env, cluster, config)
    return env, cluster, sched


def test_job_request_validation():
    with pytest.raises(ValueError):
        JobRequest("bad", num_nodes=0)
    with pytest.raises(ValueError):
        JobRequest("bad", gpus_per_node=0)
    with pytest.raises(ValueError):
        JobRequest("bad", walltime_s=0)


def test_submit_and_start_single_job():
    env, cluster, sched = make_pbs()
    handle = sched.submit(JobRequest("serve-llama", num_nodes=1))

    def observe(env):
        nodes = yield handle.started
        return (env.now, len(nodes), handle.job.state)

    p = env.process(observe(env))
    env.run(until=p)
    now, n_nodes, state = p.value
    # cycle latency (5s) + prologue (10s)
    assert now == pytest.approx(15.0)
    assert n_nodes == 1
    assert state == JobState.RUNNING
    assert handle.job.queue_wait_s == pytest.approx(5.0)


def test_job_rejected_if_larger_than_cluster():
    env, cluster, sched = make_pbs(num_nodes=2)
    with pytest.raises(ValueError):
        sched.submit(JobRequest("huge", num_nodes=3))


def test_fifo_queueing_when_cluster_full():
    env, cluster, sched = make_pbs(num_nodes=1)
    h1 = sched.submit(JobRequest("first", num_nodes=1, walltime_s=100.0))
    h2 = sched.submit(JobRequest("second", num_nodes=1, walltime_s=100.0))

    def run(env):
        yield h1.started
        t1 = env.now
        # release the first job after 50s of use
        yield env.timeout(50.0)
        sched.release(h1.job.job_id)
        yield h2.started
        return (t1, env.now)

    p = env.process(run(env))
    env.run(until=p)
    t1, t2 = p.value
    assert t1 < t2
    assert h1.job.state == JobState.COMPLETED
    assert h2.job.state == JobState.RUNNING


def test_walltime_enforcement():
    env, cluster, sched = make_pbs()
    handle = sched.submit(JobRequest("short", num_nodes=1, walltime_s=30.0))
    env.run(until=200.0)
    assert handle.job.state == JobState.TIMEOUT
    assert handle.finished.value == JobState.TIMEOUT
    assert len(cluster.free_nodes) == cluster.total_nodes


def test_walltime_not_enforced_when_disabled():
    env = Environment()
    cluster = small_test_cluster(num_nodes=1)
    sched = PBSScheduler(env, cluster, SchedulerConfig(enforce_walltime=False))
    handle = sched.submit(JobRequest("long", num_nodes=1, walltime_s=10.0))
    env.run(until=100.0)
    assert handle.job.state == JobState.RUNNING


def test_cancel_queued_job():
    env, cluster, sched = make_pbs(num_nodes=1)
    h1 = sched.submit(JobRequest("first", num_nodes=1, walltime_s=1000.0))
    h2 = sched.submit(JobRequest("second", num_nodes=1, walltime_s=1000.0))

    def cancel_later(env):
        yield env.timeout(20.0)
        sched.cancel(h2.job.job_id)

    env.process(cancel_later(env))
    env.run(until=60.0)
    assert h2.job.state == JobState.CANCELLED
    assert h2.finished.value == JobState.CANCELLED


def test_cancel_running_job_frees_nodes():
    env, cluster, sched = make_pbs(num_nodes=1)
    h1 = sched.submit(JobRequest("first", num_nodes=1, walltime_s=1000.0))

    def cancel_later(env):
        yield h1.started
        yield env.timeout(10.0)
        sched.cancel(h1.job.job_id)

    env.process(cancel_later(env))
    env.run(until=100.0)
    assert h1.job.state == JobState.CANCELLED
    assert len(cluster.free_nodes) == 1


def test_release_before_start_cancels():
    env, cluster, sched = make_pbs(num_nodes=1)
    h1 = sched.submit(JobRequest("first", num_nodes=1, walltime_s=1000.0))
    h2 = sched.submit(JobRequest("second", num_nodes=1, walltime_s=1000.0))
    sched.release(h2.job.job_id)
    env.run(until=50.0)
    assert h2.job.state == JobState.CANCELLED
    assert h1.job.state == JobState.RUNNING


def test_unknown_job_id_raises():
    env, cluster, sched = make_pbs()
    with pytest.raises(NotFoundError):
        sched.get_job("nope")
    with pytest.raises(NotFoundError):
        sched.cancel("nope")


def test_fifo_order_preserved_when_no_backfill_window():
    """When the head job can start as soon as nodes free up, later jobs wait (FIFO)."""
    env = Environment()
    cluster = small_test_cluster(num_nodes=2)
    sched = PBSScheduler(env, cluster, SchedulerConfig(cycle_latency_s=1.0, prologue_s=0.0))
    # Job A occupies both nodes for 100s.
    ha = sched.submit(JobRequest("A", num_nodes=2, walltime_s=100.0))
    env.run(until=5.0)
    # Job B (2 nodes) waits for A; job C (1 node) cannot backfill because A
    # holds every node, and once A ends the head job B starts immediately.
    hb = sched.submit(JobRequest("B", num_nodes=2, walltime_s=50.0))
    hc = sched.submit(JobRequest("C", num_nodes=1, walltime_s=10.0))
    env.run(until=300.0)
    assert ha.job.start_time < hb.job.start_time
    assert hb.job.start_time < hc.job.start_time


def test_backfill_short_job_runs_while_head_blocked():
    env = Environment()
    cluster = small_test_cluster(num_nodes=3)
    sched = PBSScheduler(env, cluster, SchedulerConfig(cycle_latency_s=1.0, prologue_s=0.0))
    # A holds 2 of 3 nodes for 100 s.
    ha = sched.submit(JobRequest("A", num_nodes=2, walltime_s=100.0))
    env.run(until=3.0)
    # B needs all 3 nodes -> blocked until A ends. C needs 1 node for 20 s and
    # finishes before A would end, so EASY backfill lets it start immediately.
    hb = sched.submit(JobRequest("B", num_nodes=3, walltime_s=50.0))
    hc = sched.submit(JobRequest("C", num_nodes=1, walltime_s=20.0))
    env.run(until=30.0)
    assert hc.job.state in (JobState.RUNNING, JobState.TIMEOUT, JobState.COMPLETED)
    assert hb.job.state == JobState.QUEUED


def test_no_backfill_when_disabled():
    env = Environment()
    cluster = small_test_cluster(num_nodes=3)
    sched = PBSScheduler(
        env, cluster, SchedulerConfig(cycle_latency_s=1.0, prologue_s=0.0, backfill=False)
    )
    ha = sched.submit(JobRequest("A", num_nodes=2, walltime_s=100.0))
    env.run(until=3.0)
    hb = sched.submit(JobRequest("B", num_nodes=3, walltime_s=50.0))
    hc = sched.submit(JobRequest("C", num_nodes=1, walltime_s=20.0))
    env.run(until=30.0)
    assert hc.job.state == JobState.QUEUED


def test_slurm_priority_ordering():
    env = Environment()
    cluster = small_test_cluster(num_nodes=1)
    sched = SlurmScheduler(env, cluster)
    # Occupy the single node first.
    h0 = sched.submit(JobRequest("hold", num_nodes=1, walltime_s=60.0))
    env.run(until=10.0)
    low = sched.submit(JobRequest("low", num_nodes=1, walltime_s=30.0, priority=1))
    high = sched.submit(JobRequest("high", num_nodes=1, walltime_s=30.0, priority=10))
    env.run(until=500.0)
    assert high.job.start_time < low.job.start_time


def test_kubernetes_fast_start_no_walltime():
    env = Environment()
    cluster = small_test_cluster(num_nodes=2)
    sched = KubernetesScheduler(env, cluster)
    handle = sched.submit(JobRequest("pod", num_nodes=1, walltime_s=10.0))
    env.run(until=100.0)
    assert handle.job.state == JobState.RUNNING  # never killed
    assert handle.job.queue_wait_s <= 2.0


def test_local_scheduler_immediate():
    env = Environment()
    cluster = small_test_cluster(num_nodes=2)
    sched = LocalScheduler(env, cluster)
    handle = sched.submit(JobRequest("local", num_nodes=1))

    def observe(env):
        yield handle.started
        return env.now

    p = env.process(observe(env))
    env.run(until=p)
    assert p.value == 0.0


def test_make_scheduler_factory():
    env = Environment()
    cluster = small_test_cluster()
    assert isinstance(make_scheduler("pbs", env, cluster), PBSScheduler)
    assert isinstance(make_scheduler("slurm", env, cluster), SlurmScheduler)
    assert isinstance(make_scheduler("kubernetes", env, cluster), KubernetesScheduler)
    assert isinstance(make_scheduler("LOCAL", env, cluster), LocalScheduler)
    with pytest.raises(ValueError):
        make_scheduler("lsf", env, cluster)


def test_scheduler_status_counts():
    env, cluster, sched = make_pbs(num_nodes=1)
    sched.submit(JobRequest("a", num_nodes=1, walltime_s=100.0))
    sched.submit(JobRequest("b", num_nodes=1, walltime_s=100.0))
    env.run(until=30.0)
    status = sched.status()
    assert status.running_jobs == 1
    assert status.queued_jobs == 1
    assert status.free_nodes == 0


def test_job_to_dict_fields():
    env, cluster, sched = make_pbs()
    handle = sched.submit(JobRequest("serve", num_nodes=1, metadata={"model": "llama"}))
    env.run(until=30.0)
    d = handle.job.to_dict()
    assert d["state"] == "running"
    assert d["metadata"]["model"] == "llama"
    assert d["queue_wait_s"] is not None


def test_facility_status_provider_caching():
    env, cluster, sched = make_pbs(num_nodes=2)
    provider = FacilityStatusProvider(env, sched, query_latency_s=0.5, refresh_interval_s=60.0)

    def run(env):
        s1 = yield from provider.query()
        sched.submit(JobRequest("x", num_nodes=1, walltime_s=100.0))
        yield env.timeout(30.0)
        s2 = yield from provider.query()  # still cached
        yield env.timeout(60.0)
        s3 = yield from provider.query()  # refreshed
        return s1.free_nodes, s2.free_nodes, s3.free_nodes

    p = env.process(run(env))
    env.run(until=p)
    free1, free2, free3 = p.value
    assert free1 == 2
    assert free2 == 2  # stale snapshot
    assert free3 == 1  # refreshed after interval
    assert provider.query_count == 3


def test_background_load_generator_occupies_nodes():
    env = Environment()
    cluster = small_test_cluster(num_nodes=4)
    sched = PBSScheduler(env, cluster, SchedulerConfig(cycle_latency_s=1.0, prologue_s=0.0))
    gen = BackgroundLoadGenerator(
        env,
        sched,
        BackgroundLoadConfig(mean_interarrival_s=50.0, mean_duration_s=300.0, max_jobs=5),
    )
    gen.start()
    env.run(until=2000.0)
    assert len(gen.submitted) == 5
    assert len(sched.all_jobs) == 5
    # All background jobs eventually started.
    assert all(j.start_time is not None for j in sched.all_jobs)
