"""Shared pytest configuration.

The simulator core is importable and testable without numpy (the CI matrix
has a no-numpy/no-cffi job proving the pure-Python fallbacks).  When numpy
is absent:

* test modules that import numpy at module scope are skipped at collection;
* tests that reach a numpy-backed component at runtime (workload generators,
  hash embeddings, vector indexes — everything raising
  ``RuntimeError("... requires numpy")``) are reported as skips, not
  failures.  The list of such tests is therefore self-maintaining.
"""

import pytest

try:
    import numpy  # noqa: F401
    HAS_NUMPY = True
except ImportError:
    HAS_NUMPY = False

collect_ignore = []
if not HAS_NUMPY:
    collect_ignore = [
        "test_baselines_webui_rag.py",
        "test_common.py",
        "test_metrics_workload.py",
        "test_parallel_federation.py",
        "test_serving_instance.py",
        "test_sweep.py",
    ]

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_makereport(item, call):
        outcome = yield
        report = outcome.get_result()
        if report.when == "call" and report.failed and call.excinfo is not None:
            exc = call.excinfo.value
            if isinstance(exc, RuntimeError) and "requires numpy" in str(exc):
                report.outcome = "skipped"
                report.longrepr = (str(item.fspath), item.location[1],
                                   f"Skipped: {exc}")
