"""Kernel window primitives and the conservative window planner.

Numpy-free on purpose: these tests cover the `run_until_horizon` /
`export_pending` / `import_pending` kernel hooks, boundary-message ordering,
window planning (including the zero-lookahead micro-window guarantee) and
the ping-ring null-message exercise — all of which must hold on the
pure-Python fallback CI job too.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    BoundaryMessage,
    Window,
    plan_window,
    run_ping_ring,
    sort_key,
    validate_arrival,
)
from repro.sim import Environment

BACKENDS = ["heap", "calendar", "packed"]

INF = float("inf")


def _record_timeouts(env, delays, fired):
    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))


# ------------------------------------------------------------- run_until_horizon
@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=30),
    horizon=st.floats(min_value=0.0, max_value=100.0),
)
def test_property_exclusive_horizon_never_commits_at_or_past(backend, delays,
                                                             horizon):
    env = Environment(queue=backend)
    fired = []
    _record_timeouts(env, delays, fired)
    bound = env.run_until_horizon(horizon)
    assert all(t < horizon for t in fired)
    assert bound >= horizon
    # Exactly the sub-horizon delays committed, in nondecreasing time order.
    assert sorted(fired) == sorted(d for d in delays if d < horizon)
    assert fired == sorted(fired)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=50.0),
                    min_size=1, max_size=30),
    horizon=st.floats(min_value=0.0, max_value=50.0),
)
def test_property_inclusive_horizon_commits_boundary_events(backend, delays,
                                                            horizon):
    env = Environment(queue=backend)
    fired = []
    _record_timeouts(env, delays, fired)
    bound = env.run_until_horizon(horizon, inclusive=True)
    assert all(t <= horizon for t in fired)
    assert bound > horizon
    assert sorted(fired) == sorted(d for d in delays if d <= horizon)


def test_horizon_resume_is_equivalent_to_one_run():
    delays = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    reference_env = Environment()
    reference = []
    _record_timeouts(reference_env, delays, reference)
    reference_env.run()

    env = Environment()
    fired = []
    _record_timeouts(env, delays, fired)
    for horizon in (1.0, 2.5, 2.5, 6.0, 100.0):
        env.run_until_horizon(horizon)
    assert fired == reference
    assert env.peek() == INF


# ------------------------------------------------------------- export / import
def test_export_refuses_urgent_backlog():
    env = Environment()
    _record_timeouts(env, [1.0], [])
    # process() schedules a zero-delay URGENT init event; exporting before a
    # barrier would lose its ordering guarantee.
    with pytest.raises(RuntimeError, match="URGENT"):
        env.export_pending()


@pytest.mark.parametrize("source", BACKENDS)
@pytest.mark.parametrize("target", BACKENDS)
@settings(max_examples=15, deadline=None)
@given(delays=st.lists(
    st.floats(min_value=0.0, max_value=20.0), min_size=1, max_size=25))
def test_property_export_import_preserves_order(source, target, delays):
    reference_env = Environment(queue=source)
    reference = []
    _record_timeouts(reference_env, delays, reference)
    reference_env.run()

    env = Environment(queue=source)
    fired = []
    _record_timeouts(env, delays, fired)
    env.run_until_horizon(10.0)  # commit a prefix, then migrate the rest
    entries = env.export_pending()
    assert env.peek() == INF
    env.import_pending(entries, queue=target)
    env.run()
    assert fired == reference


def test_import_keeps_event_ids_unique():
    env = Environment()
    fired = []
    _record_timeouts(env, [5.0], fired)
    env.run_until_horizon(1.0)
    entries = env.export_pending()
    env.import_pending(entries)
    # Events scheduled after the round-trip must sort behind re-imported
    # ones at equal (time, priority): their ids must stay larger.
    _record_timeouts(env, [5.0], fired)
    env.run()
    assert fired == [5.0, 5.0]


# ------------------------------------------------------------- boundary messages
def _message(arrival, src=1, seq=0, kind="dispatch"):
    return BoundaryMessage(kind=kind, src=src, dst=0, seq=seq,
                           arrival_time=arrival, body={})


def test_sort_key_orders_by_arrival_then_source_then_seq():
    messages = [_message(2.0, src=1, seq=0), _message(1.0, src=2, seq=1),
                _message(1.0, src=1, seq=3), _message(1.0, src=1, seq=2)]
    ordered = sorted(messages, key=sort_key)
    assert [(m.arrival_time, m.src, m.seq) for m in ordered] == [
        (1.0, 1, 2), (1.0, 1, 3), (1.0, 2, 1), (2.0, 1, 0)]


def test_validate_arrival_rejects_past_deliveries():
    validate_arrival(_message(5.0), now=5.0)
    validate_arrival(_message(5.0), now=4.0)
    with pytest.raises(RuntimeError, match="causality"):
        validate_arrival(_message(3.0), now=4.0)


# ------------------------------------------------------------- window planning
def test_plan_window_exclusive_at_min_bound_plus_lookahead():
    window = plan_window({0: 10.0, 1: 4.0}, {0: 2.0, 1: 3.0})
    assert window == Window(time=7.0, inclusive=False)


def test_plan_window_zero_lookahead_degenerates_to_micro_window():
    window = plan_window({0: 4.0, 1: 6.0}, {0: 0.0, 1: 0.0})
    assert window == Window(time=4.0, inclusive=True)


def test_plan_window_micro_window_when_horizon_not_past_t_min():
    # The *other* partition's lookahead is what bounds this partition's
    # safety; a horizon landing exactly on t_min still needs inclusivity.
    window = plan_window({0: 5.0, 1: 5.0}, {0: 0.0, 1: 10.0})
    assert window.inclusive and window.time == 5.0


def test_plan_window_exhausted_returns_none():
    assert plan_window({0: INF, 1: INF}, {0: 1.0, 1: 1.0}) is None


def test_plan_window_single_idle_partition_ignores_infinite_bound():
    window = plan_window({0: 3.0, 1: INF}, {0: 1.0, 1: 1.0})
    assert window == Window(time=4.0, inclusive=False)
    assert not math.isinf(window.time)


# ------------------------------------------------------------- ping ring (null messages)
def _hops_seen(logs):
    return sorted(hop for log in logs.values() for _, hop in log)


def test_ping_ring_zero_lookahead_makes_progress():
    logs = run_ping_ring(partitions=3, hops=12, latency_s=0.0, workers=1)
    assert _hops_seen(logs) == list(range(13))
    # Zero latency: the whole relay happens at simulated t=0.
    assert all(t == 0.0 for log in logs.values() for t, _ in log)


def test_ping_ring_latency_spaces_hops():
    logs = run_ping_ring(partitions=4, hops=8, latency_s=0.25, workers=1)
    times = sorted(t for log in logs.values() for t, _ in log)
    assert times == [0.25 * i for i in range(9)]


def test_ping_ring_parallel_matches_serial_zero_lookahead():
    serial = run_ping_ring(partitions=3, hops=9, latency_s=0.0, workers=1)
    parallel = run_ping_ring(partitions=3, hops=9, latency_s=0.0, workers=3)
    assert serial == parallel
