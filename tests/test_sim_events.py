"""Unit tests for the discrete-event kernel: events, timeouts, processes."""

import pytest

from repro.sim import (
    AllOf,
    EmptySchedule,
    Environment,
    Interrupt,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 5.0
    assert env.now == 5.0


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        return value

    p = env.process(proc(env))
    env.run()
    assert p.value == "hello"


def test_event_succeed_and_value():
    env = Environment()
    ev = env.event()

    def waiter(env, ev):
        value = yield ev
        return value

    def trigger(env, ev):
        yield env.timeout(2.0)
        ev.succeed(42)

    w = env.process(waiter(env, ev))
    env.process(trigger(env, ev))
    env.run()
    assert w.value == 42
    assert ev.ok
    assert ev.processed


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(RuntimeError("x"))


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()

    class Boom(Exception):
        pass

    def waiter(env, ev):
        try:
            yield ev
        except Boom:
            return "caught"
        return "missed"

    def trigger(env, ev):
        yield env.timeout(1.0)
        ev.fail(Boom())

    w = env.process(waiter(env, ev))
    env.process(trigger(env, ev))
    env.run()
    assert w.value == "caught"


def test_unhandled_failed_event_aborts_run():
    env = Environment()
    ev = env.event()

    def trigger(env, ev):
        yield env.timeout(1.0)
        ev.fail(ValueError("unhandled"))

    env.process(trigger(env, ev))
    with pytest.raises(ValueError):
        env.run()


def test_process_return_value():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        return result + "!"

    p = env.process(parent(env))
    env.run()
    assert p.value == "done!"


def test_process_exception_propagates_to_parent():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise RuntimeError("child failed")

    def parent(env):
        try:
            yield env.process(child(env))
        except RuntimeError as exc:
            return str(exc)

    p = env.process(parent(env))
    env.run()
    assert p.value == "child failed"


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    with pytest.raises(RuntimeError):
        env.run()
    assert not p.ok


def test_process_non_generator_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.process(lambda: None)


def test_interrupt_delivers_cause():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, env.now)

    def interrupter(env, victim_proc):
        yield env.timeout(3.0)
        victim_proc.interrupt("stop now")

    v = env.process(victim(env))
    env.process(interrupter(env, v))
    env.run()
    assert v.value == ("interrupted", "stop now", 3.0)


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_process_can_continue_waiting():
    env = Environment()
    log = []

    def victim(env):
        target = env.timeout(10.0)
        try:
            yield target
        except Interrupt:
            log.append(("interrupted", env.now))
        yield env.timeout(2.0)
        log.append(("resumed", env.now))

    def interrupter(env, proc):
        yield env.timeout(4.0)
        proc.interrupt()

    v = env.process(victim(env))
    env.process(interrupter(env, v))
    env.run()
    assert log == [("interrupted", 4.0), ("resumed", 6.0)]


def test_self_interrupt_forbidden():
    env = Environment()

    def proc(env):
        yield env.timeout(0)
        env.active_process.interrupt()

    p = env.process(proc(env))
    with pytest.raises(RuntimeError):
        env.run()
    assert not p.ok


def test_all_of_condition_waits_for_everything():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(5.0, value="b")
        result = yield env.all_of([t1, t2])
        return (env.now, result[t1], result[t2])

    p = env.process(proc(env))
    env.run()
    assert p.value == (5.0, "a", "b")


def test_any_of_condition_returns_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        result = yield env.any_of([t1, t2])
        return (env.now, t1 in result, t2 in result)

    p = env.process(proc(env))
    env.run()
    assert p.value == (1.0, True, False)


def test_condition_operators():
    env = Environment()

    def proc(env):
        t1 = env.timeout(2.0, value=1)
        t2 = env.timeout(3.0, value=2)
        yield t1 & t2
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 3.0


def test_empty_all_of_triggers_immediately():
    env = Environment()

    def proc(env):
        yield env.all_of([])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_condition_mixing_environments_rejected():
    env1 = Environment()
    env2 = Environment()
    ev1 = env1.event()
    ev2 = env2.event()
    with pytest.raises(ValueError):
        AllOf(env1, [ev1, ev2])


def test_run_until_time():
    env = Environment()
    ticks = []

    def ticker(env):
        while True:
            yield env.timeout(1.0)
            ticks.append(env.now)

    env.process(ticker(env))
    env.run(until=5.5)
    assert env.now == 5.5
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=1.0)
    with pytest.raises(ValueError):
        env.run(until=0.5)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "finished"

    p = env.process(proc(env))
    result = env.run(until=p)
    assert result == "finished"
    assert env.now == 2.0


def test_run_until_already_processed_event_returns_value():
    env = Environment()
    t = env.timeout(1.0, value="done")
    env.run()
    assert t.processed
    assert env.run(until=t) == "done"


def test_run_until_already_processed_failed_event_raises():
    """run(until=ev) on a processed *failed* event must re-raise its exception,
    exactly like StopSimulation.callback does when the event fires mid-run."""
    env = Environment()
    ev = env.event()

    class Boom(Exception):
        pass

    def waiter(env, ev):
        try:
            yield ev
        except Boom:
            pass  # defuses the failure so the run itself survives

    def trigger(env, ev):
        yield env.timeout(1.0)
        ev.fail(Boom())

    env.process(waiter(env, ev))
    env.process(trigger(env, ev))
    env.run()
    assert ev.processed and not ev.ok
    with pytest.raises(Boom):
        env.run(until=ev)


def test_run_until_time_is_bit_exact():
    """run(until=t) stops at exactly t, not at now + (t - now).

    now=0.2, t=0.1*8 accumulated is a pair where the relative-delay round
    trip lands an ulp low (0.7999999999999998 != 0.7999999999999999).
    """
    t = 0.0
    for _ in range(8):
        t += 0.1
    assert 0.2 + (t - 0.2) != t  # the pair actually exhibits the round trip

    env = Environment()
    env.run(until=0.2)
    env.run(until=t)
    assert env.now == t  # exact equality, not approx

    # And it agrees bit-for-bit with a timeout_at at the same instant: the
    # earlier-scheduled timeout is processed by the same step that reaches t.
    env2 = Environment()
    env2.run(until=0.2)
    timeout = env2.timeout_at(t)
    env2.run(until=t)
    assert timeout.processed
    assert env2.now == env.now == t


def test_run_until_untriggerable_event_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        env.run(until=ev)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(3.0)
    env.timeout(1.0)
    assert env.peek() == 1.0


def test_deterministic_ordering_same_time():
    """Events scheduled at the same instant run in insertion order."""
    env = Environment()
    order = []

    def make(name):
        def proc(env):
            yield env.timeout(1.0)
            order.append(name)

        return proc

    for name in ["a", "b", "c", "d"]:
        env.process(make(name)(env))
    env.run()
    assert order == ["a", "b", "c", "d"]


def test_already_processed_event_yield_continues_immediately():
    env = Environment()

    def proc(env):
        ev = env.timeout(1.0, value="x")
        yield env.timeout(2.0)
        # ev has already fired and been processed; yielding it again must
        # resume immediately with its value.
        value = yield ev
        return (value, env.now)

    p = env.process(proc(env))
    env.run()
    assert p.value == ("x", 2.0)


def test_timeout_at_fires_at_exact_absolute_time():
    """timeout_at replays a previously observed event time bit-for-bit, even
    when ``now + (t - now)`` would round differently."""
    env = Environment()
    # A time with no short binary representation, reached via accumulation.
    t = 0.0
    for _ in range(7):
        t += 0.1
    times = []

    def proc(env):
        yield env.timeout(0.3)
        yield env.timeout_at(t)
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [t]  # exact equality, not approx


def test_timeout_reports_delay_and_exact_firing_time():
    env = Environment()
    t = env.timeout(2.5)
    assert t.delay == 2.5
    assert t.at == 2.5  # env.now + delay, exact
    assert "Timeout(2.5)" in repr(t)


def test_timeout_at_reports_true_firing_time():
    """timeout_at(t) must report t itself, not the round-tripped t - now
    (which is what it was built to avoid storing in the first place)."""
    t = 0.0
    for _ in range(8):
        t += 0.1
    env = Environment()
    env.run(until=0.2)
    timeout = env.timeout_at(t)
    assert timeout.at == t  # exact
    assert timeout.delay is None  # no misleading round-tripped delay
    assert f"at={t!r}" in repr(timeout)
    env.run()
    assert env.now == t


def test_timeout_at_in_past_raises():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)
        env.timeout_at(1.0)

    p = env.process(proc(env))
    with pytest.raises(ValueError):
        env.run(until=p)


def test_urgent_events_precede_same_time_normal_events():
    """Process starts (URGENT) run before already-queued same-time NORMAL
    events — the urgent fast lane preserves the heap's priority contract."""
    env = Environment()
    order = []

    def outer(env):
        yield env.timeout(1.0)
        order.append("outer")
        env.process(inner(env))  # Initialize is URGENT at the same instant

    def inner(env):
        order.append("inner-start")
        yield env.timeout(0.0)
        order.append("inner-resumed")

    def sibling(env):
        yield env.timeout(1.0)
        order.append("sibling")

    env.process(outer(env))
    env.process(sibling(env))
    env.run()
    # inner's URGENT start outranks sibling's earlier-queued NORMAL event at
    # the same instant; inner's 0-delay NORMAL timeout then queues after it.
    assert order == ["outer", "inner-start", "sibling", "inner-resumed"]


def test_queue_size_counts_urgent_fast_lane():
    def noop(env):
        yield env.timeout(0.0)

    env = Environment()
    env.process(noop(env))
    assert env.queue_size == 1  # the Initialize event sits in the fast lane
    env.run()
    assert env.queue_size == 0
