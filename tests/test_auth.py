"""Tests for the Globus-Auth-like identity/authorization substrate."""

import pytest

from repro.auth import (
    AccessPolicy,
    AuthServiceConfig,
    DEFAULT_TOKEN_LIFETIME_S,
    GlobusAuthLikeService,
    GroupService,
    IdentityProvider,
    PolicyEngine,
)
from repro.common import AuthenticationError, AuthorizationError, RateLimitError
from repro.sim import Environment


ANL = IdentityProvider("Argonne National Laboratory", "anl.gov", requires_mfa=True)
UNI = IdentityProvider("Example University", "university.edu", requires_mfa=False)


def make_service(config=None):
    env = Environment()
    svc = GlobusAuthLikeService(env, config)
    svc.register_provider(ANL)
    svc.register_provider(UNI)
    svc.register_user("alice@anl.gov", "Alice")
    svc.register_user("bob@university.edu", "Bob")
    return env, svc


# -- identities and providers -------------------------------------------------

def test_identity_provider_domain_matching():
    assert ANL.issues("alice@anl.gov")
    assert not ANL.issues("bob@university.edu")


def test_register_user_requires_known_provider():
    env = Environment()
    svc = GlobusAuthLikeService(env)
    with pytest.raises(AuthenticationError):
        svc.register_user("eve@unknown.org")


def test_identity_lookup_and_linking():
    env, svc = make_service()
    identity = svc.get_identity("alice@anl.gov")
    assert identity.domain == "anl.gov"
    identity.linked_usernames.append("alice@university.edu")
    assert identity.matches("alice@university.edu")
    with pytest.raises(AuthenticationError):
        svc.get_identity("missing@anl.gov")


# -- tokens -------------------------------------------------------------------

def test_issue_token_48h_lifetime():
    env, svc = make_service()
    bundle = svc.issue_token("alice@anl.gov")
    assert bundle.expires_in_s == pytest.approx(DEFAULT_TOKEN_LIFETIME_S)
    info = svc.introspect_sync(bundle.access_token)
    assert info.username == "alice@anl.gov"
    assert info.is_valid(now=env.now)
    assert info.is_valid(now=env.now, required_scope="inference:all")
    assert not info.is_valid(now=env.now, required_scope="admin:write")


def test_token_expiry():
    env, svc = make_service()
    bundle = svc.issue_token("alice@anl.gov")
    info = svc.introspect_sync(bundle.access_token)
    assert not info.is_valid(now=env.now + DEFAULT_TOKEN_LIFETIME_S + 1)


def test_issue_token_unknown_user_rejected():
    env, svc = make_service()
    with pytest.raises(AuthenticationError):
        svc.issue_token("stranger@anl.gov")


def test_refresh_token_flow():
    env, svc = make_service()
    bundle = svc.issue_token("alice@anl.gov")
    refreshed = svc.refresh(bundle.refresh_token)
    assert refreshed.username == "alice@anl.gov"
    assert refreshed.access_token != bundle.access_token
    # A refresh token is single-use.
    with pytest.raises(AuthenticationError):
        svc.refresh(bundle.refresh_token)


def test_revoke_token():
    env, svc = make_service()
    bundle = svc.issue_token("alice@anl.gov")
    svc.revoke(bundle.access_token)
    info = svc.introspect_sync(bundle.access_token)
    assert not info.is_valid(now=env.now)


def test_login_flow_pays_latency():
    env, svc = make_service()

    def run(env):
        bundle = yield from svc.login("alice@anl.gov")
        return (env.now, bundle.username)

    p = env.process(run(env))
    env.run(until=p)
    t, username = p.value
    assert t == pytest.approx(2.0)
    assert username == "alice@anl.gov"


def test_introspection_pays_latency_and_counts_calls():
    env, svc = make_service()
    bundle = svc.issue_token("alice@anl.gov")

    def run(env):
        info = yield from svc.introspect(bundle.access_token)
        return (env.now, info.username)

    p = env.process(run(env))
    env.run(until=p)
    assert p.value[0] == pytest.approx(0.3)
    assert svc.introspection_calls == 1


def test_introspection_unknown_token_fails():
    env, svc = make_service()

    def run(env):
        try:
            yield from svc.introspect("bogus")
        except AuthenticationError:
            return "rejected"

    p = env.process(run(env))
    env.run(until=p)
    assert p.value == "rejected"


def test_introspection_rate_limit():
    env, svc = make_service(AuthServiceConfig(introspection_rate_limit_per_s=5,
                                              introspection_latency_s=0.0))
    bundle = svc.issue_token("alice@anl.gov")

    def run(env):
        hit = 0
        for _ in range(20):
            try:
                yield from svc.introspect(bundle.access_token)
            except RateLimitError:
                hit += 1
        return hit

    p = env.process(run(env))
    env.run(until=p)
    assert p.value == 15  # first 5 pass within the 1-second window


def test_confidential_client_authentication():
    env, svc = make_service()
    svc.register_confidential_client("endpoint-client", "s3cret", owner="admins")
    client = svc.authenticate_client("endpoint-client", "s3cret")
    assert client.owner == "admins"
    with pytest.raises(AuthenticationError):
        svc.authenticate_client("endpoint-client", "wrong")
    with pytest.raises(AuthenticationError):
        svc.authenticate_client("missing", "s3cret")


# -- groups ---------------------------------------------------------------------

def test_group_membership_and_roles():
    groups = GroupService()
    groups.create_group("sensitive-project", "access to proprietary models")
    groups.add_member("sensitive-project", "alice@anl.gov", admin=True)
    groups.add_member("sensitive-project", "bob@university.edu")
    assert groups.is_member("sensitive-project", "alice@anl.gov")
    assert groups.is_admin("sensitive-project", "alice@anl.gov")
    assert not groups.is_admin("sensitive-project", "bob@university.edu")
    assert groups.groups_of("bob@university.edu") == ["sensitive-project"]
    groups.remove_member("sensitive-project", "bob@university.edu")
    assert not groups.is_member("sensitive-project", "bob@university.edu")
    with pytest.raises(ValueError):
        groups.create_group("sensitive-project")
    with pytest.raises(KeyError):
        groups.get("missing")
    assert not groups.is_member("missing", "alice@anl.gov")


# -- policies ---------------------------------------------------------------------

def test_policy_domain_restriction():
    groups = GroupService()
    policy = AccessPolicy("anl-only", resource="service", allowed_domains=["anl.gov"])
    assert policy.evaluate("alice@anl.gov", groups).allowed
    decision = policy.evaluate("bob@university.edu", groups)
    assert not decision.allowed
    assert "domain" in decision.reason


def test_policy_group_requirement_and_deny_list():
    groups = GroupService()
    groups.create_group("aurora-users")
    groups.add_member("aurora-users", "alice@anl.gov")
    policy = AccessPolicy("aurora", resource="model:AuroraGPT-7B",
                          required_groups=["aurora-users"], denied_users=["mallory@anl.gov"])
    assert policy.evaluate("alice@anl.gov", groups).allowed
    assert not policy.evaluate("bob@university.edu", groups).allowed
    assert not policy.evaluate("mallory@anl.gov", groups).allowed


def test_policy_mfa_requirement():
    groups = GroupService()
    policy = AccessPolicy("high-assurance", require_mfa=True)
    assert not policy.evaluate("bob@university.edu", groups, mfa_satisfied=False).allowed
    assert policy.evaluate("bob@university.edu", groups, mfa_satisfied=True).allowed


def test_policy_engine_resource_scoping():
    groups = GroupService()
    groups.create_group("vip")
    groups.add_member("vip", "alice@anl.gov")
    engine = PolicyEngine(groups)
    engine.add_policy(AccessPolicy("service-wide", resource="service",
                                   allowed_domains=["anl.gov", "university.edu"]))
    engine.add_policy(AccessPolicy("model-lock", resource="model:secret-model",
                                   required_groups=["vip"]))
    # Service-wide policy applies to everything.
    assert engine.check("alice@anl.gov", "model:secret-model").allowed
    assert not engine.check("bob@university.edu", "model:secret-model").allowed
    assert engine.check("bob@university.edu", "model:open-model").allowed
    assert not engine.check("eve@evil.org", "model:open-model").allowed
    assert len(engine.policies) == 2


def test_auth_service_enforces_service_policy_on_login():
    env, svc = make_service()
    svc.policies.add_policy(AccessPolicy("anl-only", allowed_domains=["anl.gov"]))
    svc.issue_token("alice@anl.gov")
    with pytest.raises(AuthorizationError):
        svc.issue_token("bob@university.edu")
