"""Autoscaling control plane: policies, metrics feed, replica pools and the
full scale-up/scale-down integration (drain-before-terminate, clean job
release, no stale routes)."""

import math

import pytest

from repro.autoscale import (
    AutoscaleConfig,
    MetricsSample,
    PredictivePolicy,
    QueueDepthPolicy,
    ScheduledPolicy,
    TargetUtilizationPolicy,
    make_policy,
)
from repro.cluster import JobState, PBSScheduler, SchedulerConfig, small_test_cluster
from repro.common import ConfigurationError
from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.faas import (
    HANDLER_CHAT,
    ComputeEndpoint,
    EndpointConfig,
    ModelHostingConfig,
    RelayService,
)
from repro.serving import InferenceRequest, InstanceState, default_catalog
from repro.sim import Environment

CATALOG = default_catalog()
MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"


def sample(**overrides) -> MetricsSample:
    """Handcrafted control-loop observation."""
    values = dict(
        time=0.0,
        model=MODEL_8B,
        ready_instances=1,
        starting_instances=0,
        draining_instances=0,
        waiting_tasks=0,
        in_flight_tasks=0,
        slots_per_instance=8,
        arrival_rate_rps=0.0,
        completion_rate_rps=0.0,
        kv_utilization=0.0,
        cold_start_estimate_s=60.0,
    )
    values.update(overrides)
    return MetricsSample(**values)


# ---------------------------------------------------------------- policies
def test_queue_depth_reactive_matches_legacy_semantics():
    policy = QueueDepthPolicy(queue_per_instance=8)
    # Cold pool with demand boots exactly one instance.
    assert policy.reactive(sample(ready_instances=0, waiting_tasks=3)) == 1
    # First instance still starting: don't pile on.
    assert policy.reactive(
        sample(ready_instances=0, starting_instances=1, waiting_tasks=50)
    ) == 1
    # Below threshold: hold.
    assert policy.reactive(sample(ready_instances=2, waiting_tasks=16)) == 2
    # Above threshold: one more.
    assert policy.reactive(sample(ready_instances=2, waiting_tasks=17)) == 3


def test_queue_depth_scale_down_requires_hold_window():
    policy = QueueDepthPolicy(queue_per_instance=8, scale_down=True,
                              scale_down_hold_s=60.0)
    quiet = dict(ready_instances=3, waiting_tasks=0, in_flight_tasks=2)
    assert policy.decide(sample(time=0.0, **quiet)).target == 3
    assert policy.decide(sample(time=30.0, **quiet)).target == 3
    # Held quiet for the full window: drain one.
    assert policy.decide(sample(time=61.0, **quiet)).target == 2
    # A burst resets the quiet clock.
    assert policy.decide(sample(time=70.0, ready_instances=3,
                                waiting_tasks=40)).target == 4
    assert policy.decide(sample(time=75.0, **quiet)).target == 3


def test_target_utilization_scales_up_and_respects_cooldowns():
    policy = TargetUtilizationPolicy(target=0.5, deadband=0.1,
                                     cooldown_up_s=30.0, cooldown_down_s=60.0)
    hot = sample(time=0.0, ready_instances=2, in_flight_tasks=14,
                 waiting_tasks=4, slots_per_instance=8)  # busy = 18/16
    decision = policy.decide(hot)
    assert decision.target > 2
    # Cooldown: an immediate second evaluation holds even though still hot.
    assert policy.decide(sample(time=5.0, ready_instances=2, in_flight_tasks=14,
                                waiting_tasks=4)).target == 2
    # Quiet pool scales down only after the down-cooldown elapses.
    assert policy.decide(sample(time=40.0, ready_instances=4,
                                in_flight_tasks=1)).target == 4
    late = policy.decide(sample(time=120.0, ready_instances=4, in_flight_tasks=1))
    assert late.target < 4


def test_scheduled_policy_follows_plan_with_wraparound():
    policy = ScheduledPolicy(schedule=[(100.0, 3), (200.0, 1)], period_s=300.0)
    # Before the first entry the plan wraps from the last entry.
    assert policy.planned_at(0.0) == 1
    assert policy.planned_at(150.0) == 3
    assert policy.planned_at(250.0) == 1
    assert policy.planned_at(300.0 + 120.0) == 3
    assert policy.decide(sample(time=150.0, ready_instances=1)).target == 3


def test_predictive_policy_prewarms_ahead_of_rising_trend():
    rising = PredictivePolicy(alpha=0.5, beta=0.5, lead_s=120.0,
                              instance_rps=2.0, headroom=0.1)
    flat = PredictivePolicy(alpha=0.5, beta=0.5, lead_s=120.0,
                            instance_rps=2.0, headroom=0.1)
    rates = [0.5, 1.5, 2.5, 3.5]
    last_rising = last_flat = None
    for i, rate in enumerate(rates):
        t = 60.0 * i
        last_rising = rising.decide(sample(time=t, arrival_rate_rps=rate,
                                           ready_instances=2, in_flight_tasks=4))
        last_flat = flat.decide(sample(time=t, arrival_rate_rps=rates[-1],
                                       ready_instances=2, in_flight_tasks=4))
    # The instantaneous need at 3.5 req/s is ceil(3.5*1.1/2) = 2 instances;
    # the trend-following forecast must ask for strictly more, ahead of time.
    assert last_flat.target == 2
    assert last_rising.target > last_flat.target


def test_predictive_policy_scales_down_only_after_hold():
    policy = PredictivePolicy(alpha=1.0, beta=0.0, lead_s=0.0,
                              instance_rps=2.0, headroom=0.0,
                              scale_down_hold_s=100.0)
    busy = sample(time=0.0, arrival_rate_rps=6.0, ready_instances=3,
                  in_flight_tasks=6)
    assert policy.decide(busy).target == 3
    quiet = dict(arrival_rate_rps=1.0, ready_instances=3, in_flight_tasks=1)
    assert policy.decide(sample(time=50.0, **quiet)).target == 3   # hold
    assert policy.decide(sample(time=120.0, **quiet)).target == 3  # still holding
    assert policy.decide(sample(time=151.0, **quiet)).target == 1  # held long enough


def test_make_policy_rejects_unknown_name():
    with pytest.raises(ConfigurationError):
        make_policy(AutoscaleConfig(policy="nope"))


# ---------------------------------------------------------------- endpoint stack
def build_stack(models, num_nodes=3, monitor_interval=10.0):
    env = Environment()
    cluster = small_test_cluster(num_nodes=num_nodes)
    scheduler = PBSScheduler(
        env, cluster, SchedulerConfig(cycle_latency_s=1.0, prologue_s=2.0)
    )
    config = EndpointConfig(
        endpoint_id="ep-as",
        cluster=cluster.name,
        models=models,
        poll_interval_s=0.5,
        monitor_interval_s=monitor_interval,
    )
    endpoint = ComputeEndpoint(env, scheduler, CATALOG, config)
    relay = RelayService(env)
    relay.functions.register("fn-chat", "chat", HANDLER_CHAT, owner="admins")
    relay.register_endpoint(endpoint)
    return env, cluster, scheduler, endpoint, relay


def chat_payload(i, output=60):
    return {"request": InferenceRequest(f"req-{i:05d}", MODEL_8B,
                                        prompt_tokens=200, max_output_tokens=output)}


def test_metrics_feed_samples_pool_state_and_rates():
    env, cluster, scheduler, endpoint, relay = build_stack(
        models=[ModelHostingConfig(model=MODEL_8B, max_instances=2)]
    )
    pool = endpoint.pools[MODEL_8B]
    futures = [relay.submit("fn-chat", "ep-as", chat_payload(i)) for i in range(10)]
    env.run(until=env.all_of([f.done for f in futures]))
    env.run(until=env.now + 1.0)
    observed = pool.feed.sample()
    assert observed.model == MODEL_8B
    assert observed.ready_instances == 1
    assert observed.waiting_tasks == 0
    assert observed.arrival_rate_rps == pytest.approx(10.0 / observed.time)
    assert observed.completion_rate_rps == pytest.approx(10.0 / observed.time)
    # Cold start was measured, not defaulted.
    assert 0.0 < observed.cold_start_estimate_s < 120.0
    # Rate window advanced: an immediate re-sample sees no new arrivals.
    env.run(until=env.now + 5.0)
    assert pool.feed.sample().arrival_rate_rps == 0.0


def test_min_instances_floor_is_prewarmed_by_controller():
    env, cluster, scheduler, endpoint, relay = build_stack(
        models=[ModelHostingConfig(
            model=MODEL_8B, max_instances=3,
            autoscale=AutoscaleConfig(policy="queue_depth", min_instances=1,
                                      interval_s=5.0),
        )]
    )
    env.run(until=60.0)  # no traffic at all
    assert endpoint.ready_instance_count() == 1


def test_drained_instance_finishes_in_flight_requests_then_releases_job():
    env, cluster, scheduler, endpoint, relay = build_stack(
        models=[ModelHostingConfig(model=MODEL_8B, max_instances=2,
                                   max_parallel_tasks=4)]
    )
    pool = endpoint.pools[MODEL_8B]
    pool.prewarm(2)
    env.run(until=60.0)
    assert endpoint.ready_instance_count() == 2

    futures = [relay.submit("fn-chat", "ep-as", chat_payload(i, output=200))
               for i in range(8)]
    env.run(until=env.now + 3.0)  # requests are in flight on both instances
    assert pool.in_flight_tasks > 0

    assert pool.start_drain_one()
    assert len(pool.draining) == 1
    status = pool.status()
    assert status.draining_instances == 1
    # The drained instance refuses new work but keeps serving.
    draining = [i for i in pool.instances
                if i.state == InstanceState.DRAINING]
    assert len(draining) == 1 and draining[0].in_flight > 0
    with pytest.raises(RuntimeError):
        draining[0].submit(InferenceRequest("late", MODEL_8B, 10, 10))

    env.run(until=env.all_of([f.done for f in futures]))
    assert all(f.record.result.success for f in futures)  # nothing was killed
    env.run(until=env.now + 5.0)  # drain monitor retires the idle instance

    assert endpoint.ready_instance_count() == 1
    assert pool.drained == 1 and not pool.draining
    assert scheduler.jobs_drained == 1
    drained_jobs = [j for j in scheduler.all_jobs
                    if j.exit_reason == "drained (scale-down)"]
    assert len(drained_jobs) == 1
    assert drained_jobs[0].state == JobState.COMPLETED
    # Exactly one job still holds nodes; nothing leaked.
    assert len(scheduler.running_jobs) == 1
    assert len(cluster.free_nodes) == cluster.total_nodes - 1


def test_scale_up_scale_down_cycle_returns_to_floor_without_leaks():
    env, cluster, scheduler, endpoint, relay = build_stack(
        models=[ModelHostingConfig(
            model=MODEL_8B, max_instances=3, max_parallel_tasks=4,
            scale_up_queue_per_instance=2,
            autoscale=AutoscaleConfig(policy="queue_depth", min_instances=1,
                                      max_instances=3, interval_s=5.0,
                                      queue_per_instance=2, scale_down=True,
                                      scale_down_hold_s=20.0),
        )],
        monitor_interval=5.0,
    )
    pool = endpoint.pools[MODEL_8B]
    futures = [relay.submit("fn-chat", "ep-as", chat_payload(i, output=150))
               for i in range(90)]
    env.run(until=env.all_of([f.done for f in futures]))
    assert all(f.record.result.success for f in futures)
    peak = max(a["to"] for a in pool.replicas.actions)
    assert peak >= 2  # the burst scaled the pool up

    env.run(until=env.now + 600.0)  # quiet: controller drains back down
    assert endpoint.ready_instance_count() == 1  # back at the floor
    assert not pool.draining and pool.launching == 0

    # Zero leaked jobs: every started job beyond the floor terminated cleanly.
    active = [j for j in scheduler.all_jobs if not j.state.terminal]
    assert len(active) == 1
    assert scheduler.jobs_drained == pool.drained >= 1
    assert len(cluster.free_nodes) == cluster.total_nodes - 1
    # GPU-hour accounting covers every job that held nodes.
    assert scheduler.gpu_seconds() > 0


def test_scaled_down_endpoint_deregisters_cleanly_and_routes_move_on():
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="alpha", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(MODEL_8B, max_instances=1,
                                            max_parallel_tasks=8)],
            ),
            ClusterDeploymentSpec(
                name="beta", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(MODEL_8B, max_instances=1,
                                            max_parallel_tasks=8)],
            ),
        ],
        users=["ops@anl.gov"],
        generate_text=False,
    )
    deployment = FIRSTDeployment(config)
    client = deployment.client("ops@anl.gov")

    first = client.chat_completion(
        MODEL_8B, [{"role": "user", "content": "warm alpha"}], max_tokens=16
    )
    assert "error" not in first
    alpha = deployment.endpoints["ep-alpha"]
    assert alpha.ready_instance_count() == 1

    # Controller scales alpha's pool to zero: drain-before-terminate.
    pool = alpha.pools[MODEL_8B]
    pool.replicas.scale_to(0, reason="facility maintenance")
    deployment.run_for(30.0)
    assert alpha.ready_instance_count() == 0
    assert not pool.draining
    scheduler = deployment.schedulers["alpha"]
    assert not [j for j in scheduler.all_jobs if not j.state.terminal]

    # The drained endpoint deregisters from the federation; the gateway's
    # cached route must not point at it afterwards.
    deployment.registry.deregister("ep-alpha")
    second = client.chat_completion(
        MODEL_8B, [{"role": "user", "content": "hello beta"}], max_tokens=16
    )
    assert "error" not in second
    routed = deployment.gateway._routing_cache[(MODEL_8B, "ops@anl.gov")].endpoint_id
    assert routed == "ep-beta"
    states = {j["endpoint"]: j["state"] for j in client.jobs()}
    assert "ep-alpha" not in states
    assert states["ep-beta"] == "running"


def test_predictive_autoscaling_prewarms_for_ramp_at_endpoint_level():
    env, cluster, scheduler, endpoint, relay = build_stack(
        models=[ModelHostingConfig(
            model=MODEL_8B, max_instances=3, max_parallel_tasks=4,
            autoscale=AutoscaleConfig(policy="predictive", min_instances=1,
                                      max_instances=3, interval_s=10.0,
                                      instance_rps=0.5, prewarm_lead_s=60.0,
                                      trend_beta=0.4, headroom=0.1),
        )],
        num_nodes=4,
    )
    pool = endpoint.pools[MODEL_8B]
    env.run(until=40.0)  # floor instance comes up

    def driver(env):
        # Linearly accelerating arrivals: ~0.2 -> ~2 req/s over 5 minutes.
        i = 0
        for step in range(30):
            rate = 0.2 + (2.0 - 0.2) * step / 29
            for _ in range(max(1, round(rate * 10.0))):
                relay.submit("fn-chat", "ep-as", chat_payload(i, output=80))
                i += 1
            yield env.timeout(10.0)

    env.process(driver(env))
    env.run(until=400.0)
    # The forecast scaled the pool beyond the floor before the peak hit.
    assert max(a["to"] for a in pool.replicas.actions) >= 2
    first_up = min(a["time"] for a in pool.replicas.actions if a["to"] >= 2)
    assert first_up < 300.0


def test_math_ceil_guard_never_targets_negative():
    policy = PredictivePolicy(alpha=1.0, beta=0.0, lead_s=0.0, instance_rps=1.0)
    decision = policy.decide(sample(time=10.0, arrival_rate_rps=0.0,
                                    ready_instances=0, waiting_tasks=0))
    assert decision.target >= 0
    assert math.ceil(-0.1) == 0  # the clamp math the policies rely on
