"""Unit tests for Resource, PriorityResource and Container."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource


def test_resource_capacity_enforced():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def user(env, res, name, hold):
        with res.request() as req:
            yield req
            log.append((name, "start", env.now))
            yield env.timeout(hold)
        log.append((name, "end", env.now))

    for i in range(4):
        env.process(user(env, res, f"u{i}", 10.0))
    env.run()

    starts = {name: t for name, kind, t in log if kind == "start"}
    assert starts["u0"] == 0.0
    assert starts["u1"] == 0.0
    assert starts["u2"] == 10.0
    assert starts["u3"] == 10.0


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_counts_and_queue():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(5.0)

    def observer(env, res, snapshots):
        yield env.timeout(1.0)
        snapshots.append((res.count, res.queued))

    snapshots = []
    env.process(holder(env, res))
    env.process(holder(env, res))
    env.process(observer(env, res, snapshots))
    env.run()
    assert snapshots == [(1, 1)]


def test_resource_release_of_queued_request_withdraws_it():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def first(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(10.0)
            order.append(("first-done", env.now))

    def second_gives_up(env, res):
        req = res.request()
        yield env.timeout(2.0)
        res.release(req)  # withdraw while still queued
        order.append(("second-gave-up", env.now))

    def third(env, res):
        yield env.timeout(3.0)
        with res.request() as req:
            yield req
            order.append(("third-start", env.now))

    env.process(first(env, res))
    env.process(second_gives_up(env, res))
    env.process(third(env, res))
    env.run()
    assert ("second-gave-up", 2.0) in order
    assert ("third-start", 10.0) in order


def test_resource_resize_grants_waiters():
    env = Environment()
    res = Resource(env, capacity=1)
    starts = []

    def user(env, res, name):
        with res.request() as req:
            yield req
            starts.append((name, env.now))
            yield env.timeout(100.0)

    def grower(env, res):
        yield env.timeout(5.0)
        res.resize(3)

    for i in range(3):
        env.process(user(env, res, i))
    env.process(grower(env, res))
    env.run(until=50.0)
    assert dict(starts) == {0: 0.0, 1: 5.0, 2: 5.0}


def test_priority_resource_orders_queue():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env, res):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(10.0)

    def user(env, res, name, priority, arrive):
        yield env.timeout(arrive)
        with res.request(priority=priority) as req:
            yield req
            order.append(name)
            yield env.timeout(1.0)

    env.process(holder(env, res))
    env.process(user(env, res, "low", 5, 1.0))
    env.process(user(env, res, "high", 1, 2.0))
    env.process(user(env, res, "mid", 3, 3.0))
    env.run()
    assert order == ["high", "mid", "low"]


def test_container_put_get():
    env = Environment()
    tank = Container(env, capacity=100.0, init=10.0)
    log = []

    def producer(env, tank):
        for _ in range(5):
            yield env.timeout(1.0)
            yield tank.put(20.0)

    def consumer(env, tank):
        yield tank.get(50.0)
        log.append(("got", env.now, tank.level))

    env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert log == [("got", 2.0, 0.0)]
    assert tank.level == 60.0


def test_container_put_blocks_when_full():
    env = Environment()
    tank = Container(env, capacity=10.0, init=10.0)
    log = []

    def producer(env, tank):
        yield tank.put(5.0)
        log.append(("put-done", env.now))

    def consumer(env, tank):
        yield env.timeout(4.0)
        yield tank.get(7.0)

    env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert log == [("put-done", 4.0)]
    assert tank.level == 8.0


def test_container_invalid_arguments():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0.0)
    with pytest.raises(ValueError):
        Container(env, capacity=5.0, init=6.0)
    tank = Container(env, capacity=5.0)
    with pytest.raises(ValueError):
        tank.put(0.0)
    with pytest.raises(ValueError):
        tank.get(-1.0)
