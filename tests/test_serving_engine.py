"""Tests for the continuous-batching engine and the API front-end model."""

import pytest

from repro.cluster import A100_40GB, dgx_a100_spec
from repro.serving import (
    APIServer,
    APIServerConfig,
    ContinuousBatchingEngine,
    EngineConfig,
    InferenceRequest,
    PerfModelConfig,
    PerformanceModel,
    default_catalog,
)
from repro.sim import Environment


CATALOG = default_catalog()


def make_engine(env, model="Llama-3.3-70B", tp=None, engine_config=None, perf_config=None):
    spec = CATALOG.get(model)
    perf = PerformanceModel(
        model=spec,
        num_gpus=tp or spec.default_tp,
        gpu_spec=A100_40GB,
        config=perf_config,
        node_spec=dgx_a100_spec(),
    )
    return ContinuousBatchingEngine(env, perf, engine_config or EngineConfig(generate_text=False))


def make_request(i, prompt=220, output=182, model="meta-llama/Llama-3.3-70B-Instruct"):
    return InferenceRequest(
        request_id=f"req-{i:05d}",
        model=model,
        prompt_tokens=prompt,
        max_output_tokens=output,
    )


def test_request_validation():
    with pytest.raises(ValueError):
        InferenceRequest("r", "m", prompt_tokens=-1, max_output_tokens=10)
    with pytest.raises(ValueError):
        InferenceRequest("r", "m", prompt_tokens=10, max_output_tokens=0)


def test_single_request_latency_matches_timing_model():
    """A lone ShareGPT-like request on 70B finishes in roughly 2.5-3.5 s."""
    env = Environment()
    engine = make_engine(env)
    ev = engine.submit(make_request(0))
    env.run(until=ev)
    result = ev.value
    assert result.success
    assert result.output_tokens == 182
    assert 2.3 <= result.engine_latency_s <= 3.6
    assert result.time_to_first_token_s is not None
    assert result.time_to_first_token_s < 0.5


def test_engine_records_stats():
    env = Environment()
    engine = make_engine(env)
    events = [engine.submit(make_request(i)) for i in range(5)]
    env.run(until=env.all_of(events))
    assert engine.stats.submitted == 5
    assert engine.stats.completed == 5
    assert engine.stats.output_tokens == 5 * 182
    assert engine.stats.peak_batch_size == 5
    assert engine.is_idle


def test_continuous_batching_improves_aggregate_throughput():
    """Running 64 requests concurrently is far faster than running them serially."""
    env = Environment()
    engine = make_engine(env)
    n = 64
    events = [engine.submit(make_request(i)) for i in range(n)]
    done = env.all_of(events)
    env.run(until=done)
    batch_duration = env.now
    total_tokens = n * 182

    # Serial execution estimate: n * single-request latency.
    env2 = Environment()
    engine2 = make_engine(env2)
    ev = engine2.submit(make_request(0))
    env2.run(until=ev)
    serial_estimate = n * ev.value.engine_latency_s

    assert batch_duration < serial_estimate / 3
    aggregate = total_tokens / batch_duration
    single_seq_rate = 182 / ev.value.engine_latency_s
    assert aggregate > 5 * single_seq_rate


def test_batch_of_requests_completion_order_and_tokens():
    env = Environment()
    engine = make_engine(env)
    events = [engine.submit(make_request(i, output=50 + 10 * i)) for i in range(5)]
    env.run(until=env.all_of(events))
    results = [ev.value for ev in events]
    # Shorter generations finish earlier.
    times = [r.completion_time for r in results]
    assert times == sorted(times)
    assert [r.output_tokens for r in results] == [50, 60, 70, 80, 90]


def test_max_num_seqs_bounds_concurrency():
    env = Environment()
    engine = make_engine(env, engine_config=EngineConfig(max_num_seqs=4, generate_text=False))
    for i in range(10):
        engine.submit(make_request(i, output=40))
    env.run(until=5.0)
    assert engine.stats.peak_batch_size <= 4


def test_kv_exhaustion_triggers_preemption_or_queueing():
    """With a tiny KV cache, the engine must queue/preempt rather than crash."""
    env = Environment()
    spec = CATALOG.get("Llama-3.3-70B")
    perf = PerformanceModel(spec, 8, A100_40GB, node_spec=dgx_a100_spec())

    class TinyKVPerf(PerformanceModel):
        def kv_capacity_tokens(self, vram_utilization=0.9):
            return 2048  # only ~5 ShareGPT requests fit

    tiny = TinyKVPerf(spec, 8, A100_40GB, node_spec=dgx_a100_spec())
    engine = ContinuousBatchingEngine(env, tiny, EngineConfig(generate_text=False))
    events = [engine.submit(make_request(i, prompt=300, output=80)) for i in range(12)]
    env.run(until=env.all_of(events))
    results = [ev.value for ev in events]
    assert all(r.success for r in results)
    assert engine.stats.completed == 12
    assert engine.stats.peak_batch_size < 12  # could not all run at once


def test_engine_stop_fails_outstanding_requests():
    env = Environment()
    engine = make_engine(env)
    ev = engine.submit(make_request(0))

    def stopper(env):
        yield env.timeout(0.5)
        engine.stop()

    env.process(stopper(env))
    env.run(until=ev)
    assert ev.value.success is False
    with pytest.raises(RuntimeError):
        engine.submit(make_request(1))


def test_engine_generates_text_when_enabled():
    env = Environment()
    spec = CATALOG.get("Llama-3.1-8B")
    perf = PerformanceModel(spec, 4, A100_40GB, node_spec=dgx_a100_spec())
    engine = ContinuousBatchingEngine(env, perf, EngineConfig(generate_text=True))
    req = make_request(0, output=40, model=spec.name)
    req.prompt_text = "Describe the genomic analysis pipeline"
    ev = engine.submit(req)
    env.run(until=ev)
    assert ev.value.text.startswith(f"[{spec.name}]")
    assert len(ev.value.text.split()) >= 20


def test_engine_idle_then_new_work_wakes_up():
    env = Environment()
    engine = make_engine(env)
    ev1 = engine.submit(make_request(0, output=20))
    env.run(until=ev1)
    first_done = env.now

    ev2_holder = {}

    def later(env):
        yield env.timeout(100.0)
        ev2_holder["ev"] = engine.submit(make_request(1, output=20))
        yield ev2_holder["ev"]

    p = env.process(later(env))
    env.run(until=p)
    result2 = ev2_holder["ev"].value
    assert result2.success
    assert result2.engine_enqueue_time >= first_done + 100.0


# ---------------------------------------------------------------------------
# API front-end model
# ---------------------------------------------------------------------------

def test_api_server_single_request_small_overhead():
    env = Environment()
    engine = make_engine(env)
    server = APIServer(env, engine)
    ev = server.submit(make_request(0))
    env.run(until=ev)
    result = ev.value
    assert result.success
    # Front-end adds only ~10 ms when the server is not hammered.
    assert 2.3 <= (result.completion_time - result.arrival_time) <= 3.7
    assert server.stats.handled == 1


def test_api_server_handling_cost_grows_with_open_connections():
    env = Environment()
    engine = make_engine(env)
    server = APIServer(env, engine, APIServerConfig(base_handling_s=0.012,
                                                    degradation_connections=70.0))
    base_cost = server.handling_cost_s()
    server._open_connections = 1000
    degraded = server.handling_cost_s()
    assert degraded > 10 * base_cost


def test_api_server_saturates_under_many_concurrent_connections():
    """Hammering the single-threaded front-end with hundreds of concurrent
    connections limits completion rate well below the engine's capability."""
    env = Environment()
    engine = make_engine(env)
    server = APIServer(env, engine)
    n = 800
    events = [server.submit(make_request(i, output=182)) for i in range(n)]
    env.run(until=env.all_of(events))
    duration = env.now
    throughput = n / duration
    assert server.stats.peak_open_connections == n
    # The front-end cap lands near the paper's ~5-7 req/s, well below the
    # ~9 req/s the engine sustains when admission is bounded (Fig. 3).
    assert throughput < 9.0
