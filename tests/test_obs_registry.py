"""Tests for the observability metrics registry: Counter/Gauge/Histogram,
Prometheus text exposition, and exact shard merging."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


# -- metric types ---------------------------------------------------------------

def test_counter_basics_and_labels():
    registry = MetricsRegistry()
    c = registry.counter("requests_total", "requests", labelnames=("model",))
    c.labels(model="a").inc()
    c.labels(model="a").inc(2)
    c.labels(model="b").inc(5)
    assert c.value == 8
    assert c.child_values() == {("a",): 3.0, ("b",): 5.0}
    with pytest.raises(ValueError):
        c.labels(model="a").inc(-1)
    with pytest.raises(ValueError):
        c.labels(wrong="a")


def test_gauge_set_inc_dec():
    g = Gauge("in_flight", "in flight")
    g.inc()
    g.inc()
    g.dec()
    assert g.value == 1
    g.set(7)
    assert g.value == 7


def test_histogram_quantile_accuracy():
    h = Histogram("latency", "latency", rel_err=0.01)
    for i in range(1, 1001):
        h.observe(i / 100.0)  # 0.01 .. 10.0
    assert h.count == 1000
    # Log-bucket quantiles are within the configured relative error.
    assert h.quantile(0.5) == pytest.approx(5.0, rel=0.03)
    assert h.quantile(0.99) == pytest.approx(9.9, rel=0.03)


def test_registry_registration_idempotent_and_checked():
    registry = MetricsRegistry()
    a = registry.counter("x_total", "x", labelnames=("m",))
    assert registry.counter("x_total", "x", labelnames=("m",)) is a
    with pytest.raises(ValueError):
        registry.gauge("x_total")
    with pytest.raises(ValueError):
        registry.counter("x_total", labelnames=("other",))
    assert registry.get("x_total") is a
    assert registry.get("missing") is None


# -- Prometheus exposition ------------------------------------------------------

def parse_prometheus(text):
    """Tiny parser: returns ({name: type}, [(metric, labels, value)])."""
    types = {}
    samples = []
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        metric, _, value = line.rpartition(" ")
        labels = {}
        if "{" in metric:
            metric, _, rest = metric.partition("{")
            for pair in rest.rstrip("}").split(","):
                k, _, v = pair.partition("=")
                labels[k] = v.strip('"')
        samples.append((metric, labels, value))
    return types, samples


def test_prometheus_text_parses_and_is_cumulative():
    registry = MetricsRegistry()
    registry.counter("reqs_total", "requests", labelnames=("model",)) \
        .labels(model="m").inc(3)
    registry.gauge("in_flight", "now running").set(2)
    h = registry.histogram("lat_seconds", "latency", labelnames=("model",))
    for v in (0.1, 0.5, 1.0, 2.0, 0.0):
        h.labels(model="m").observe(v)

    text = registry.prometheus_text()
    assert text.endswith("\n")
    types, samples = parse_prometheus(text)
    assert types == {"reqs_total": "counter", "in_flight": "gauge",
                     "lat_seconds": "histogram"}

    buckets = [(lbl, float(val)) for name, lbl, val in samples
               if name == "lat_seconds_bucket"]
    # Bucket counts are cumulative and end at +Inf == _count.
    counts = [v for _, v in buckets]
    assert counts == sorted(counts)
    assert buckets[-1][0]["le"] == "+Inf"
    assert buckets[-1][1] == 5
    count = [v for name, _, v in samples if name == "lat_seconds_count"]
    assert count == ["5"]
    total = [v for name, lbl, v in samples
             if name == "reqs_total" and lbl == {"model": "m"}]
    assert total == ["3"]


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("c_total", labelnames=("m",)).labels(m='a"b\\c\nd').inc()
    text = registry.prometheus_text()
    assert 'm="a\\"b\\\\c\\nd"' in text


# -- exact shard merge ----------------------------------------------------------

def _shard(values):
    registry = MetricsRegistry()
    registry.counter("reqs_total", "r", labelnames=("model",))
    h = registry.histogram("lat_seconds", "l", labelnames=("model",))
    for model, v in values:
        registry.get("reqs_total").labels(model=model).inc()
        h.labels(model=model).observe(v)
    return registry


def test_merge_is_exact_across_shards():
    # Dyadic values: float sums are exact in any addition order, so the
    # mergeable guarantee (identical buckets/counts) extends to _sum too.
    shard_a = [("m", 0.125), ("m", 4.25), ("n", 0.75)]
    shard_b = [("m", 2.5), ("n", 7.5), ("n", 0.0625)]

    merged = _shard(shard_a)
    merged.merge(_shard(shard_b))
    single = _shard(shard_a + shard_b)

    # Bit-identical exposition: merging shard registries equals one registry
    # fed the union of samples.
    assert merged.prometheus_text() == single.prometheus_text()
    assert merged.to_dict() == single.to_dict()


def test_merge_rejects_layout_mismatch():
    a = MetricsRegistry()
    a.counter("x_total", labelnames=("m",))
    b = MetricsRegistry()
    b.gauge("x_total")
    with pytest.raises(ValueError):
        a.merge(b)


def test_registry_dict_round_trip_is_json_safe():
    registry = _shard([("m", 0.25), ("n", 1.5)])
    registry.gauge("g").set(3)
    payload = json.loads(json.dumps(registry.to_dict()))
    restored = MetricsRegistry.from_dict(payload)
    assert restored.prometheus_text() == registry.prometheus_text()
    # A restored shard keeps merging exactly.
    restored.merge(_shard([("m", 9.0)]))
    direct = _shard([("m", 0.25), ("n", 1.5), ("m", 9.0)])
    assert (restored.get("lat_seconds").labels(model="m").count
            == direct.get("lat_seconds").labels(model="m").count)
