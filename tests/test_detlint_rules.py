"""detlint rule tests: planted-violation fixtures, negatives, pragmas.

Every rule gets at least one fixture-backed positive (the violation is
found) and one negative (the blessed idiom is not flagged), plus
pragma-disable coverage.  Fixtures are written into a temp project tree so
the tests exercise the same path-based package-role logic the real
``pyproject.toml`` config drives.
"""

from __future__ import annotations

import textwrap

from repro.analysis.engine import (
    DetlintConfig,
    LintEngine,
    Profile,
    _parse_toml_minimal,
    load_config,
)


def make_config(**overrides) -> DetlintConfig:
    base = dict(
        sim_path=["src/repro/sim"],
        observe_only=["src/repro/obs"],
        randomness_modules=["src/repro/common/randomness.py"],
    )
    base.update(overrides)
    return DetlintConfig(**base)


def lint_snippet(tmp_path, source: str, rel="src/repro/sim/mod.py",
                 config: DetlintConfig = None):
    """Write ``source`` at ``rel`` inside a temp project and lint it."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    engine = LintEngine(config or make_config(), tmp_path)
    return engine.lint_file(path)


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------- DET001
class TestWallClock:
    def test_positive_time_time(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import time
            def f():
                return time.time()
        """)
        assert rules_of(findings) == ["DET001"]
        assert "time.time" in findings[0].message

    def test_positive_aliased_import(self, tmp_path):
        # Aliasing must not dodge the rule.
        findings = lint_snippet(tmp_path, """
            from time import perf_counter as pc
            import datetime as dt
            def f():
                return pc(), dt.datetime.now()
        """)
        assert rules_of(findings) == ["DET001", "DET001"]

    def test_negative_env_now(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def f(env):
                return env.now + 1.0
        """)
        assert findings == []

    def test_negative_sleep_like_names(self, tmp_path):
        # Only clock *reads* are wall-clock hazards; time.sleep and
        # user-defined .time() attributes are out of scope.
        findings = lint_snippet(tmp_path, """
            import time
            def f(obj):
                time.sleep(0)
                return obj.time()
        """)
        assert findings == []

    def test_allowlisted_file_is_exempt(self, tmp_path):
        config = make_config(
            allow_wallclock={"src/repro/sim/mod.py": "profiling wall time"})
        findings = lint_snippet(tmp_path, """
            import time
            def f():
                return time.perf_counter()
        """, config=config)
        assert findings == []

    def test_pragma_disable_with_reason(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import time
            def f():
                return time.time()  # detlint: disable=DET001 — wall profiling
        """)
        assert findings == []

    def test_pragma_without_reason_is_det000_and_does_not_suppress(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import time
            def f():
                return time.time()  # detlint: disable=DET001
        """)
        assert sorted(rules_of(findings)) == ["DET000", "DET001"]

    def test_standalone_pragma_covers_next_line(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import time
            def f():
                # detlint: disable=DET001 — measuring the host, reason spans
                # a second comment line before the code it covers
                return time.time()
        """)
        assert findings == []


# ---------------------------------------------------------------- DET002
class TestGlobalRandom:
    def test_positive_global_random(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import random
            def f():
                return random.random() + random.randint(0, 3)
        """)
        assert rules_of(findings) == ["DET002", "DET002"]

    def test_positive_numpy_random(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np
            def f(seed):
                return np.random.default_rng(seed)
        """)
        assert rules_of(findings) == ["DET002"]
        assert "RandomSource" in findings[0].message

    def test_positive_from_import(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from random import shuffle
            def f(items):
                shuffle(items)
        """)
        assert rules_of(findings) == ["DET002"]

    def test_negative_seeded_instance(self, tmp_path):
        # Explicit seeded instances are deterministic and hash-independent.
        findings = lint_snippet(tmp_path, """
            import random
            def f():
                rng = random.Random(12345)
                return rng.random()
        """)
        assert findings == []

    def test_negative_randomness_module_itself(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np
            def spawn(seed):
                return np.random.default_rng(np.random.SeedSequence(seed))
        """, rel="src/repro/common/randomness.py")
        assert findings == []


# ---------------------------------------------------------------- DET003
class TestBuiltinHash:
    def test_positive(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def key_for(model):
                return hash((model, 7))
        """)
        assert rules_of(findings) == ["DET003"]
        assert "stable_seed" in findings[0].message

    def test_negative_stable_seed_and_methods(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.common import stable_seed
            def key_for(model, obj):
                return stable_seed(model, 7) + obj.hash()
        """)
        assert findings == []

    def test_negative_shadowed_import(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from mylib import hash
            def f(x):
                return hash(x)
        """)
        assert findings == []


# ---------------------------------------------------------------- DET004
class TestUnorderedIteration:
    def test_positive_for_over_set_call(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def f(items):
                for x in set(items):
                    print(x)
        """)
        assert rules_of(findings) == ["DET004"]

    def test_positive_sum_over_set_variable(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def f(values):
                pending = set(values)
                return sum(pending)
        """)
        assert rules_of(findings) == ["DET004"]

    def test_positive_comprehension_over_annotated_set(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from typing import Set
            def f(active: Set[str]):
                return [x.upper() for x in active]
        """)
        assert rules_of(findings) == ["DET004"]

    def test_positive_set_union_binop(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def f(a, b):
                for x in set(a) | set(b):
                    print(x)
        """)
        assert rules_of(findings) == ["DET004"]

    def test_negative_sorted_iteration(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def f(items):
                seen = set(items)
                for x in sorted(seen):
                    print(x)
                return sum(sorted(seen))
        """)
        assert findings == []

    def test_negative_dict_and_list_iteration(self, tmp_path):
        # dicts iterate in insertion order — deterministic.
        findings = lint_snippet(tmp_path, """
            def f(table, rows):
                for key, value in table.items():
                    print(key, value)
                for row in rows:
                    print(row)
        """)
        assert findings == []

    def test_negative_membership_and_len(self, tmp_path):
        # Order-independent set *uses* are fine.
        findings = lint_snippet(tmp_path, """
            def f(items, x):
                seen = set(items)
                return x in seen, len(seen), min(seen)
        """)
        assert findings == []

    def test_not_enforced_off_sim_path(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def f(items):
                for x in set(items):
                    print(x)
        """, rel="src/repro/webui/mod.py")
        assert findings == []


# ---------------------------------------------------------------- DET005
class TestPickleUnsafe:
    def test_positive_lambda_argument(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.sweep import ScenarioSpec
            def build():
                return ScenarioSpec(key="k", runner=lambda spec: {})
        """)
        assert rules_of(findings) == ["DET005"]

    def test_positive_nested_function(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.sweep import SweepSpec
            def build():
                def local_runner(spec):
                    return {}
                return SweepSpec(name="s", runner=local_runner)
        """)
        assert rules_of(findings) == ["DET005"]
        assert "local_runner" in findings[0].message

    def test_positive_lambda_in_params_dict(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.sweep import ScenarioSpec
            def build():
                return ScenarioSpec(key="k", runner="engine",
                                    params={"hook": lambda: 1})
        """)
        assert rules_of(findings) == ["DET005"]

    def test_negative_registered_name_and_module_callable(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.sweep import ScenarioSpec

            def module_runner(spec):
                return {}

            def build():
                a = ScenarioSpec(key="a", runner="engine")
                b = ScenarioSpec(key="b", runner=module_runner)
                return a, b
        """)
        assert findings == []


# ---------------------------------------------------------------- ARCH001
class TestObserveOnly:
    def test_positive_scheduling_and_draws(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def hook(env, rng):
                env.schedule(None, 1.0)
                return env.timeout(0.5), rng.uniform()
        """, rel="src/repro/obs/mod.py")
        assert rules_of(findings) == ["ARCH001", "ARCH001", "ARCH001"]

    def test_negative_reading_now(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def hook(env):
                return env.now, env.queue_size
        """, rel="src/repro/obs/mod.py")
        assert findings == []

    def test_not_enforced_outside_obs(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def f(env):
                return env.timeout(1.0)
        """, rel="src/repro/serving/mod.py")
        assert findings == []


# ---------------------------------------------------------------- ARCH002
class TestGatewayApi:
    GATEWAY = """
        class InferenceGatewayAPI:
            def __init__(self):
                pass
            def route(self, model):
                pass
            def new_feature(self, body):
                pass
    """

    def config(self):
        return make_config(
            gateway_api_file="src/repro/gateway/app.py",
            gateway_api_methods=["__init__", "route"])

    def test_positive_new_method(self, tmp_path):
        findings = lint_snippet(tmp_path, self.GATEWAY,
                                rel="src/repro/gateway/app.py",
                                config=self.config())
        assert rules_of(findings) == ["ARCH002"]
        assert "new_feature" in findings[0].message
        assert "middleware_factories" in findings[0].message

    def test_negative_rostered_methods_only(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            class InferenceGatewayAPI:
                def __init__(self):
                    pass
                def route(self, model):
                    pass
        """, rel="src/repro/gateway/app.py", config=self.config())
        assert findings == []

    def test_other_files_not_checked(self, tmp_path):
        findings = lint_snippet(tmp_path, self.GATEWAY,
                                rel="src/repro/gateway/other.py",
                                config=self.config())
        assert findings == []


# ---------------------------------------------------------------- engine
class TestEngine:
    def test_profile_disables_rules_by_path(self, tmp_path):
        config = make_config(profiles=[
            Profile(name="exemplar", paths=["benchmarks"], disable=["DET001"])])
        source = """
            import time
            def f():
                return time.time()
        """
        assert lint_snippet(tmp_path, source, rel="benchmarks/bench_x.py",
                            config=config) == []
        assert rules_of(lint_snippet(tmp_path, source, config=config)) \
            == ["DET001"]

    def test_file_pragma(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            # detlint: disable-file=DET003 — fixture demonstrating hash hazards
            def f(x):
                return hash(x), hash(x)
        """)
        assert findings == []

    def test_findings_sorted_and_json_stable(self, tmp_path):
        from repro.analysis.engine import render_json

        findings = lint_snippet(tmp_path, """
            import time
            def f(items):
                for x in set(items):
                    print(x)
                return time.time(), hash(x)
        """)
        assert len(findings) == 3
        # JSON output is stable-sorted by (path, line, rule) regardless of
        # the order findings were collected in.
        rendered = render_json(findings)
        assert rendered == render_json(list(reversed(findings)))
        lines = [f["line"] for f in __import__("json").loads(rendered)["findings"]]
        assert lines == sorted(lines)

    def test_baseline_suppresses_known_findings(self, tmp_path):
        import json

        from repro.analysis.engine import apply_baseline, load_baseline

        findings = lint_snippet(tmp_path, """
            import time
            def f():
                return time.time()
        """)
        assert len(findings) == 1
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(json.dumps(
            {"findings": [findings[0].to_dict()]}), encoding="utf-8")
        assert apply_baseline(findings, load_baseline(baseline_file)) == []

    def test_pragma_in_string_literal_is_inert(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            MESSAGE = "use '# detlint: disable=DET001 — reason' to suppress"
            DOC = "# detlint: nonsense"
        """)
        assert findings == []

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        findings = lint_snippet(tmp_path, "def broken(:\n")
        assert rules_of(findings) == ["DET000"]

    def test_minimal_toml_parser_matches_real_config(self):
        text = """
        [tool.detlint]
        sim_path = ["src/repro/sim", "src/repro/serving"]
        gateway_api_class = "InferenceGatewayAPI"
        gateway_api_methods = [
            "__init__", "route",
        ]

        [tool.detlint.allow_wallclock]
        "src/repro/obs/kernel.py" = "profiles wall time"

        [tool.detlint.profiles.exemplar]
        paths = ["benchmarks"]
        disable = ["DET001"]
        """
        parsed = _parse_toml_minimal(textwrap.dedent(text))
        detlint = parsed["tool"]["detlint"]
        assert detlint["sim_path"] == ["src/repro/sim", "src/repro/serving"]
        assert detlint["gateway_api_methods"] == ["__init__", "route"]
        assert detlint["allow_wallclock"]["src/repro/obs/kernel.py"] \
            == "profiles wall time"
        assert detlint["profiles"]["exemplar"]["disable"] == ["DET001"]
        try:
            import tomllib
        except ImportError:
            return
        assert parsed == tomllib.loads(textwrap.dedent(text))

    def test_load_config_reads_repo_pyproject(self):
        from pathlib import Path

        config = load_config(Path(__file__).resolve().parents[1])
        assert "src/repro/sim" in config.sim_path
        assert "src/repro/obs/kernel.py" in config.allow_wallclock
        # Allowlist entries must carry a non-empty reason.
        assert all(reason.strip() for reason in config.allow_wallclock.values())
        assert "route" in config.gateway_api_methods


# ---------------------------------------------------------------- CLI
class TestCli:
    def write_project(self, tmp_path, source):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
            [tool.detlint]
            sim_path = ["src/repro/sim"]
        """), encoding="utf-8")
        mod = tmp_path / "src/repro/sim/mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(textwrap.dedent(source), encoding="utf-8")

    def test_exit_codes_and_json_output(self, tmp_path, capsys):
        import json

        from repro.analysis.__main__ import main

        self.write_project(tmp_path, """
            import time
            def f():
                return time.time()
        """)
        out = tmp_path / "findings.json"
        code = main(["src", "--root", str(tmp_path),
                     "--format", "json", "--output", str(out)])
        assert code == 1
        data = json.loads(out.read_text(encoding="utf-8"))
        assert [f["rule"] for f in data["findings"]] == ["DET001"]
        keys = [(f["path"], f["line"], f["rule"]) for f in data["findings"]]
        assert keys == sorted(keys)
        capsys.readouterr()

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        self.write_project(tmp_path, "def f(env):\n    return env.now\n")
        assert main(["src", "--root", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        self.write_project(tmp_path, """
            import time
            def f():
                return time.time()
        """)
        baseline = tmp_path / "baseline.json"
        assert main(["src", "--root", str(tmp_path),
                     "--write-baseline", str(baseline)]) == 0
        assert main(["src", "--root", str(tmp_path),
                     "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_repo_tree_is_clean(self):
        """The acceptance gate: src/, benchmarks/ and examples/ lint clean
        with no baseline."""
        from pathlib import Path

        from repro.analysis.__main__ import main

        root = Path(__file__).resolve().parents[1]
        assert main(["src", "benchmarks", "examples",
                     "--root", str(root)]) == 0
