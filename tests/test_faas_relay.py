"""Tests for the FaaS function registry, task records and cloud relay."""

import pytest

from repro.common import AuthorizationError, NotFoundError
from repro.faas import (
    HANDLER_CHAT,
    FunctionRegistry,
    RelayConfig,
    RelayService,
    TaskRecord,
    TaskStatus,
)
from repro.sim import Environment


class FakeEndpoint:
    """Minimal endpoint double: executes every task after a fixed delay."""

    def __init__(self, env, endpoint_id="ep-fake", delay=1.0, succeed=True, instances=1,
                 backlog=0):
        self.env = env
        self.endpoint_id = endpoint_id
        self.delay = delay
        self.succeed_tasks = succeed
        self.instances = instances
        self.backlog = backlog
        self.backlog_queries = []
        self.executed = 0
        self.dispatched = 0

    def ready_instance_count(self):
        return self.instances

    def kernel_backlog(self, model=None):
        self.backlog_queries.append(model)
        return self.backlog

    def enqueue(self, record, function):
        outcome = self.env.event()
        self.dispatched += 1
        self.backlog += 1

        def run(env):
            yield env.timeout(self.delay)
            self.backlog -= 1
            self.executed += 1
            if self.succeed_tasks:
                outcome.succeed({"success": True, "result": {"echo": record.payload.get("x")}})
            else:
                outcome.succeed({"success": False, "error": "boom"})

        self.env.process(run(self.env))
        return outcome


def make_relay(env, **endpoint_kwargs):
    relay = RelayService(env)
    relay.functions.register("fn-chat", "chat inference", HANDLER_CHAT, owner="admins")
    endpoint = FakeEndpoint(env, **endpoint_kwargs)
    relay.register_endpoint(endpoint)
    return relay, endpoint


# -- function registry ---------------------------------------------------------

def test_function_registry_registration_and_lookup():
    reg = FunctionRegistry()
    fn = reg.register("fn-1", "inference", HANDLER_CHAT, owner="admins")
    assert reg.is_registered("fn-1")
    assert reg.get("fn-1") is fn
    assert reg.function_ids == ["fn-1"]
    with pytest.raises(ValueError):
        reg.register("fn-1", "dup", HANDLER_CHAT, owner="admins")
    with pytest.raises(NotFoundError):
        reg.get("fn-2")


def test_unregistered_function_rejected():
    reg = FunctionRegistry()
    with pytest.raises(AuthorizationError):
        reg.require_registered("fn-evil")


# -- relay submission ------------------------------------------------------------

def test_relay_executes_task_and_resolves_future():
    env = Environment()
    relay, endpoint = make_relay(env)
    future = relay.submit("fn-chat", "ep-fake", {"x": 42})

    def run(env):
        result = yield future.done
        return (env.now, result)

    p = env.process(run(env))
    env.run(until=p)
    t, result = p.value
    assert result == {"echo": 42}
    assert future.record.status == TaskStatus.COMPLETED
    assert endpoint.executed == 1
    # Total time = submit + dispatch + execution + routing + result latencies.
    cfg = relay.config
    expected_min = cfg.submit_latency_s + cfg.dispatch_latency_s + 1.0 + cfg.result_latency_s
    assert t >= expected_min
    assert relay.stats.completed == 1


def test_relay_rejects_unregistered_function():
    env = Environment()
    relay, _ = make_relay(env)
    with pytest.raises(AuthorizationError):
        relay.submit("fn-unknown", "ep-fake", {})
    assert relay.stats.submitted == 0


def test_relay_rejects_unknown_endpoint():
    env = Environment()
    relay, _ = make_relay(env)
    with pytest.raises(NotFoundError):
        relay.submit("fn-chat", "ep-missing", {})


def test_relay_requires_authorized_client_when_configured():
    env = Environment()
    relay, _ = make_relay(env)
    relay.authorize_client("trusted-client")
    with pytest.raises(AuthorizationError):
        relay.submit("fn-chat", "ep-fake", {}, client_id="rogue")
    future = relay.submit("fn-chat", "ep-fake", {}, client_id="trusted-client")
    assert future.record.status == TaskStatus.PENDING


def test_relay_duplicate_endpoint_registration_rejected():
    env = Environment()
    relay, endpoint = make_relay(env)
    with pytest.raises(ValueError):
        relay.register_endpoint(endpoint)


def test_relay_failed_task_marks_failed_status():
    env = Environment()
    relay = RelayService(env)
    relay.functions.register("fn-chat", "chat", HANDLER_CHAT, owner="admins")
    relay.register_endpoint(FakeEndpoint(env, succeed=False))
    future = relay.submit("fn-chat", "ep-fake", {})
    env.run(until=future.done)
    assert future.record.status == TaskStatus.FAILED
    assert relay.stats.failed == 1
    with pytest.raises(RuntimeError):
        relay.get_result(future.task_id)


def test_relay_status_and_result_lookup():
    env = Environment()
    relay, _ = make_relay(env)
    future = relay.submit("fn-chat", "ep-fake", {"x": 1})
    assert relay.get_status(future.task_id) == TaskStatus.PENDING
    with pytest.raises(RuntimeError):
        relay.get_result(future.task_id)
    env.run(until=future.done)
    assert relay.get_status(future.task_id) == TaskStatus.COMPLETED
    assert relay.get_result(future.task_id) == {"echo": 1}
    with pytest.raises(NotFoundError):
        relay.get_status("task-999999")


def test_relay_queue_depth_supports_thousands_of_tasks():
    """Optimization 3: >8000 tasks can sit queued at the relay."""
    env = Environment()
    relay, endpoint = make_relay(env, delay=500.0)
    futures = [relay.submit("fn-chat", "ep-fake", {"x": i}) for i in range(8500)]
    env.run(until=10.0)
    assert relay.queued_tasks >= 8000
    assert relay.stats.peak_queued >= 8000


def test_relay_routing_scalability_curve():
    """The per-result routing rate follows R(N) = R_max * N / (N + half)."""
    env = Environment()
    relay = RelayService(env, RelayConfig(routing_rate_max=66.0, routing_half_instances=7.0))
    relay.functions.register("fn-chat", "chat", HANDLER_CHAT, owner="admins")
    rates = {}
    for n in (1, 2, 3, 4):
        relay.register_endpoint(FakeEndpoint(env, endpoint_id=f"ep-{n}", instances=0))
        relay._endpoints[f"ep-{n}"].instances = 0
    # Directly exercise the service-time computation for various instance counts.
    for n in (1, 2, 3, 4):
        for ep in relay._endpoints.values():
            ep.instances = 0
        relay._endpoints["ep-1"].instances = n
        rates[n] = 1.0 / relay.result_service_time_s()
    assert rates[1] == pytest.approx(66.0 * 1 / 8, rel=1e-6)
    assert rates[4] == pytest.approx(66.0 * 4 / 11, rel=1e-6)
    # Matches the paper's Fig. 4 throughputs within ~10%.
    assert rates[1] == pytest.approx(8.3, rel=0.10)
    assert rates[2] == pytest.approx(14.6, rel=0.10)
    assert rates[3] == pytest.approx(20.9, rel=0.10)
    assert rates[4] == pytest.approx(23.9, rel=0.10)


# -- queue-depth-aware dispatch over candidate lists -----------------------------

def make_multi_relay(env, endpoints):
    relay = RelayService(env)
    relay.functions.register("fn-chat", "chat inference", HANDLER_CHAT, owner="admins")
    for endpoint in endpoints:
        relay.register_endpoint(endpoint)
    return relay


def test_candidate_list_bypasses_busy_endpoint():
    """The regression the dispatcher exists for: with two ready endpoints,
    the one with the deeper kernel backlog is bypassed."""
    env = Environment()
    busy = FakeEndpoint(env, endpoint_id="ep-busy", backlog=7)
    idle = FakeEndpoint(env, endpoint_id="ep-idle", backlog=0)
    relay = make_multi_relay(env, [busy, idle])
    future = relay.submit("fn-chat", ["ep-busy", "ep-idle"], {"x": 1})
    env.run(until=future.done)
    assert future.record.endpoint_id == "ep-idle"
    assert idle.executed == 1 and busy.executed == 0


def test_candidate_list_prefers_ready_instances_over_backlog():
    """An endpoint with no ready instance loses to a ready one even when the
    ready one is more backlogged (a cold endpoint means a scheduler wait)."""
    env = Environment()
    cold = FakeEndpoint(env, endpoint_id="ep-cold", instances=0, backlog=0)
    warm = FakeEndpoint(env, endpoint_id="ep-warm", instances=1, backlog=9)
    relay = make_multi_relay(env, [cold, warm])
    future = relay.submit("fn-chat", ["ep-cold", "ep-warm"], {"x": 1})
    assert future.record.endpoint_id == "ep-warm"


def test_candidate_list_tie_breaks_in_candidate_order():
    env = Environment()
    a = FakeEndpoint(env, endpoint_id="ep-a", backlog=3)
    b = FakeEndpoint(env, endpoint_id="ep-b", backlog=3)
    relay = make_multi_relay(env, [a, b])
    assert relay.submit("fn-chat", ["ep-b", "ep-a"], {}).record.endpoint_id == "ep-b"
    assert relay.submit("fn-chat", ["ep-a", "ep-b"], {}).record.endpoint_id == "ep-a"


def test_candidate_dispatch_tracks_live_backlog():
    """Each dispatch sees the backlog the previous ones created, so a burst
    spreads across equivalent endpoints instead of piling onto the first."""
    env = Environment()
    a = FakeEndpoint(env, endpoint_id="ep-a", delay=50.0)
    b = FakeEndpoint(env, endpoint_id="ep-b", delay=50.0)
    relay = make_multi_relay(env, [a, b])
    futures = [relay.submit("fn-chat", ["ep-a", "ep-b"], {"x": i}) for i in range(6)]
    env.run(until=10.0)  # past submit+dispatch latencies, within the 50 s work
    assert (a.dispatched, b.dispatched) == (3, 3)
    assert {f.record.endpoint_id for f in futures} == {"ep-a", "ep-b"}


def test_candidate_dispatch_passes_payload_model_to_backlog():
    env = Environment()
    a = FakeEndpoint(env, endpoint_id="ep-a")
    b = FakeEndpoint(env, endpoint_id="ep-b")
    relay = make_multi_relay(env, [a, b])
    relay.submit("fn-chat", ["ep-a", "ep-b"], {"model": "meta/llama"})
    assert a.backlog_queries == ["meta/llama"]
    assert b.backlog_queries == ["meta/llama"]


def test_candidate_list_rejects_empty_and_unknown():
    env = Environment()
    relay, _ = make_relay(env)
    with pytest.raises(NotFoundError):
        relay.submit("fn-chat", [], {})
    with pytest.raises(NotFoundError):
        relay.submit("fn-chat", ["ep-fake", "ep-missing"], {})


def test_single_candidate_list_behaves_like_plain_id():
    env = Environment()
    relay, endpoint = make_relay(env)
    future = relay.submit("fn-chat", ["ep-fake"], {"x": 5})
    env.run(until=future.done)
    assert future.record.endpoint_id == "ep-fake"
    assert relay.get_result(future.task_id) == {"echo": 5}


def test_task_record_timing_properties():
    record = TaskRecord(task_id="t", function_id="f", endpoint_id="e", payload={},
                        submit_time=1.0)
    assert record.queue_time_s is None
    assert record.total_time_s is None
    record.dispatch_time = 3.0
    record.completion_time = 10.0
    assert record.queue_time_s == 2.0
    assert record.total_time_s == 9.0
    assert record.to_dict()["status"] == "pending"
