"""DetSan runtime-sanitizer tests + the hash-seed comparison harness.

Covers: attach/detach restoring the plain ``Environment.step`` (the
zero-overhead-unattached contract), bit-identical results under
sanitization on a real engine scenario, hypothesis-driven detection of
injected past-event schedules and duplicate event keys, obs-layer RNG
attribution (with the dedicated-sampler exemption), and the
``compare_hashseeds`` subprocess harness passing on ``quickstart_config``
while failing on a deliberately ``hash()``-keyed toy.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import DetSan, DetSanError, compare_hashseeds
from repro.sim import Environment

try:
    import numpy  # noqa: F401
    HAS_NUMPY = True
except ImportError:
    HAS_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy")

TESTS_DIR = Path(__file__).resolve().parent


@pytest.fixture(autouse=True)
def _detach_leaked_sanitizers():
    # Env-var-attached sanitizers (REPRO_DETSAN=1) live as long as their
    # Environment; detach any still registered so the class-level draw
    # patching never leaks across tests.
    yield
    from repro.analysis.detsan import _ACTIVE

    for sanitizer in list(_ACTIVE):
        sanitizer.detach()


def drain(env, horizon=50.0):
    deadlines = []
    def ticker(env):
        for _ in range(10):
            yield env.timeout(1.0)
            deadlines.append(env.now)
    env.process(ticker(env))
    env.run()
    return deadlines


# ---------------------------------------------------------------- attach / detach
class TestAttachDetach:
    def test_detach_restores_plain_class_step(self):
        env = Environment(sanitize=True)
        assert env.sanitizer is not None
        assert "step" in env.__dict__  # shadow step while attached
        env.sanitizer.detach()
        assert env.sanitizer is None
        assert "step" not in env.__dict__  # zero overhead: plain class method
        assert env.step.__func__ is Environment.step
        drain(env)  # still fully functional

    def test_plain_environment_is_untouched(self):
        env = Environment()
        assert env.sanitizer is None
        assert "step" not in env.__dict__

    def test_composes_with_profiler_attached_after(self):
        # DetSan attached first, profiler second: the profiler's shadow step
        # replaces the sanitizer's *step* wrapper, but push checking (the
        # past-event / duplicate detection) stays active.
        env = Environment(sanitize=True)

        class NullProfiler:
            def on_event(self, now, event, depth):
                pass

        env.attach_profiler(NullProfiler())
        with pytest.raises(DetSanError):
            env.schedule(env.event(), delay=-1.0)
        env.detach_profiler()
        env.sanitizer.detach()
        assert "step" not in env.__dict__

    def test_env_var_attaches_in_subprocess(self):
        import subprocess

        code = ("from repro.sim import Environment; "
                "env = Environment(); "
                "assert env.sanitizer is not None; "
                "print('attached')")
        src = str(TESTS_DIR.parent / "src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=dict(os.environ, REPRO_DETSAN="1", PYTHONPATH=src),
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "attached" in proc.stdout

    def test_env_var_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_DETSAN", "0")
        assert Environment().sanitizer is None


# ---------------------------------------------------------------- bit-identity
class TestBitIdentity:
    def test_kernel_trace_identical_with_sanitizer(self):
        plain = drain(Environment())
        sanitized_env = Environment(sanitize=True)
        sanitized = drain(sanitized_env)
        assert sanitized == plain
        assert sanitized_env.sanitizer.violations == []

    @needs_numpy
    def test_engine_cell_fingerprint_identical_under_detsan(self, monkeypatch):
        """A real macro-stepped engine scenario, sanitized end to end: the
        sanitizer stays silent and the merged fingerprint is bit-identical."""
        from repro.sweep import ScenarioSpec

        spec = ScenarioSpec(key="detsan/engine", runner="engine",
                            model="Qwen/Qwen2.5-7B-Instruct", num_requests=20,
                            params={"rate": 4.0})
        monkeypatch.delenv("REPRO_DETSAN", raising=False)
        plain = spec.run()["mergeable"].fingerprint()
        monkeypatch.setenv("REPRO_DETSAN", "1")
        sanitized = spec.run()["mergeable"].fingerprint()
        assert sanitized == plain


# ---------------------------------------------------------------- detection
class TestDetection:
    @settings(max_examples=25, deadline=None)
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=50.0,
                                     allow_nan=False), min_size=1, max_size=10),
           bad_delay=st.floats(min_value=-100.0, max_value=-1e-6,
                               allow_nan=False))
    def test_flags_injected_past_event(self, delays, bad_delay):
        env = Environment(sanitize=True)
        for delay in delays:
            env.schedule(env.event(), delay=delay)
        with pytest.raises(DetSanError, match="scheduled in the past"):
            env.schedule(env.event(), delay=bad_delay)
        env.sanitizer.detach()

    @settings(max_examples=25, deadline=None)
    @given(time=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
           priority=st.integers(min_value=0, max_value=2),
           eid=st.integers(min_value=0, max_value=2**31))
    def test_flags_injected_duplicate_key(self, time, priority, eid):
        env = Environment()
        sanitizer = DetSan()
        sanitizer.attach(env)
        env._push(time, priority, eid, env.event())
        with pytest.raises(DetSanError, match="duplicate event key"):
            env._push(time, priority, eid, env.event())
        sanitizer.detach()

    def test_distinct_keys_are_fine(self):
        env = Environment()
        sanitizer = DetSan(strict=False)
        sanitizer.attach(env)
        for eid in range(100):
            env.schedule(env.event(), delay=float(eid % 7))
        assert sanitizer.violations == []
        sanitizer.detach()

    def test_nonstrict_records_instead_of_raising(self):
        env = Environment()
        sanitizer = DetSan(strict=False)
        sanitizer.attach(env)
        env.schedule(env.event(), delay=-1.0)
        assert len(sanitizer.violations) == 1
        assert "scheduled in the past" in sanitizer.violations[0]
        sanitizer.detach()


# ---------------------------------------------------------------- obs RNG draws
@needs_numpy
class TestObsDrawAttribution:
    def obs_draw(self, rng):
        """Execute a draw whose calling frame claims to be in repro/obs/."""
        code = compile("rng.uniform()", os.path.join("x", "repro", "obs",
                                                     "fake.py"), "eval")
        return eval(code, {"rng": rng})

    def test_flags_draw_from_obs_frame(self):
        from repro.common import RandomSource

        env = Environment(sanitize=True)
        rng = RandomSource(1)
        with pytest.raises(DetSanError, match="observe-only"):
            self.obs_draw(rng)
        env.sanitizer.detach()

    def test_sampler_only_stream_is_exempt(self):
        from repro.common import RandomSource

        env = Environment(sanitize=True)
        rng = RandomSource(1)
        rng.sampler_only = True
        self.obs_draw(rng)  # no raise
        assert env.sanitizer.violations == []
        env.sanitizer.detach()

    def test_tracer_sampler_rng_is_exempt_end_to_end(self):
        from repro.common import RandomSource
        from repro.obs import Tracer, TracerConfig

        env = Environment(sanitize=True)
        tracer = Tracer(env, TracerConfig(sample_rate=0.5),
                        rng=RandomSource(3))
        for i in range(20):
            ctx = tracer.begin(f"trace-{i}")
            tracer.finish(ctx)
        assert env.sanitizer.violations == []
        env.sanitizer.detach()

    def test_draws_unpatched_after_detach(self):
        from repro.common import RandomSource
        from repro.common.randomness import RandomSource as RS2

        env = Environment(sanitize=True)
        env.sanitizer.detach()
        assert "wrapper" not in RS2.uniform.__qualname__
        rng = RandomSource(1)
        self.obs_draw(rng)  # no sanitizer active: nothing to flag


# ---------------------------------------------------------------- hash seeds
@needs_numpy
class TestCompareHashseeds:
    def test_quickstart_config_is_hashseed_independent(self):
        report = compare_hashseeds(
            "repro.analysis.detsan:quickstart_fingerprint", seeds=(101, 202))
        assert report.ok, report.to_dict()
        assert len(set(report.fingerprints.values())) == 1

    def test_hash_keyed_toy_scenario_is_caught(self):
        report = compare_hashseeds(
            "detsan_toy:hash_keyed_fingerprint", seeds=(101, 202),
            extra_pythonpath=[str(TESTS_DIR)])
        assert not report.ok
        assert len(set(report.fingerprints.values())) == 2

    def test_rejects_identical_seeds(self):
        with pytest.raises(ValueError):
            compare_hashseeds("detsan_toy:hash_keyed_fingerprint",
                              seeds=(7, 7))
