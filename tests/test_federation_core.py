"""Tests for the federation layer and the FIRSTDeployment assembly."""

import pytest

from repro.common import ConfigurationError, NotFoundError
from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
    calibration,
)
from repro.federation import FirstConfiguredRouter, PriorityRouter, RandomRouter
from repro.serving import InferenceRequest

MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"
MODEL_7B = "Qwen/Qwen2.5-7B-Instruct"


def federated_deployment(sophia_nodes=2, polaris_nodes=2):
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="sophia", kind="small", num_nodes=sophia_nodes, scheduler="pbs",
                models=[ModelDeploymentSpec(MODEL_8B, max_instances=2, max_parallel_tasks=16)],
            ),
            ClusterDeploymentSpec(
                name="polaris", kind="small", num_nodes=polaris_nodes, scheduler="pbs",
                models=[ModelDeploymentSpec(MODEL_8B, max_instances=2, max_parallel_tasks=16),
                        ModelDeploymentSpec(MODEL_7B, max_parallel_tasks=16)],
            ),
        ],
        users=["benchmark@anl.gov"],
        generate_text=False,
    )
    return FIRSTDeployment(config)


# -- registry ------------------------------------------------------------------------

def test_registry_orders_endpoints_by_registration():
    deployment = federated_deployment()
    entries = deployment.registry.endpoints_for_model(MODEL_8B)
    assert [e.cluster for e in entries] == ["sophia", "polaris"]
    # 7B is only hosted on polaris.
    assert [e.cluster for e in deployment.registry.endpoints_for_model(MODEL_7B)] == ["polaris"]
    assert deployment.registry.endpoints_for_model("unhosted-model") == []
    assert set(deployment.registry.hosted_models()) == {MODEL_8B, MODEL_7B}
    with pytest.raises(NotFoundError):
        deployment.registry.get("ep-missing")


# -- routing policies -------------------------------------------------------------------

def test_priority_router_prefers_active_instance():
    deployment = federated_deployment()
    # Warm the model on polaris (the *second* priority endpoint).
    deployment.warm_up(MODEL_8B, endpoint_id="ep-polaris")
    router = PriorityRouter(deployment.registry)
    proc = deployment.env.process(router.select(MODEL_8B))
    endpoint = deployment.env.run(until=proc)
    assert endpoint.endpoint_id == "ep-polaris"
    assert router.decisions[-1].rule == "active-instance"


def test_priority_router_falls_back_to_free_nodes():
    deployment = federated_deployment()
    # Nothing is warm; sophia (priority 0) has free nodes, so rule 2 picks it.
    router = PriorityRouter(deployment.registry)
    proc = deployment.env.process(router.select(MODEL_8B))
    endpoint = deployment.env.run(until=proc)
    assert endpoint.endpoint_id == "ep-sophia"
    assert router.decisions[-1].rule == "free-nodes"


def test_priority_router_falls_back_to_first_configured_when_everything_busy():
    deployment = federated_deployment()
    # Fill every node on both clusters with background allocations.
    for cluster in deployment.clusters.values():
        for node in cluster.nodes:
            node.allocate("background-job")
    router = PriorityRouter(deployment.registry)
    proc = deployment.env.process(router.select(MODEL_8B))
    endpoint = deployment.env.run(until=proc)
    assert endpoint.endpoint_id == "ep-sophia"
    assert router.decisions[-1].rule == "first-configured"


def test_priority_router_unknown_model():
    deployment = federated_deployment()
    router = PriorityRouter(deployment.registry)
    with pytest.raises(NotFoundError):
        deployment.env.process(router.select("model-nobody-hosts"))
        deployment.run_for(1.0)


def test_random_and_first_configured_routers():
    deployment = federated_deployment()
    rand = RandomRouter(deployment.registry, seed=3)
    first = FirstConfiguredRouter(deployment.registry)
    chosen = set()
    for _ in range(20):
        proc = deployment.env.process(rand.select(MODEL_8B))
        endpoint = deployment.env.run(until=proc)
        chosen.add(endpoint.endpoint_id)
    assert chosen == {"ep-sophia", "ep-polaris"}
    proc = deployment.env.process(first.select(MODEL_8B))
    endpoint = deployment.env.run(until=proc)
    assert endpoint.endpoint_id == "ep-sophia"


def test_federated_requests_route_to_warm_cluster_end_to_end():
    deployment = federated_deployment()
    deployment.warm_up(MODEL_8B, endpoint_id="ep-polaris")
    client = deployment.client("benchmark@anl.gov")
    ev = client.submit(InferenceRequest("fed-0", MODEL_8B, prompt_tokens=100,
                                        max_output_tokens=50))
    deployment.env.run(until=ev)
    result = ev.value
    assert result.success
    assert result.cluster == "polaris"


# -- deployment assembly ------------------------------------------------------------------

def test_deployment_requires_clusters():
    with pytest.raises(ConfigurationError):
        FIRSTDeployment(DeploymentConfig(clusters=[]))


def test_deployment_unknown_cluster_kind():
    with pytest.raises(ConfigurationError):
        FIRSTDeployment(DeploymentConfig(clusters=[ClusterDeploymentSpec(name="x", kind="weird")]))


def test_quickstart_deployment_serves_a_request():
    deployment = FIRSTDeployment.quickstart()
    client = deployment.client("researcher@anl.gov")
    response = client.chat_completion(
        MODEL_7B, [{"role": "user", "content": "What GPUs does the cluster have?"}],
        max_tokens=32,
    )
    assert response["usage"]["completion_tokens"] == 32
    assert len(response["choices"][0]["message"]["content"]) > 0


def test_sophia_benchmark_deployment_shape():
    deployment = FIRSTDeployment.sophia_benchmark(max_instances=2, num_nodes=4)
    assert "sophia" in deployment.clusters
    assert deployment.clusters["sophia"].total_nodes == 4
    pool_models = list(deployment.endpoints["ep-sophia"].pools)
    assert pool_models == ["meta-llama/Llama-3.3-70B-Instruct"]


def test_federated_constructor_two_clusters():
    deployment = FIRSTDeployment.federated(sophia_nodes=2, polaris_nodes=2)
    assert set(deployment.clusters) == {"sophia", "polaris"}
    assert len(deployment.registry.entries) == 2


def test_prewarm_unknown_model_rejected():
    deployment = federated_deployment()
    with pytest.raises(ConfigurationError):
        deployment.prewarm("model-nobody-hosts")


def test_client_for_unregistered_user_registers_on_demand():
    deployment = federated_deployment()
    client = deployment.client("newuser@university.edu")
    assert client.username == "newuser@university.edu"
    assert "newuser@university.edu" in deployment.auth.registered_users


def test_calibration_describe_and_defaults():
    notes = calibration.describe()
    assert any("Fig. 4" in v for v in notes.values())
    perf = calibration.default_perf_config()
    assert perf.alpha == pytest.approx(4500.0)
    relay = calibration.default_relay_config()
    assert relay.routing_rate_max == pytest.approx(66.0)
    assert calibration.default_gateway_config().async_worker_slots > 100
