"""Federation v2 placement-plane tests.

Covers the shared :class:`TopologyView` (signal correctness, event-driven
refresh), the view-backed routing policies under churn (deregistration
mid-flight, a model left with zero endpoints after a drain), the SLO
router's shed/recover hysteresis (no flapping), the cross-cluster
:class:`FederationScalingPolicy`, per-tenant capacity reservations and the
bounded routing-decision log.
"""

import pytest

from repro.autoscale import FederationScalingPolicy, MetricsSample
from repro.common import NotFoundError
from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.federation import FirstConfiguredRouter
from repro.gateway import default_middleware_factories
from repro.placement import (
    LeastLoadedRouter,
    PoolSignal,
    PriorityRouter,
    ReservationMiddleware,
    SLORouter,
    TopologyView,
)
from repro.serving import InferenceRequest

MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"


def two_cluster_deployment(slots=16, max_instances=2, gateway=None):
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="c1", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(MODEL_8B, max_instances=max_instances,
                                            max_parallel_tasks=slots)],
            ),
            ClusterDeploymentSpec(
                name="c2", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(MODEL_8B, max_instances=max_instances,
                                            max_parallel_tasks=slots)],
            ),
        ],
        users=["researcher@anl.gov"],
        generate_text=False,
    )
    if gateway is not None:
        config.gateway = gateway
    return FIRSTDeployment(config)


def run_select(deployment, router, model=MODEL_8B, tenant=None):
    proc = deployment.env.process(router.select(model, tenant=tenant))
    return deployment.env.run(until=proc)


# -- TopologyView ----------------------------------------------------------------------

def test_pool_signal_matches_model_status():
    deployment = two_cluster_deployment()
    deployment.warm_up(MODEL_8B, endpoint_id="ep-c2")
    view = deployment.topology
    for endpoint_id in ("ep-c1", "ep-c2"):
        status = deployment.endpoints[endpoint_id].model_status(MODEL_8B)[0]
        signal = view.pool_signal(endpoint_id, MODEL_8B)
        assert signal is not None
        assert signal.cluster == status.cluster
        assert signal.ready_instances == status.running_instances
        assert signal.starting_instances == status.starting_instances
        assert signal.draining_instances == status.draining_instances
        assert signal.queued_jobs == status.queued_jobs
        assert signal.waiting_tasks == status.waiting_tasks
        assert signal.state == status.state
    assert view.pool_signal("ep-c2", MODEL_8B).active
    assert not view.pool_signal("ep-c1", MODEL_8B).active


def test_view_refreshes_on_events_not_per_read():
    deployment = two_cluster_deployment()
    deployment.warm_up(MODEL_8B, endpoint_id="ep-c1")
    view = deployment.topology

    view.pool_signal("ep-c1", MODEL_8B)
    rebuilds = view.rebuilds
    # Reads without intervening events are cache hits, not rebuilds.
    for _ in range(10):
        view.pool_signal("ep-c1", MODEL_8B)
    assert view.rebuilds == rebuilds

    # A request flowing through the pool dirties the signal exactly there.
    client = deployment.client("researcher@anl.gov")
    client.chat_completion(MODEL_8B, [{"role": "user", "content": "x"}], max_tokens=8)
    view.pool_signal("ep-c1", MODEL_8B)
    assert view.rebuilds > rebuilds


def test_cluster_signal_tracks_free_nodes_and_gpu_seconds():
    deployment = two_cluster_deployment()
    view = deployment.topology
    before = view.cluster_signal("ep-c1")
    assert before.free_nodes == 2
    assert before.gpu_seconds == 0.0
    deployment.warm_up(MODEL_8B, endpoint_id="ep-c1")
    after = view.cluster_signal("ep-c1")
    assert after.free_nodes == 1
    assert after.gpu_seconds > 0.0


# -- routing policies over the view ------------------------------------------------------

def test_priority_router_over_view_finds_hot_secondary():
    deployment = two_cluster_deployment()
    deployment.warm_up(MODEL_8B, endpoint_id="ep-c2")
    router = PriorityRouter(deployment.topology)
    endpoint = run_select(deployment, router)
    assert endpoint.endpoint_id == "ep-c2"
    assert router.decisions[-1].rule == "active-instance"


def test_least_loaded_router_spreads_away_from_backlog():
    deployment = two_cluster_deployment()
    deployment.warm_up(MODEL_8B, endpoint_id="ep-c1")
    deployment.warm_up(MODEL_8B, endpoint_id="ep-c2")
    pool = deployment.endpoints["ep-c1"].pools[MODEL_8B]
    pool.waiting_tasks += 40
    pool._touch()
    router = LeastLoadedRouter(deployment.topology)
    endpoint = run_select(deployment, router)
    assert endpoint.endpoint_id == "ep-c2"
    assert router.decisions[-1].rule == "least-loaded"
    pool.waiting_tasks -= 40
    pool._touch()


def test_least_loaded_router_cold_fleet_uses_cluster_signal():
    deployment = two_cluster_deployment()
    router = LeastLoadedRouter(deployment.topology)
    endpoint = run_select(deployment, router)
    assert endpoint.endpoint_id == "ep-c1"
    assert router.decisions[-1].rule == "free-nodes"


# -- churn -----------------------------------------------------------------------------

def test_deregistration_mid_flight_reroutes_and_completes():
    deployment = two_cluster_deployment()
    deployment.warm_up(MODEL_8B, endpoint_id="ep-c1")
    client = deployment.client("researcher@anl.gov")

    # A long request is in flight against c1 when c1 leaves the federation.
    in_flight = client.submit(InferenceRequest(
        "churn-0", MODEL_8B, prompt_tokens=128, max_output_tokens=256))
    deployment.run_for(5.0)
    deployment.registry.deregister("ep-c1")

    # The view detached the endpoint's pools...
    assert deployment.topology.pool_signal("ep-c1", MODEL_8B) is None
    # ...new traffic routes to the survivor...
    response = client.chat_completion(
        MODEL_8B, [{"role": "user", "content": "after churn"}], max_tokens=8)
    assert response["usage"]["completion_tokens"] == 8
    # ...and the in-flight request still completes on the departed endpoint.
    result = deployment.env.run(until=in_flight)
    assert result.success
    assert result.cluster == "c1"


def test_model_on_zero_endpoints_after_drain_is_typed_not_found():
    deployment = two_cluster_deployment()
    deployment.warm_up(MODEL_8B, endpoint_id="ep-c1")

    # Drain both pools to zero and take both endpoints out of the federation.
    for name in ("ep-c1", "ep-c2"):
        pool = deployment.endpoints[name].pools[MODEL_8B]
        pool.replicas.scale_to(0, reason="maintenance")
    deployment.run_for(30.0)
    deployment.registry.deregister("ep-c1")
    deployment.registry.deregister("ep-c2")

    # select() raises synchronously, before its first yield.
    router = deployment.gateway.router
    with pytest.raises(NotFoundError):
        next(router.select(MODEL_8B))

    envelope_client = deployment.client("researcher@anl.gov", raise_on_error=False)
    response = envelope_client.chat_completion(
        MODEL_8B, [{"role": "user", "content": "anyone home?"}], max_tokens=8)
    assert response["error"]["type"] == "not_found_error"


# -- SLO routing -----------------------------------------------------------------------

def push_latencies(deployment, value, n=64, endpoint="ep-c1"):
    for _ in range(n):
        deployment.gateway.metrics.request_completed(MODEL_8B, 8, value,
                                                     endpoint=endpoint)


def test_slo_router_sheds_and_recovers_with_hysteresis():
    deployment = two_cluster_deployment()
    deployment.warm_up(MODEL_8B, endpoint_id="ep-c1")
    deployment.warm_up(MODEL_8B, endpoint_id="ep-c2")
    router = SLORouter(
        deployment.topology, default_slo_s=10.0,
        breach_hold_s=30.0, recover_ratio=0.6, recover_hold_s=60.0,
    )
    tenant = "researcher@anl.gov"

    # Healthy primary: stays on c1.
    push_latencies(deployment, 5.0)
    assert run_select(deployment, router, tenant=tenant).endpoint_id == "ep-c1"
    assert router.decisions[-1].rule == "slo-primary"

    # p50 breaches the SLO: not shed until the breach holds.
    push_latencies(deployment, 25.0, n=256)
    deployment.run_for(6.0)
    assert run_select(deployment, router, tenant=tenant).endpoint_id == "ep-c1"
    deployment.run_for(31.0)
    assert run_select(deployment, router, tenant=tenant).endpoint_id == "ep-c2"
    assert router.decisions[-1].rule == "slo-shed"

    # Partial improvement (above recover_ratio * slo): still shedding.
    push_latencies(deployment, 8.0, n=256)
    deployment.run_for(61.0)
    assert run_select(deployment, router, tenant=tenant).endpoint_id == "ep-c2"

    # Full recovery sustained past the hold: back to the primary.
    push_latencies(deployment, 3.0, n=256)
    deployment.run_for(6.0)
    run_select(deployment, router, tenant=tenant)  # starts the recover hold
    deployment.run_for(61.0)
    assert run_select(deployment, router, tenant=tenant).endpoint_id == "ep-c1"
    assert router.decisions[-1].rule == "slo-primary"

    # Exactly one shed and one recover: the holds prevented flapping.
    transitions = router.shed_transitions(MODEL_8B, tenant)
    assert [shedding for _t, shedding in transitions] == [True, False]


def test_slo_router_per_tenant_slos():
    deployment = two_cluster_deployment()
    deployment.warm_up(MODEL_8B, endpoint_id="ep-c1")
    router = SLORouter(deployment.topology, default_slo_s=10.0,
                       tenant_slos={"vip@anl.gov": 2.0})
    assert router.slo_for("vip@anl.gov") == 2.0
    assert router.slo_for("other@anl.gov") == 10.0
    assert router.slo_for(None) == 10.0


# -- cross-cluster scaling --------------------------------------------------------------

class _Entry:
    def __init__(self, endpoint_id):
        self.endpoint_id = endpoint_id


class _StubView:
    """Minimal TopologyView stand-in for policy unit tests."""

    def __init__(self, signals):
        self.signals = signals

    def candidates(self, model):
        return [(_Entry(sig.endpoint_id), sig) for sig in self.signals]


def sample(time, ready=2, waiting=0, in_flight=0, slots=8, total=None):
    return MetricsSample(
        time=time, model=MODEL_8B,
        ready_instances=ready, starting_instances=0, draining_instances=0,
        waiting_tasks=waiting, in_flight_tasks=in_flight,
        slots_per_instance=slots,
        arrival_rate_rps=0.0, completion_rate_rps=0.0,
        kv_utilization=0.0, cold_start_estimate_s=60.0,
        provisioned_instances=total if total is not None else ready,
    )


def sibling_signal(endpoint_id, ready=1, waiting=0, slots=8):
    return PoolSignal(
        model=MODEL_8B, endpoint_id=endpoint_id, cluster=endpoint_id,
        ready_instances=ready, starting_instances=0, draining_instances=0,
        queued_jobs=0, waiting_tasks=waiting, in_flight_tasks=0,
        slots_per_instance=slots, max_instances=2, cold_start_estimate_s=60.0,
    )


def test_federation_policy_prewarms_on_sustained_sibling_overload():
    """Recipient path: a drowning sibling makes this cluster boot a replica
    before any traffic is shed here (the cold start hides behind the
    sibling's backlog)."""
    policy = FederationScalingPolicy(queue_per_instance=8, imbalance_ratio=2.0,
                                     imbalance_hold_s=45.0)
    policy.bind_topology(_StubView([sibling_signal("other", ready=1, waiting=40)]),
                         endpoint_id="me", cluster="here", model=MODEL_8B)

    # Fully booked here (no spare ready slots for the overflow).
    def booked(t):
        return sample(t, ready=1, waiting=0, in_flight=8)

    assert policy.decide(booked(0.0)).target == 1
    assert policy.decide(booked(30.0)).target == 1
    decision = policy.decide(booked(50.0))
    assert decision.target == 2
    assert "shifting" in decision.reason
    assert policy.shifts_in == 1


def test_federation_policy_gives_back_when_fleet_calms():
    """Donor path: a fully idle cluster returns shifted capacity once no
    sibling is hot enough to shed this way (spill clusters drain to zero)."""
    policy = FederationScalingPolicy(queue_per_instance=8, imbalance_ratio=2.0,
                                     scale_down_hold_s=60.0)
    policy.bind_topology(_StubView([sibling_signal("other", ready=1, waiting=0)]),
                         endpoint_id="me", cluster="here", model=MODEL_8B)

    def idle(t):
        return sample(t, ready=1, waiting=0, in_flight=0)

    assert policy.decide(idle(0.0)).target == 1
    decision = policy.decide(idle(61.0))
    assert decision.target == 0
    assert "returning" in decision.reason
    assert policy.shifts_out == 1


def test_federation_policy_keeps_capacity_while_sibling_still_hot():
    """An idle spill cluster does not give back while the sibling it covers
    is still above the give-back pressure threshold."""
    policy = FederationScalingPolicy(queue_per_instance=8, imbalance_ratio=2.0,
                                     scale_down_hold_s=60.0)
    policy.bind_topology(_StubView([sibling_signal("other", ready=1, waiting=20)]),
                         endpoint_id="me", cluster="here", model=MODEL_8B)

    def idle(t):
        return sample(t, ready=1, waiting=0, in_flight=0)

    assert policy.decide(idle(0.0)).target == 1
    assert policy.decide(idle(61.0)).target == 1
    assert policy.decide(idle(300.0)).target == 1
    assert policy.shifts_out == 0


def test_federation_policy_saturation_wins_and_unbound_degrades():
    policy = FederationScalingPolicy(queue_per_instance=8)
    # Local saturation scales up exactly like the queue-depth heuristic.
    hot = sample(0.0, ready=1, waiting=9)
    assert policy.decide(hot).target == 2
    # Unbound (single-cluster) policy still drains a quiet pool after the hold.
    def quiet(t):
        return sample(t, ready=2, waiting=0, in_flight=0)

    policy2 = FederationScalingPolicy(queue_per_instance=8, scale_down_hold_s=60.0)
    assert policy2.decide(quiet(0.0)).target == 2
    assert policy2.decide(quiet(61.0)).target == 1


def test_federated_policy_registered_in_autoscale_registry():
    from repro.autoscale import AutoscaleConfig, make_policy

    policy = make_policy(AutoscaleConfig(policy="federated", imbalance_ratio=3.0,
                                         imbalance_hold_s=20.0))
    assert isinstance(policy, FederationScalingPolicy)
    assert policy.imbalance_ratio == 3.0
    assert policy.imbalance_hold_s == 20.0


def test_deployment_binds_federated_policy_to_topology():
    from repro.autoscale import AutoscaleConfig

    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="c1", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(
                    MODEL_8B, max_instances=2, max_parallel_tasks=16,
                    autoscale=AutoscaleConfig(policy="federated", min_instances=0),
                )],
            ),
        ],
        users=["researcher@anl.gov"],
        generate_text=False,
    )
    deployment = FIRSTDeployment(config)
    policy = deployment.endpoints["ep-c1"].pools[MODEL_8B].replicas.policy
    assert isinstance(policy, FederationScalingPolicy)
    assert policy.view is deployment.topology
    assert policy.endpoint_id == "ep-c1"
    # Leaving the federation unbinds the policy: a dark endpoint must not
    # keep pre-warming replicas for siblings it can no longer serve.
    deployment.registry.deregister("ep-c1")
    assert policy.view is None


# -- per-tenant capacity reservations -----------------------------------------------------

def test_view_reservation_admission_arithmetic():
    deployment = two_cluster_deployment(slots=2, max_instances=1)
    view = deployment.topology
    # Fleet capacity: 2 endpoints x 1 instance x 2 slots = 4.
    assert view.fleet_slot_capacity(MODEL_8B) == 4
    view.reserve("vip", MODEL_8B, 3)

    # vip always fits inside its reservation.
    assert all(view.try_admit(MODEL_8B, "vip") for _ in range(3))
    # Reserved-but-unused headroom is now 0, one slot is best-effort.
    assert view.try_admit(MODEL_8B, "vip")          # overflow, best effort
    assert not view.try_admit(MODEL_8B, "besteffort")
    for _ in range(4):
        view.release_admission(MODEL_8B, "vip")

    # With vip idle, best-effort traffic may only use the unreserved slot.
    assert view.try_admit(MODEL_8B, "besteffort")
    assert not view.try_admit(MODEL_8B, "besteffort")
    assert view.rejections == 2


def test_reservation_middleware_rejects_best_effort_with_typed_envelope():
    factories = default_middleware_factories()
    factories.insert(2, ReservationMiddleware.factory())
    deployment = two_cluster_deployment(slots=4, max_instances=1)
    deployment.config.gateway.middleware_factories = factories
    # Rebuild the pipeline with the reservation stage (config was consumed
    # at construction time).
    gw = deployment.gateway
    from repro.gateway.pipeline import GatewayPipeline
    gw.pipeline = GatewayPipeline([f(gw) for f in factories])

    deployment.warm_up(MODEL_8B, endpoint_id="ep-c1")
    # Reserve the whole fleet for the VIP tenant.
    deployment.topology.reserve("vip@anl.gov", MODEL_8B,
                                deployment.topology.fleet_slot_capacity(MODEL_8B))

    vip = deployment.client("vip@anl.gov")
    response = vip.chat_completion(
        MODEL_8B, [{"role": "user", "content": "priority lane"}], max_tokens=8)
    assert response["usage"]["completion_tokens"] == 8

    besteffort = deployment.client("researcher@anl.gov", raise_on_error=False)
    rejected = besteffort.chat_completion(
        MODEL_8B, [{"role": "user", "content": "standby"}], max_tokens=8)
    assert rejected["error"]["type"] == "overloaded_error"
    assert rejected["error"]["code"] == "no_capacity"
    assert "reservation" in deployment.gateway.pipeline.stage_names()
    # Admissions were released on completion: nothing leaks.
    assert deployment.topology.admitted(MODEL_8B, "vip@anl.gov") == 0


def test_unreserved_model_is_untouched_by_reservation_stage():
    factories = default_middleware_factories()
    factories.insert(2, ReservationMiddleware.factory())
    deployment = two_cluster_deployment(slots=4, max_instances=1)
    gw = deployment.gateway
    from repro.gateway.pipeline import GatewayPipeline
    gw.pipeline = GatewayPipeline([f(gw) for f in factories])
    client = deployment.client("researcher@anl.gov")
    response = client.chat_completion(
        MODEL_8B, [{"role": "user", "content": "no reservations here"}], max_tokens=8)
    assert response["usage"]["completion_tokens"] == 8
    assert deployment.topology.admissions == 0


# -- bounded decision log -----------------------------------------------------------------

def test_decision_log_is_bounded_but_counters_cumulative():
    deployment = two_cluster_deployment()
    router = FirstConfiguredRouter(deployment.registry, max_decisions=5)
    for _ in range(12):
        run_select(deployment, router)
    assert len(router.decisions) == 5
    summary = router.summary()
    assert summary["total"] == 12
    assert summary["recent"] == 5
    assert summary["by_endpoint"] == {"ep-c1": 12}
    assert summary["by_rule"] == {"first-configured": 12}


def test_dashboard_surfaces_routing_summary():
    deployment = two_cluster_deployment()
    deployment.warm_up(MODEL_8B, endpoint_id="ep-c1")
    client = deployment.client("researcher@anl.gov")
    client.chat_completion(MODEL_8B, [{"role": "user", "content": "x"}], max_tokens=8)
    routing = client.dashboard()["routing"]
    assert routing["policy"] == "priority"
    assert routing["total"] >= 1
    assert sum(routing["by_endpoint"].values()) == routing["total"]


def test_topology_view_over_registry_compat_shim():
    deployment = two_cluster_deployment()
    router = PriorityRouter(deployment.registry)  # legacy call-site signature
    assert isinstance(router.view, TopologyView)
    assert router.registry is deployment.registry
