"""Unit tests for shared utilities (errors, ids, randomness)."""

import numpy as np
import pytest

from repro.common import (
    AuthenticationError,
    CapacityError,
    IdGenerator,
    RandomSource,
    RateLimitError,
    ReproError,
    ValidationError,
    short_uuid,
)


def test_error_hierarchy_and_status_codes():
    assert issubclass(AuthenticationError, ReproError)
    assert AuthenticationError.status_code == 401
    assert ValidationError.status_code == 422
    assert RateLimitError.status_code == 429
    assert CapacityError.status_code == 503


def test_id_generator_is_deterministic_and_prefixed():
    gen = IdGenerator()
    assert gen.next("task") == "task-000000"
    assert gen.next("task") == "task-000001"
    assert gen.next("job") == "job-000000"
    assert gen.peek_count("task") == 2
    assert gen.peek_count("missing") == 0


def test_short_uuid_length_and_uniqueness():
    a, b = short_uuid(), short_uuid()
    assert len(a) == 12
    assert a != b


def test_random_source_reproducible():
    a = RandomSource(seed=123)
    b = RandomSource(seed=123)
    assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]


def test_random_source_spawn_independent_but_deterministic():
    a = RandomSource(seed=7).spawn()
    b = RandomSource(seed=7).spawn()
    assert [a.exponential(1.0) for _ in range(3)] == [b.exponential(1.0) for _ in range(3)]


def test_lognormal_targets_arithmetic_mean():
    rs = RandomSource(seed=0)
    draws = [rs.lognormal(200.0, 0.5) for _ in range(20000)]
    assert abs(np.mean(draws) - 200.0) / 200.0 < 0.05


def test_exponential_mean_validation():
    rs = RandomSource(seed=0)
    with pytest.raises(ValueError):
        rs.exponential(0.0)
    with pytest.raises(ValueError):
        rs.lognormal(-1.0, 0.5)


def test_integers_inclusive_bounds():
    rs = RandomSource(seed=0)
    draws = {rs.integers(1, 3) for _ in range(200)}
    assert draws == {1, 2, 3}


def test_jitter_stays_positive_and_close():
    rs = RandomSource(seed=0)
    for _ in range(100):
        v = rs.jitter(10.0, fraction=0.1)
        assert 9.0 <= v <= 11.0


def test_choice_returns_member():
    rs = RandomSource(seed=0)
    options = ["a", "b", "c"]
    for _ in range(20):
        assert rs.choice(options) in options
