"""Unit tests for Store, FilterStore and PriorityStore."""

import pytest

from repro.sim import Environment, FilterStore, PriorityItem, PriorityStore, Store


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env, store):
        for i in range(5):
            yield store.put(i)
            yield env.timeout(1.0)

    def consumer(env, store):
        for _ in range(5):
            item = yield store.get()
            received.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_item_available():
    env = Environment()
    store = Store(env)
    log = []

    def consumer(env, store):
        item = yield store.get()
        log.append((item, env.now))

    def producer(env, store):
        yield env.timeout(7.0)
        yield store.put("late")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert log == [("late", 7.0)]


def test_store_bounded_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env, store):
        yield store.put("a")
        log.append(("a", env.now))
        yield store.put("b")
        log.append(("b", env.now))

    def consumer(env, store):
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert log == [("a", 0.0), ("b", 5.0)]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_filter_store_matches_predicate():
    env = Environment()
    store = FilterStore(env)
    got = []

    def producer(env, store):
        for item in ["red", "green", "blue"]:
            yield store.put(item)

    def consumer(env, store):
        item = yield store.get(lambda x: x.startswith("b"))
        got.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert got == ["blue"]
    assert list(store.items) == ["red", "green"]


def test_filter_store_waits_for_matching_item():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(env, store):
        item = yield store.get(lambda x: x == 42)
        got.append((item, env.now))

    def producer(env, store):
        yield env.timeout(1.0)
        yield store.put(1)
        yield env.timeout(1.0)
        yield store.put(42)

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert got == [(42, 2.0)]


def test_priority_store_orders_items():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def producer(env, store):
        yield store.put(PriorityItem(5, "low"))
        yield store.put(PriorityItem(1, "high"))
        yield store.put(PriorityItem(3, "mid"))

    def consumer(env, store):
        yield env.timeout(1.0)
        for _ in range(3):
            item = yield store.get()
            got.append(item.item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert got == ["high", "mid", "low"]


def test_priority_item_comparison_and_repr():
    a = PriorityItem(1, "a")
    b = PriorityItem(2, "b")
    assert a < b
    assert a == PriorityItem(1, "a")
    assert "PriorityItem" in repr(a)


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put("x")
    store.put("y")
    env.run()
    assert len(store) == 2
