"""Pluggable event-queue tests: contract, property equivalence, golden traces.

The kernel's correctness claim for `repro.sim.queues` is that every backend
pops the exact same ``(time, priority, eid)`` total order, which makes
simulation results bit-identical regardless of ``Environment(queue=...)``.
These tests pin that claim three ways:

* unit tests of the :class:`CalendarEventQueue` /
  :class:`PackedCalendarEventQueue` mechanics (overflow year rolls,
  occupancy resize, tie ordering, lazy re-sort invalidation);
* a hypothesis property test driving every backend with identical random
  schedules — same-time ties, far-future outliers and mid-run insertions;
* golden traces: a mixed kernel workload and a small engine scenario run
  under all backends must produce identical traces (and the kernel trace
  must match a committed literal, so the ordering semantics themselves
  cannot drift);
* compiled-stepper on/off equivalence for the packed overflow columns.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    AdaptiveEventQueue,
    CalendarEventQueue,
    Environment,
    HeapEventQueue,
    Interrupt,
    PackedCalendarEventQueue,
    Resource,
    make_event_queue,
    use_compiled_stepper,
)

QUEUES = ("heap", "calendar", "packed")


# ---------------------------------------------------------------------------
# contract unit tests
# ---------------------------------------------------------------------------

def test_make_event_queue_kinds():
    assert isinstance(make_event_queue("heap"), HeapEventQueue)
    assert isinstance(make_event_queue("calendar"), CalendarEventQueue)
    assert isinstance(make_event_queue("packed"), PackedCalendarEventQueue)
    auto = make_event_queue("auto")
    assert isinstance(auto, AdaptiveEventQueue)
    assert isinstance(auto.backend, HeapEventQueue)  # starts as the heap
    with pytest.raises(ValueError):
        make_event_queue("fibonacci")
    with pytest.raises(ValueError):
        Environment(queue="fibonacci")


@pytest.mark.parametrize("kind", QUEUES)
def test_empty_queue_pop_raises_and_peek_returns_none(kind):
    q = make_event_queue(kind)
    assert len(q) == 0
    assert q.peek() is None
    with pytest.raises(IndexError):
        q.pop()


@pytest.mark.parametrize("kind", QUEUES)
def test_same_time_ties_break_on_priority_then_eid(kind):
    q = make_event_queue(kind)
    q.push(1.0, 1, 3, "n-late")
    q.push(1.0, 0, 4, "u-late")
    q.push(1.0, 1, 1, "n-early")
    q.push(1.0, 0, 2, "u-early")
    labels = [q.pop()[3] for _ in range(4)]
    assert labels == ["u-early", "u-late", "n-early", "n-late"]


def test_calendar_far_future_goes_to_overflow_and_comes_back():
    q = CalendarEventQueue()
    q.push(1e9, 1, 0, "far")
    q.push(0.5, 1, 1, "near")
    assert len(q._overflow) == 1  # the outlier waits outside the calendar
    assert q.pop()[3] == "near"
    assert q.peek()[3] == "far"  # year rolled forward to reach it
    assert q.pop()[3] == "far"
    assert len(q) == 0


def test_calendar_resizes_on_occupancy():
    q = CalendarEventQueue()
    start_days = q._num_days
    for eid in range(10 * start_days):
        q.push(eid * 0.1, 1, eid, eid)
    assert q._num_days > start_days  # grew with occupancy
    prev_time = -1.0
    while len(q):
        time, _, _, _ = q.pop()
        assert time >= prev_time
        prev_time = time
    assert q._num_days == CalendarEventQueue.MIN_DAYS  # shrank back when drained


def test_calendar_extreme_magnitude_times_do_not_hang():
    """At 1e18 the whole year (16 days x width 1.0) is below one ulp of the
    event time, so the year roll must force a minimal strict advance instead
    of spinning forever (regression: _advance_year infinite loop)."""
    q = CalendarEventQueue()
    q.push(1e18, 1, 0, "huge")
    q.push(1e18, 0, 1, "huge-urgent")
    assert q.peek()[3] == "huge-urgent"
    assert [q.pop()[3] for _ in range(2)] == ["huge-urgent", "huge"]

    env = Environment(queue="calendar")
    fired = []

    def proc(env):
        yield env.timeout_at(1e18)
        fired.append(env.now)

    env.process(proc(env))
    env.run()
    assert fired == [1e18]


def test_calendar_infinite_times_are_ordered_last():
    """inf has no nextafter successor, so the year can never advance past it:
    inf ties are served straight from the sorted overflow list, and later
    finite pushes still pop before them."""
    q = CalendarEventQueue()
    q.push(float("inf"), 1, 0, "inf-a")
    q.push(float("inf"), 1, 1, "inf-b")
    assert q.peek()[3] == "inf-a"
    q.push(3.0, 1, 2, "finite")
    # A higher-priority inf tie arriving *after* the peek must still outrank
    # the older NORMAL-priority inf entries.
    q.push(float("inf"), 0, 3, "inf-urgent")
    labels = [q.pop()[3] for _ in range(4)]
    assert labels == ["finite", "inf-urgent", "inf-a", "inf-b"]
    with pytest.raises(IndexError):
        q.pop()


def test_calendar_rebuild_with_only_infinite_times():
    """A growth rebuild while every pending entry is inf must not anchor the
    year at inf (finite pushes afterwards would overflow day arithmetic)."""
    q = CalendarEventQueue()
    for eid in range(3 * CalendarEventQueue.MIN_DAYS):  # trigger growth rebuilds
        q.push(float("inf"), 1, eid, eid)
    q.push(1.5, 1, 999, "finite")
    assert q.pop()[3] == "finite"
    drained = [q.pop()[2] for _ in range(3 * CalendarEventQueue.MIN_DAYS)]
    assert drained == sorted(drained)  # inf ties pop in eid order


def test_calendar_push_before_rebuilt_year_start():
    """After a rebuild anchors the year at the next pending event, a push
    that fires *earlier* (but after `now`) must still pop first."""
    q = CalendarEventQueue()
    for eid in range(64):  # force a growth rebuild anchored at t=100
        q.push(100.0 + eid, 1, eid, eid)
    assert q._year_start >= 99.0
    q.push(5.0, 1, 999, "early")
    assert q.pop()[3] == "early"


# ---------------------------------------------------------------------------
# packed calendar mechanics
# ---------------------------------------------------------------------------

def test_packed_far_future_goes_to_overflow_and_comes_back():
    q = PackedCalendarEventQueue()
    q.push(1e9, 1, 0, "far")
    q.push(0.5, 1, 1, "near")
    assert len(q._ovf_times) == 1  # the outlier waits in the packed columns
    assert q.pop()[3] == "near"
    assert q.peek()[3] == "far"  # year rolled forward to reach it
    assert q.pop()[3] == "far"
    assert len(q) == 0


def test_packed_resizes_on_occupancy():
    q = PackedCalendarEventQueue()
    start_days = q._num_days
    for eid in range(10 * PackedCalendarEventQueue.GROWTH * start_days):
        q.push(eid * 0.1, 1, eid, eid)
    assert q._num_days > start_days  # grew with occupancy
    prev = (-1.0, -1, -1)
    while len(q):
        time, priority, eid, _ = q.pop()
        assert (time, priority, eid) > prev
        prev = (time, priority, eid)
    assert q._num_days == PackedCalendarEventQueue.MIN_DAYS  # shrank when drained


def test_packed_extreme_magnitude_times_do_not_hang():
    """Same ulp-scale year-roll regression as the tuple calendar."""
    q = PackedCalendarEventQueue()
    q.push(1e18, 1, 0, "huge")
    q.push(1e18, 0, 1, "huge-urgent")
    assert q.peek()[3] == "huge-urgent"
    assert [q.pop()[3] for _ in range(2)] == ["huge-urgent", "huge"]

    env = Environment(queue="packed")
    fired = []

    def proc(env):
        yield env.timeout_at(1e18)
        fired.append(env.now)

    env.process(proc(env))
    env.run()
    assert fired == [1e18]


def test_packed_infinite_times_are_ordered_last():
    q = PackedCalendarEventQueue()
    q.push(float("inf"), 1, 0, "inf-a")
    q.push(float("inf"), 1, 1, "inf-b")
    assert q.peek()[3] == "inf-a"
    q.push(3.0, 1, 2, "finite")
    q.push(float("inf"), 0, 3, "inf-urgent")
    labels = [q.pop()[3] for _ in range(4)]
    assert labels == ["finite", "inf-urgent", "inf-a", "inf-b"]
    with pytest.raises(IndexError):
        q.pop()


def test_packed_rebuild_with_only_infinite_times():
    n = 2 * PackedCalendarEventQueue.GROWTH * PackedCalendarEventQueue.MIN_DAYS
    q = PackedCalendarEventQueue()
    for eid in range(n):  # trigger growth rebuilds
        q.push(float("inf"), 1, eid, eid)
    q.push(1.5, 1, 999, "finite")
    assert q.pop()[3] == "finite"
    drained = [q.pop()[2] for _ in range(n)]
    assert drained == sorted(drained)  # inf ties pop in eid order


def test_packed_push_before_rebuilt_year_start():
    q = PackedCalendarEventQueue()
    n = PackedCalendarEventQueue.GROWTH * PackedCalendarEventQueue.MIN_DAYS + 16
    for eid in range(n):  # force a growth rebuild anchored at t=100
        q.push(100.0 + eid, 1, eid, eid)
    assert q._year_start >= 99.0
    q.push(5.0, 1, 999, "early")
    assert q.pop()[3] == "early"


def test_packed_push_into_sorted_day_invalidates_lazy_order():
    """A day bucket is bulk-sorted the first time it is served; a later push
    into that same day must force a re-sort, or the new entry would pop in
    append order instead of time order."""
    q = PackedCalendarEventQueue(day_width=100.0)  # everything in day 0
    for eid, t in enumerate([4.0, 1.0, 3.0]):
        q.push(t, 1, eid, eid)
    assert q.pop()[0] == 1.0  # serving day 0 sorted it
    q.push(2.0, 1, 10, "mid")  # lands in the already-sorted serving day
    assert [q.pop()[0] for _ in range(3)] == [2.0, 3.0, 4.0]


def test_packed_rejects_out_of_range_priority_and_eid():
    q = PackedCalendarEventQueue()
    for priority, eid in [(128, 0), (-1, 0), (1, 1 << 56), (1, -1)]:
        with pytest.raises(ValueError):
            q.push(1.0, priority, eid, None)
    assert len(q) == 0


def test_adaptive_queue_migrates_once_at_threshold():
    q = AdaptiveEventQueue(threshold=32)
    reference = []
    for eid in range(64):
        entry = (eid * 0.37 % 7.0, 1, eid, eid)
        q.push(*entry)
        heapq.heappush(reference, entry)
    assert isinstance(q.backend, PackedCalendarEventQueue)  # migrated
    popped = [q.pop() for _ in range(len(q))]
    assert popped == [heapq.heappop(reference) for _ in range(len(reference))]


def test_estimate_width_touches_only_the_head_sample():
    """The resize estimator must be O(sample) regardless of queue size: it
    reads the head off the leading buckets instead of flattening all N
    entries (regression: _estimate_width re-sorted the full pending set)."""

    class CountingList(list):
        touched = 0

        def __iter__(self):
            for item in super().__iter__():
                CountingList.touched += 1
                yield item

    for cls in (CalendarEventQueue, PackedCalendarEventQueue):
        q = cls()
        for eid in range(20_000):
            q.push(eid * 0.01, 1, eid, eid)
        q._buckets = [CountingList(bucket) for bucket in q._buckets]
        CountingList.touched = 0
        q._estimate_width(sample=64)
        # The tuple calendar stops exactly at the sample; the packed variant
        # may finish consuming the bucket the sample boundary lands in.
        slack = max(len(bucket) for bucket in q._buckets)
        assert CountingList.touched <= 64 + slack, cls.__name__


def test_compiled_stepper_matches_pure_python():
    """The cffi insert kernel (when buildable) must place overflow entries
    exactly where the pure-Python bisect does."""
    if not use_compiled_stepper(True):
        pytest.skip("cffi or C toolchain unavailable")
    try:
        compiled = PackedCalendarEventQueue()
        use_compiled_stepper(False)
        pure = PackedCalendarEventQueue()
        now = 0.0
        for eid in range(400):
            # Overflow-heavy: far-future pushes interleaved with near-term
            # ones, including exact ties on the far-future time.
            t = now + (1e6 if eid % 3 else 0.5) + (eid % 7) * 0.125
            for q in (compiled, pure):
                q.push(t, eid % 2, eid, eid)
            if eid % 5 == 0:
                a, b = compiled.pop(), pure.pop()
                assert a == b
                now = a[0]
        while len(pure):
            assert compiled.pop() == pure.pop()
    finally:
        use_compiled_stepper(False)


# ---------------------------------------------------------------------------
# hypothesis: identical pop sequences under identical schedules
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(st.data())
def test_queues_pop_identical_sequences(data):
    heap = HeapEventQueue()
    others = [CalendarEventQueue(), PackedCalendarEventQueue()]
    now = 0.0
    eid = 0
    size = 0
    n_ops = data.draw(st.integers(min_value=1, max_value=120), label="n_ops")
    for _ in range(n_ops):
        do_pop = size > 0 and data.draw(st.booleans(), label="pop?")
        if do_pop:
            a = heap.pop()
            for q in others:
                assert q.pop() == a
            now = a[0]  # the simulated clock only moves forward
            size -= 1
        else:
            # Mid-run insertion at or after `now` — ties (dt=0), clustered
            # near-term deltas, and far-future outliers.
            dt = data.draw(
                st.one_of(
                    st.sampled_from([0.0, 0.0, 0.1, 0.25, 1.0, 3.7]),
                    st.floats(min_value=0.0, max_value=1e7,
                              allow_nan=False, allow_infinity=False),
                    # Extreme magnitudes: year spans below one ulp of the
                    # event time (the _advance_year hang regression regime).
                    st.sampled_from([1e12, 1e16, 1e18, float("inf")]),
                ),
                label="dt",
            )
            priority = data.draw(st.sampled_from([0, 1]), label="priority")
            heap.push(now + dt, priority, eid, eid)
            for q in others:
                q.push(now + dt, priority, eid, eid)
            eid += 1
            size += 1
    while len(heap):
        a = heap.pop()
        for q in others:
            assert q.pop() == a
    for q in others:
        assert len(q) == 0


# ---------------------------------------------------------------------------
# golden traces
# ---------------------------------------------------------------------------

def _run_mixed_workload(queue):
    """A deterministic kernel workload touching ties, interrupts, absolute
    timeouts, resource contention and a far-future timer."""
    env = Environment(queue=queue)
    trace = []
    resource = Resource(env, capacity=1)

    def worker(name, delays):
        for delay in delays:
            yield env.timeout(delay)
            trace.append((env.now, name))

    def absolute(name, times):
        for time in times:
            yield env.timeout_at(time)
            trace.append((env.now, name))

    def victim():
        try:
            yield env.timeout(50.0)
        except Interrupt as interrupt:
            trace.append((env.now, f"interrupted:{interrupt.cause}"))
        yield env.timeout(0.25)
        trace.append((env.now, "victim-resumed"))

    def interrupter(proc):
        yield env.timeout(3.3)
        proc.interrupt("halt")

    def contender(name, start, hold):
        yield env.timeout(start)
        request = resource.request()
        yield request
        trace.append((env.now, f"{name}-acquired"))
        yield env.timeout(hold)
        resource.release(request)
        trace.append((env.now, f"{name}-released"))

    def far_future():
        yield env.timeout(1e6)
        trace.append((env.now, "far-future"))

    env.process(worker("tick-a", [1.0, 1.0, 1.0]))
    env.process(worker("tick-b", [1.0, 1.0, 1.0]))  # ties with tick-a
    env.process(absolute("abs", [0.5, 2.0, 2.5]))
    v = env.process(victim())
    env.process(interrupter(v))
    env.process(contender("held", 0.2, 4.0))
    env.process(contender("blocked", 0.4, 1.0))
    env.process(far_future())
    env.run()
    return trace


#: Committed expectation for the first events of the mixed workload under
#: *any* backend — pins tie-breaking and interrupt ordering semantics.
GOLDEN_PREFIX = [
    (0.2, "held-acquired"),
    (0.5, "abs"),
    (1.0, "tick-a"),
    (1.0, "tick-b"),
    # abs's timeout_at(2.0) was scheduled at t=0.5, before the ticks'
    # second timeouts (scheduled at t=1.0), so insertion order puts it first.
    (2.0, "abs"),
    (2.0, "tick-a"),
    (2.0, "tick-b"),
    (2.5, "abs"),
    (3.0, "tick-a"),
    (3.0, "tick-b"),
    (3.3, "interrupted:halt"),
    (3.55, "victim-resumed"),
    (4.2, "held-released"),
    (4.2, "blocked-acquired"),
    (5.2, "blocked-released"),
    (1e6, "far-future"),
]


def test_golden_trace_identical_across_queues():
    traces = {queue: _run_mixed_workload(queue) for queue in (*QUEUES, "auto")}
    for queue, trace in traces.items():
        assert trace == GOLDEN_PREFIX, queue


def test_engine_scenario_identical_across_queues():
    """A small fig3-style engine run is bit-identical under both backends."""
    from repro.cluster import A100_40GB, dgx_a100_spec
    from repro.serving import (
        ContinuousBatchingEngine,
        EngineConfig,
        PerformanceModel,
        default_catalog,
    )
    from repro.workload import PoissonArrival, ShareGPTWorkload

    spec = default_catalog().get("Llama-3.3-70B")
    requests = ShareGPTWorkload().generate(spec.name, num_requests=60)
    offsets = PoissonArrival(rate=2.0, seed=11).offsets(60)

    def run(queue):
        env = Environment(queue=queue)
        perf = PerformanceModel(spec, 8, A100_40GB, node_spec=dgx_a100_spec())
        engine = ContinuousBatchingEngine(env, perf, EngineConfig(generate_text=False))
        events = []

        def driver(env):
            last = 0.0
            for request, offset in zip(requests, offsets):
                if offset > last:
                    yield env.timeout(offset - last)
                    last = offset
                events.append(engine.submit(request))
            yield env.all_of(events)

        env.run(until=env.process(driver(env)))
        return [
            (r.request_id, r.success, r.output_tokens, r.prefill_start_time,
             r.first_token_time, r.completion_time)
            for r in (ev.value for ev in events)
        ], sorted(engine.stats.snapshot().items())

    reference = run("heap")
    for queue in QUEUES[1:]:
        assert run(queue) == reference, queue
