"""Unit tests for GPU/Node/Cluster models."""

import pytest

from repro.cluster import (
    A100_40GB,
    A100_80GB,
    Cluster,
    GPU,
    GPUSpec,
    Interconnect,
    Node,
    NodeSpec,
    dgx_a100_spec,
    polaris_like,
    small_test_cluster,
    sophia_like,
)


def test_gpu_spec_validation():
    with pytest.raises(ValueError):
        GPUSpec("bad", memory_gb=0.0)
    with pytest.raises(ValueError):
        GPUSpec("bad", memory_gb=40.0, compute_factor=0.0)


def test_gpu_reserve_and_free():
    gpu = GPU(index=0, spec=A100_40GB)
    assert gpu.free_gb == 40.0
    gpu.reserve(16.0, owner="llama-8b")
    assert gpu.in_use
    assert gpu.free_gb == 24.0
    with pytest.raises(RuntimeError):
        gpu.reserve(8.0, owner="other")
    gpu.free()
    assert not gpu.in_use
    assert gpu.free_gb == 40.0


def test_gpu_reserve_exceeding_memory_rejected():
    gpu = GPU(index=0, spec=A100_40GB)
    with pytest.raises(ValueError):
        gpu.reserve(100.0, owner="llama-405b")


def test_node_spec_and_factory():
    spec = dgx_a100_spec()
    assert spec.gpus_per_node == 8
    assert spec.gpu_spec is A100_40GB
    with pytest.raises(ValueError):
        NodeSpec("bad", A100_40GB, gpus_per_node=0)


def test_node_whole_allocation():
    node = Node("n0", dgx_a100_spec())
    node.allocate("job-1")
    assert node.allocated
    with pytest.raises(RuntimeError):
        node.allocate("job-2")
    node.deallocate()
    assert not node.allocated


def test_node_allocation_fails_when_down():
    node = Node("n0", dgx_a100_spec())
    node.fail()
    with pytest.raises(RuntimeError):
        node.allocate("job-1")
    node.recover()
    node.allocate("job-1")


def test_node_gpu_colocation():
    """A 70B model on 6 GPUs plus 8B and 7B models on the remaining 2 (paper §3.2.2)."""
    node = Node("n0", dgx_a100_spec())
    big = node.reserve_gpus(6, vram_per_gpu_gb=24.0, owner="llama-70b")
    small1 = node.reserve_gpus(1, vram_per_gpu_gb=16.0, owner="llama-8b")
    small2 = node.reserve_gpus(1, vram_per_gpu_gb=14.0, owner="mistral-7b")
    assert len(big) == 6 and len(small1) == 1 and len(small2) == 1
    assert len(node.free_gpus) == 0
    with pytest.raises(RuntimeError):
        node.reserve_gpus(1, vram_per_gpu_gb=8.0, owner="another")
    assert node.release_gpus("llama-70b") == 6
    assert len(node.free_gpus) == 6


def test_node_deallocate_releases_gpus():
    node = Node("n0", dgx_a100_spec())
    node.allocate("job-1")
    node.reserve_gpus(4, vram_per_gpu_gb=20.0, owner="model-x")
    node.deallocate()
    assert len(node.free_gpus) == 8


def test_node_vram_accounting():
    node = Node("n0", dgx_a100_spec())
    assert node.total_vram_gb == 320.0
    node.reserve_gpus(2, vram_per_gpu_gb=30.0, owner="m")
    assert node.free_vram_gb == 320.0 - 60.0


def test_cluster_requires_nodes():
    with pytest.raises(ValueError):
        Cluster("empty", [])


def test_cluster_free_and_allocated_views():
    cluster = small_test_cluster(num_nodes=3)
    assert cluster.total_nodes == 3
    cluster.nodes[0].allocate("job-1")
    cluster.nodes[2].fail()
    assert len(cluster.free_nodes) == 1
    assert len(cluster.allocated_nodes) == 1
    assert len(cluster.down_nodes) == 1
    status = cluster.status(queued_jobs=2, running_jobs=1)
    assert status.free_nodes == 1
    assert status.queued_jobs == 2
    assert status.to_dict()["cluster"] == "testcluster"


def test_cluster_find_node():
    cluster = small_test_cluster(num_nodes=2)
    node = cluster.find_node("testcluster-001")
    assert node.name == "testcluster-001"
    with pytest.raises(KeyError):
        cluster.find_node("missing")


def test_interconnect_coordination_overhead():
    fabric = Interconnect()
    assert fabric.coordination_overhead_s(1) == 0.0
    assert fabric.coordination_overhead_s(4) > fabric.coordination_overhead_s(2)


def test_sophia_like_composition():
    cluster = sophia_like()
    assert cluster.total_nodes == 24
    specs = [n.spec.gpu_spec for n in cluster.nodes]
    assert specs.count(A100_80GB) == 2
    assert specs.count(A100_40GB) == 22
    # Total VRAM across the system should match the paper's 8320 GB figure.
    total_vram = sum(n.total_vram_gb for n in cluster.nodes)
    assert total_vram == pytest.approx(8320.0)


def test_polaris_like_composition():
    cluster = polaris_like(num_nodes=10)
    assert cluster.total_nodes == 10
    assert cluster.nodes[0].spec.gpus_per_node == 4


def test_sophia_like_validation():
    with pytest.raises(ValueError):
        sophia_like(num_nodes=1, num_80gb_nodes=2)
