"""Tests for the tracing layer itself: span recording, retention policy,
sampling determinism and the kernel profiler's no-op guarantee."""

import pytest

from repro.common import RandomSource
from repro.obs import KernelProfiler, Tracer, TracerConfig, span_tree
from repro.sim import Environment


# -- span recording -------------------------------------------------------------

def test_span_recording_and_tree():
    env = Environment()
    tracer = Tracer(env)
    ctx = tracer.begin("t1")
    root = ctx.start_span("root", layer="gateway")
    child = ctx.start_span("child", parent=root, layer="relay")
    ctx.event(child, "hop", t=1.5, endpoint="ep")
    ctx.end_span(child, t=2.0)
    ctx.end_span(root, t=3.0)
    tracer.finish(ctx)

    data = ctx.to_dict()
    assert data["trace_id"] == "t1"
    assert data["finished_at"] == 0.0  # env never advanced
    roots = span_tree(data["spans"])
    assert len(roots) == 1
    assert roots[0]["name"] == "root"
    assert [c["name"] for c in roots[0]["children"]] == ["child"]
    assert roots[0]["children"][0]["events"] == [
        {"time": 1.5, "name": "hop", "attrs": {"endpoint": "ep"}}]
    assert ctx.find_spans("child")[0].duration_s == 2.0


def test_span_cap_counts_dropped_spans():
    env = Environment()
    tracer = Tracer(env, TracerConfig(max_spans_per_trace=2))
    ctx = tracer.begin("t1")
    spans = [ctx.start_span(f"s{i}") for i in range(5)]
    # Overflow spans still behave like spans (no caller branching needed).
    ctx.end_span(spans[-1])
    assert len(ctx.spans) == 2
    assert ctx.dropped_spans == 3


# -- retention ------------------------------------------------------------------

def _run_traces(tracer, durations):
    env = tracer.env
    for i, duration in enumerate(durations):
        ctx = tracer.begin(f"t{i}")
        env.run(until=env.now + duration)
        tracer.finish(ctx)


def test_head_ring_evicts_fifo():
    env = Environment()
    tracer = Tracer(env, TracerConfig(sample_rate=1.0, slowest_k=0, max_traces=3))
    _run_traces(tracer, [1.0] * 5)
    assert tracer.trace_ids() == ["t2", "t3", "t4"]
    assert tracer.get("t0") is None
    assert tracer.stats()["kept_head"] == 5  # decisions, not survivors


def test_slowest_reservoir_survives_zero_sampling():
    env = Environment()
    tracer = Tracer(env, TracerConfig(sample_rate=0.0, slowest_k=2))
    _run_traces(tracer, [1.0, 5.0, 0.5, 3.0, 2.0])
    # Only the two slowest are retained, regardless of head sampling.
    assert tracer.trace_ids() == ["t1", "t3"]
    assert [tid for _, tid in tracer.slowest()] == ["t1", "t3"]
    assert not tracer.get("t1").sampled


def test_slow_reservoir_protects_traces_from_head_eviction():
    env = Environment()
    tracer = Tracer(env, TracerConfig(sample_rate=1.0, slowest_k=1, max_traces=2))
    _run_traces(tracer, [9.0, 1.0, 1.0, 1.0])
    # t0 fell out of the head ring but is pinned by the slowest-K reservoir.
    assert tracer.get("t0") is not None
    assert tracer.trace_ids() == ["t0", "t2", "t3"]


# -- sampling determinism -------------------------------------------------------

def test_hash_sampling_is_deterministic_and_order_independent():
    env = Environment()
    ids = [f"req-{i}" for i in range(400)]
    a = Tracer(env, TracerConfig(sample_rate=0.3), seed=7)
    b = Tracer(env, TracerConfig(sample_rate=0.3), seed=7)
    decisions_a = [a._head_decision(tid) for tid in ids]
    decisions_b = [b._head_decision(tid) for tid in reversed(ids)]
    assert decisions_a == list(reversed(decisions_b))
    assert 0.15 < sum(decisions_a) / len(ids) < 0.45
    # A different seed flips some decisions.
    c = Tracer(env, TracerConfig(sample_rate=0.3), seed=8)
    assert [c._head_decision(tid) for tid in ids] != decisions_a


def test_rng_sampling_is_deterministic_for_a_fixed_seed():
    env = Environment()
    ids = [f"req-{i}" for i in range(200)]
    a = Tracer(env, TracerConfig(sample_rate=0.5), rng=RandomSource(42))
    b = Tracer(env, TracerConfig(sample_rate=0.5), rng=RandomSource(42))
    assert [a._head_decision(t) for t in ids] == [b._head_decision(t) for t in ids]


def test_sampling_extremes_skip_the_draw():
    env = Environment()
    always = Tracer(env, TracerConfig(sample_rate=1.0))
    never = Tracer(env, TracerConfig(sample_rate=0.0))
    assert always._head_decision("x") is True
    assert never._head_decision("x") is False


# -- kernel profiler ------------------------------------------------------------

def _tick(env, n):
    def proc():
        for _ in range(n):
            yield env.timeout(1.0)
    env.process(proc())
    env.run()


def test_profiler_attach_detach_restores_plain_step():
    env = Environment()
    assert "step" not in env.__dict__  # unprofiled: plain class method
    profiler = KernelProfiler()
    env.attach_profiler(profiler)
    assert env.profiler is profiler
    _tick(env, 10)
    env.detach_profiler()
    assert env.profiler is None
    assert "step" not in env.__dict__
    assert profiler.events_total > 0
    assert profiler.sim_s == pytest.approx(10.0)
    snap = profiler.snapshot()
    assert snap["events_total"] == profiler.events_total
    assert "Timeout" in snap["events_by_type"]
    # Further simulation is no longer observed.
    before = profiler.events_total
    _tick(env, 5)
    assert profiler.events_total == before


def test_profiler_is_observe_only():
    def signature(profiled):
        env = Environment()
        if profiled:
            env.attach_profiler(KernelProfiler(sample_every=1))
        times = []

        def proc(delay):
            yield env.timeout(delay)
            times.append(env.now)
            yield env.timeout(delay * 0.5)
            times.append(env.now)

        for d in (0.3, 1.7, 0.9):
            env.process(proc(d))
        env.run()
        return times

    assert signature(False) == signature(True)


def test_profiler_decimates_queue_depth_samples():
    profiler = KernelProfiler(sample_every=1, max_samples=8)
    for i in range(100):
        profiler.on_event(float(i), object(), queue_depth=i)
    assert len(profiler.queue_depth_samples) < 8
    profiler.on_window(4, 2.0)
    profiler.on_window(2, 6.0)
    snap = profiler.snapshot()
    assert snap["windows"] == 2
    assert snap["window_iterations"] == 6
    assert snap["max_window_width_s"] == 6.0
    assert snap["mean_window_width_s"] == pytest.approx(4.0)
