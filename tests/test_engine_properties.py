"""Property-based and invariant tests for the continuous-batching engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import A100_40GB, dgx_a100_spec
from repro.serving import (
    ContinuousBatchingEngine,
    EngineConfig,
    InferenceRequest,
    PerformanceModel,
    default_catalog,
)
from repro.sim import Environment

CATALOG = default_catalog()
SPEC_8B = CATALOG.get("Llama-3.1-8B")


def make_engine(env, max_num_seqs=256):
    perf = PerformanceModel(SPEC_8B, 4, A100_40GB, node_spec=dgx_a100_spec())
    return ContinuousBatchingEngine(
        env, perf, EngineConfig(max_num_seqs=max_num_seqs, generate_text=False)
    )


@settings(max_examples=25, deadline=None)
@given(
    lengths=st.lists(
        st.tuples(st.integers(min_value=1, max_value=600),
                  st.integers(min_value=1, max_value=300)),
        min_size=1,
        max_size=60,
    )
)
def test_property_every_request_completes_with_exact_token_counts(lengths):
    env = Environment()
    engine = make_engine(env)
    events = []
    for i, (prompt, output) in enumerate(lengths):
        events.append(
            engine.submit(InferenceRequest(f"p-{i}", SPEC_8B.name, prompt_tokens=prompt,
                                           max_output_tokens=output))
        )
    env.run(until=env.all_of(events))
    results = [ev.value for ev in events]
    assert all(r.success for r in results)
    assert [r.output_tokens for r in results] == [o for _, o in lengths]
    assert [r.prompt_tokens for r in results] == [p for p, _ in lengths]
    # Engine accounting matches the workload exactly.
    assert engine.stats.completed == len(lengths)
    assert engine.stats.output_tokens == sum(o for _, o in lengths)
    # All KV blocks were returned to the pool.
    assert engine.kv.used_blocks == 0
    assert engine.is_idle


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=40),
    output=st.integers(min_value=10, max_value=200),
    max_seqs=st.integers(min_value=1, max_value=16),
)
def test_property_bounded_concurrency_never_exceeded(n, output, max_seqs):
    env = Environment()
    engine = make_engine(env, max_num_seqs=max_seqs)
    events = [
        engine.submit(InferenceRequest(f"b-{i}", SPEC_8B.name, prompt_tokens=64,
                                       max_output_tokens=output))
        for i in range(n)
    ]
    env.run(until=env.all_of(events))
    assert engine.stats.peak_batch_size <= max_seqs
    assert engine.stats.completed == n


@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=1, max_value=30))
def test_property_completion_times_monotone_in_request_count(n):
    """Adding requests never makes the whole batch finish earlier."""

    def duration_for(count):
        env = Environment()
        engine = make_engine(env)
        events = [
            engine.submit(InferenceRequest(f"m-{i}", SPEC_8B.name, prompt_tokens=100,
                                           max_output_tokens=100))
            for i in range(count)
        ]
        env.run(until=env.all_of(events))
        return env.now

    shorter = duration_for(n)
    longer = duration_for(n + 5)
    assert longer >= shorter


def test_latency_increases_with_batch_size_but_throughput_improves():
    """Per-request latency grows with concurrency while aggregate throughput rises."""

    def run(count):
        env = Environment()
        engine = make_engine(env)
        events = [
            engine.submit(InferenceRequest(f"t-{i}", SPEC_8B.name, prompt_tokens=120,
                                           max_output_tokens=120))
            for i in range(count)
        ]
        env.run(until=env.all_of(events))
        latencies = [ev.value.engine_latency_s for ev in events]
        return sum(latencies) / len(latencies), (count * 120) / env.now

    lat_small, thr_small = run(4)
    lat_big, thr_big = run(64)
    assert lat_big > lat_small
    assert thr_big > 2 * thr_small


def test_first_token_time_precedes_completion_and_follows_enqueue():
    env = Environment()
    engine = make_engine(env)
    events = [
        engine.submit(InferenceRequest(f"f-{i}", SPEC_8B.name, prompt_tokens=200,
                                       max_output_tokens=50))
        for i in range(10)
    ]
    env.run(until=env.all_of(events))
    for ev in events:
        result = ev.value
        assert result.engine_enqueue_time <= result.first_token_time <= result.completion_time
        assert result.time_to_first_token_s >= 0.0
        assert result.engine_latency_s > 0.0


def test_interleaved_submission_keeps_engine_utilised():
    """Requests arriving while others are running join the same batch."""
    env = Environment()
    engine = make_engine(env)
    results = []

    def submit_later(env, delay, rid):
        yield env.timeout(delay)
        ev = engine.submit(InferenceRequest(rid, SPEC_8B.name, prompt_tokens=100,
                                            max_output_tokens=150))
        result = yield ev
        results.append(result)

    procs = [env.process(submit_later(env, 0.2 * i, f"late-{i}")) for i in range(20)]
    env.run(until=env.all_of(procs))
    assert len(results) == 20
    assert engine.stats.peak_batch_size > 5
