"""Tail-based trace sampling: shape predicates, retention ring, stats."""

from repro.obs import Tracer, TracerConfig, TraceShape
from repro.sim import Environment


def _finish_trace(tracer, trace_id, *, error=False, clusters=("local",),
                  spans=1, duration=0.0):
    ctx = tracer.begin(trace_id)
    parent = None
    for index in range(spans):
        span = ctx.start_span(
            f"op{index}", parent=parent, layer="gateway" if index == 0 else "relay",
            attrs={"cluster": clusters[index % len(clusters)]})
        parent = parent or span
    if error:
        span.status = "error"
    if duration:  # let simulated time pass inside the trace

        def wait(env):
            yield env.timeout(duration)

        tracer.env.process(wait(tracer.env))
        tracer.env.run()
    for span in ctx.spans:
        ctx.end_span(span)
    return ctx, tracer.finish(ctx)


def test_shape_summarises_spans_errors_layers_and_hops():
    env = Environment()
    tracer = Tracer(env, TracerConfig(sample_rate=1.0))
    ctx, _ = _finish_trace(tracer, "t0", error=True,
                           clusters=("sophia", "polaris"), spans=4)
    shape = TraceShape.from_context(ctx)
    assert shape.trace_id == "t0"
    assert shape.span_count == 4
    assert shape.error_spans == 1
    assert shape.layers == ("gateway", "relay")
    assert shape.clusters == ("polaris", "sophia")
    assert shape.cross_cluster_hops == 1


def test_tail_predicate_keeps_errors_despite_zero_head_rate():
    env = Environment()
    tracer = Tracer(env, TracerConfig(
        sample_rate=0.0, slowest_k=0,
        tail_predicate=lambda shape: shape.error_spans > 0))
    kept = []
    for index in range(8):
        ctx, retained = _finish_trace(tracer, f"t{index}", error=index % 3 == 0)
        assert ctx.recording  # tail tier forces span recording
        if retained:
            kept.append(ctx.trace_id)
    assert kept == ["t0", "t3", "t6"]
    assert tracer.tail_ids() == kept
    assert tracer.stats()["kept_tail"] == 3
    assert sorted(tracer.trace_ids()) == kept


def test_tail_predicate_sees_cross_cluster_hops():
    env = Environment()
    tracer = Tracer(env, TracerConfig(
        sample_rate=0.0, slowest_k=0,
        tail_predicate=lambda shape: shape.cross_cluster_hops >= 1))
    _, single = _finish_trace(tracer, "local", clusters=("sophia",), spans=2)
    _, multi = _finish_trace(tracer, "federated",
                             clusters=("sophia", "polaris"), spans=2)
    assert not single and multi
    assert tracer.tail_ids() == ["federated"]


def test_tail_ring_evicts_fifo_at_capacity():
    env = Environment()
    tracer = Tracer(env, TracerConfig(
        sample_rate=0.0, slowest_k=0, max_tail_traces=2,
        tail_predicate=lambda shape: True))
    for index in range(5):
        _finish_trace(tracer, f"t{index}")
    assert tracer.tail_ids() == ["t3", "t4"]
    assert tracer.get("t0") is None
    assert tracer.get("t4") is not None
    assert tracer.stats()["kept_tail"] == 5
    assert tracer.stats()["retained"] == 2


def test_tail_and_slowest_tiers_protect_each_others_traces():
    env = Environment()
    tracer = Tracer(env, TracerConfig(
        sample_rate=0.0, slowest_k=1, max_tail_traces=1,
        tail_predicate=lambda shape: shape.error_spans > 0))
    _finish_trace(tracer, "slow", duration=10.0)
    _finish_trace(tracer, "bad", error=True)
    # "bad" (duration 0) is not among the slowest-1 but the tail ring holds
    # it; "slow" stays via the reservoir.
    assert tracer.get("slow") is not None
    assert tracer.get("bad") is not None
    _finish_trace(tracer, "bad2", error=True)
    # tail ring capacity 1: "bad" evicted from the ring and dropped (it is
    # in no other tier), "slow" untouched.
    assert tracer.tail_ids() == ["bad2"]
    assert tracer.get("bad") is None
    assert tracer.get("slow") is not None


def test_no_tail_predicate_keeps_recording_decision_unchanged():
    env = Environment()
    tracer = Tracer(env, TracerConfig(sample_rate=0.0, slowest_k=0))
    ctx = tracer.begin("t0")
    assert not ctx.recording
    stats = tracer.stats()
    assert stats["kept_tail"] == 0
