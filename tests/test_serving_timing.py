"""Tests for the serving performance model, including calibration sanity checks."""

import pytest

from repro.cluster import A100_40GB, dgx_a100_spec
from repro.serving import PerfModelConfig, PerformanceModel, default_catalog


@pytest.fixture(scope="module")
def catalog():
    return default_catalog()


def perf_for(catalog, name, tp=None, num_nodes=1):
    spec = catalog.get(name)
    return PerformanceModel(
        model=spec,
        num_gpus=tp or spec.default_tp,
        gpu_spec=A100_40GB,
        node_spec=dgx_a100_spec(),
        num_nodes=num_nodes,
    )


def test_70b_low_batch_per_sequence_speed_matches_paper(catalog):
    """Fig. 3: a single ShareGPT request (≈182 output tokens) completes in ≈3 s
    against the direct vLLM server at 1 req/s, i.e. ≈60-70 tok/s per sequence."""
    perf = perf_for(catalog, "Llama-3.3-70B")
    per_seq = perf.per_sequence_decode_tok_s(1)
    assert 55.0 <= per_seq <= 80.0


def test_70b_saturated_throughput_matches_paper(catalog):
    """Fig. 3/4: saturated aggregate throughput for 70B on 8xA100 is ~1400-1800 tok/s."""
    perf = perf_for(catalog, "Llama-3.3-70B")
    assert 1400.0 <= perf.aggregate_decode_tok_s(96) <= 1900.0


def test_8b_saturated_throughput_matches_paper(catalog):
    """Fig. 5: Llama 3.1 8B (TP=4) reaches ≈3300 tok/s through FIRST."""
    perf = perf_for(catalog, "Llama-3.1-8B")
    assert 2800.0 <= perf.aggregate_decode_tok_s(96) <= 3800.0


def test_throughput_monotonically_increases_with_batch(catalog):
    perf = perf_for(catalog, "Llama-3.3-70B")
    rates = [perf.aggregate_decode_tok_s(b) for b in (1, 4, 16, 64, 256)]
    assert all(a < b for a, b in zip(rates, rates[1:]))
    assert rates[-1] < perf.decode_ceiling_tok_s


def test_per_sequence_speed_decreases_with_batch(catalog):
    perf = perf_for(catalog, "Llama-3.3-70B")
    assert perf.per_sequence_decode_tok_s(1) > perf.per_sequence_decode_tok_s(64)


def test_smaller_model_is_faster(catalog):
    small = perf_for(catalog, "Llama-3.1-8B", tp=4)
    big = perf_for(catalog, "Llama-3.3-70B", tp=8)
    assert small.decode_ceiling_tok_s > big.decode_ceiling_tok_s


def test_more_gpus_increase_throughput(catalog):
    tp4 = perf_for(catalog, "Llama-3.3-70B", tp=4)
    tp8 = perf_for(catalog, "Llama-3.3-70B", tp=8)
    assert tp8.decode_ceiling_tok_s > tp4.decode_ceiling_tok_s


def test_decode_step_time_and_aggregate_consistent(catalog):
    perf = perf_for(catalog, "Llama-3.3-70B")
    for b in (1, 8, 64):
        step = perf.decode_step_time_s(b)
        assert step * perf.aggregate_decode_tok_s(b) == pytest.approx(b)


def test_prefill_much_faster_than_decode(catalog):
    perf = perf_for(catalog, "Llama-3.3-70B")
    assert perf.prefill_tok_s > 3 * perf.decode_ceiling_tok_s
    assert perf.prefill_time_s(2200) < 1.0


def test_load_time_scales_with_model_size(catalog):
    """§4.3: an 8B model loads quickly; a 405B model takes far longer."""
    small = perf_for(catalog, "Llama-3.1-8B")
    big = perf_for(catalog, "Llama-3.1-405B", tp=16, num_nodes=2)
    assert small.load_time_s() < big.load_time_s()
    assert big.load_time_s() > 100.0
    # 70B cold start is around a minute on local SSD.
    mid = perf_for(catalog, "Llama-3.3-70B")
    assert 40.0 <= mid.load_time_s() <= 120.0


def test_load_time_includes_coordination_overhead(catalog):
    perf = perf_for(catalog, "Llama-3.3-70B")
    assert perf.load_time_s(coordination_overhead_s=30.0) == pytest.approx(
        perf.load_time_s() + 30.0
    )


def test_kv_capacity_positive_and_model_dependent(catalog):
    big = perf_for(catalog, "Llama-3.3-70B")
    small = perf_for(catalog, "Llama-3.1-8B")
    assert big.kv_capacity_tokens() > 0
    assert small.fits()
    # The 8B model on 4 GPUs has far more KV headroom per token than 70B on 8.
    assert small.kv_capacity_tokens() > 0


def test_model_that_does_not_fit_reports_zero_capacity(catalog):
    spec = catalog.get("Llama-3.1-405B")
    perf = PerformanceModel(spec, num_gpus=8, gpu_spec=A100_40GB)
    assert perf.kv_capacity_tokens() == 0
    assert not perf.fits()


def test_backend_factor_scales_throughput(catalog):
    spec = catalog.get("Llama-3.3-70B")
    base = PerformanceModel(spec, 8, A100_40GB, PerfModelConfig())
    fast = PerformanceModel(spec, 8, A100_40GB, PerfModelConfig(backend_factor=1.6))
    assert fast.decode_ceiling_tok_s == pytest.approx(1.6 * base.decode_ceiling_tok_s)


def test_invalid_gpu_count_rejected(catalog):
    spec = catalog.get("Llama-3.3-70B")
    with pytest.raises(ValueError):
        PerformanceModel(spec, 0, A100_40GB)
