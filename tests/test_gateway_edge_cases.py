"""Additional edge-case coverage for gateway components and the FaaS client."""

import pytest

from repro.common import NotFoundError, ValidationError
from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.gateway import GatewayConfig, GatewayMetrics, ResponseCache, ServerMode
from repro.serving import InferenceRequest
from repro.sim import Environment

MODEL_7B = "Qwen/Qwen2.5-7B-Instruct"
EMBED = "nvidia/NV-Embed-v2"


@pytest.fixture(scope="module")
def deployment():
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="devcluster", kind="small", num_nodes=2, scheduler="local",
                models=[
                    ModelDeploymentSpec(MODEL_7B, max_parallel_tasks=32),
                    ModelDeploymentSpec(EMBED, backend="infinity"),
                ],
            )
        ],
        users=["researcher@anl.gov"],
        generate_text=True,
    )
    d = FIRSTDeployment(config)
    d.warm_up(MODEL_7B)
    return d


# -- response cache unit behaviour -------------------------------------------------

def test_response_cache_ttl_expiry_and_eviction():
    cache = ResponseCache(ttl_s=10.0, max_entries=2)
    k1 = ResponseCache.key_for("m", "prompt one", 10)
    k2 = ResponseCache.key_for("m", "prompt two", 10)
    k3 = ResponseCache.key_for("m", "prompt three", 10)
    cache.put(k1, "r1", now=0.0)
    cache.put(k2, "r2", now=1.0)
    assert cache.get(k1, now=5.0) == "r1"
    # TTL expiry.
    assert cache.get(k1, now=20.0) is None
    # Eviction keeps the cache bounded.
    cache.put(k1, "r1", now=21.0)
    cache.put(k3, "r3", now=22.0)
    assert len(cache) <= 2
    # Different parameters produce different keys.
    assert ResponseCache.key_for("m", "p", 10) != ResponseCache.key_for("m", "p", 20)
    assert ResponseCache.key_for("m", "p", 10, {"temperature": 0.1}) != ResponseCache.key_for(
        "m", "p", 10, {"temperature": 0.9}
    )


# -- gateway metrics unit behaviour ---------------------------------------------------

def test_gateway_metrics_counters_and_dashboard():
    env = Environment()
    metrics = GatewayMetrics(env)
    metrics.request_started("m1", 100)
    metrics.request_started("m2", 50)
    assert metrics.in_flight == 2
    metrics.request_completed("m1", 200, 3.0)
    metrics.request_failed("m2")
    assert metrics.in_flight == 0
    assert metrics.peak_in_flight == 2
    assert metrics.total_requests == 2
    assert metrics.total_completed == 1
    assert metrics.total_output_tokens == 200
    dashboard = metrics.dashboard(extra={"custom": 1})
    assert dashboard["custom"] == 1
    per_model = {m["model"]: m for m in dashboard["models"]}
    assert per_model["m1"]["mean_latency_s"] == pytest.approx(3.0)
    assert per_model["m2"]["failed"] == 1


# -- request body validation ------------------------------------------------------------

def test_completions_requires_prompt(deployment):
    client = deployment.client("researcher@anl.gov")
    with pytest.raises(ValidationError):
        client.completion(MODEL_7B, prompt="", max_tokens=10)


def test_embeddings_requires_input(deployment):
    """Driving the endpoint directly returns a typed envelope, not an exception."""
    client = deployment.client("researcher@anl.gov")
    gateway = deployment.gateway
    proc = deployment.env.process(
        gateway.embeddings(client.access_token, {"model": EMBED, "input": ""})
    )
    response = deployment.env.run(until=proc)
    assert response["error"]["type"] == "invalid_request_error"
    assert response["error"]["status"] == 422
    # The client SDK re-raises the envelope as the typed exception.
    with pytest.raises(ValidationError):
        client.embedding(EMBED, "")


def test_prompt_tokens_hint_is_respected(deployment):
    client = deployment.client("researcher@anl.gov")
    gateway = deployment.gateway
    body = {
        "model": MODEL_7B,
        "messages": [{"role": "user", "content": "short"}],
        "max_tokens": 16,
        "prompt_tokens_hint": 999,
        "request_id": "hinted-req",
    }
    proc = deployment.env.process(gateway.chat_completions(client.access_token, body))
    response = deployment.env.run(until=proc)
    assert response["usage"]["prompt_tokens"] == 999


def test_sampling_params_are_accepted_and_logged(deployment):
    client = deployment.client("researcher@anl.gov")
    response = client.chat_completion(
        MODEL_7B,
        [{"role": "user", "content": "sampled"}],
        max_tokens=8,
        temperature=0.2,
        top_p=0.9,
    )
    assert response["usage"]["completion_tokens"] == 8


def test_alias_model_name_resolves_to_catalog_name(deployment):
    client = deployment.client("researcher@anl.gov")
    # The catalog accepts aliases; the canonical name comes back in the response.
    response = client.chat_completion(
        "Qwen/Qwen2.5-7B-Instruct", [{"role": "user", "content": "x"}], max_tokens=8
    )
    assert response["model"] == MODEL_7B


def test_list_models_and_jobs_are_consistent(deployment):
    client = deployment.client("researcher@anl.gov")
    hosted = {m["id"] for m in client.models()["data"]}
    job_models = {j["model"] for j in client.jobs()}
    assert hosted == job_models


def test_dashboard_includes_relay_queue_and_auth_cache(deployment):
    client = deployment.client("researcher@anl.gov")
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "dash"}], max_tokens=8)
    dash = client.dashboard()
    assert "queued_at_relay" in dash
    assert dash["auth_cache"]["misses"] >= 1


def test_gateway_config_worker_slot_sizing():
    async_cfg = GatewayConfig(cpu_count=16, threads_per_worker=4)
    assert async_cfg.async_worker_slots == (16 * 2 + 1) * 4
    assert async_cfg.worker_slots() == async_cfg.async_worker_slots
    sync_cfg = GatewayConfig(server_mode=ServerMode.SYNC_LEGACY, sync_workers=9)
    assert sync_cfg.worker_slots() == 9


def test_batch_results_are_retained_in_database(deployment):
    from repro.workload import ShareGPTWorkload, requests_to_jsonl

    client = deployment.client("researcher@anl.gov")
    requests = ShareGPTWorkload().generate(MODEL_7B, num_requests=8, id_prefix="dbres")
    batch = client.create_batch(requests_to_jsonl(requests))
    final = client.wait_for_batch(batch["id"], poll_every_s=30.0)
    record = deployment.database.get_batch(batch["id"])
    assert final["request_counts"]["completed"] == 8
    assert len(record.results) == 8
    assert all(r.success for r in record.results)


def test_unknown_endpoint_in_batch_request_raises(deployment):
    from repro.workload import ShareGPTWorkload, requests_to_jsonl

    client = deployment.client("researcher@anl.gov")
    requests = ShareGPTWorkload().generate(MODEL_7B, num_requests=2, id_prefix="noep")
    with pytest.raises(NotFoundError):
        client.create_batch(requests_to_jsonl(requests), endpoint_id="ep-missing")


def test_failed_batch_records_counts_and_dashboard_failure():
    """A batch whose compute task fails records full failure accounting."""
    from repro.workload import ShareGPTWorkload, requests_to_jsonl

    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="c1", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(MODEL_7B, max_parallel_tasks=32)],
            ),
            ClusterDeploymentSpec(
                name="c2", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(EMBED, backend="infinity")],
            ),
        ],
        users=["researcher@anl.gov"],
        generate_text=False,
    )
    d = FIRSTDeployment(config)
    client = d.client("researcher@anl.gov")
    requests = ShareGPTWorkload().generate(MODEL_7B, num_requests=5, id_prefix="failbatch")
    # Force the batch onto the endpoint that does not host the model: the
    # compute task fails at the endpoint and the future is rejected.
    batch = client.create_batch(requests_to_jsonl(requests), endpoint_id="ep-c2")
    final = client.wait_for_batch(batch["id"], poll_every_s=10.0)
    assert final["status"] == "failed"
    assert final["error"]
    record = d.database.get_batch(batch["id"])
    assert record.completed_requests == 0
    assert record.failed_requests == 5
    assert record.output_tokens == 0
    assert record.completed_at is not None
    assert d.gateway.metrics.batches_failed == 1
    assert d.gateway.dashboard()["batches_failed"] == 1


def test_batch_partial_failure_reports_per_request_reasons():
    """A batch that completes with some failed requests surfaces which
    requests failed and why — typed envelopes on ``GET /v1/batches/{id}``,
    bucketed reasons on the dashboard."""
    from repro.serving import InferenceResult, OfflineRunResult
    from repro.workload import ShareGPTWorkload, requests_to_jsonl

    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="c1", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(MODEL_7B, max_parallel_tasks=32)],
            ),
        ],
        users=["researcher@anl.gov"],
        generate_text=False,
    )
    d = FIRSTDeployment(config)
    client = d.client("researcher@anl.gov")
    requests = ShareGPTWorkload().generate(MODEL_7B, num_requests=3, id_prefix="pf")

    def result(req, success, error=None):
        return InferenceResult(
            request_id=req.request_id, model=req.model,
            prompt_tokens=req.prompt_tokens,
            output_tokens=req.max_output_tokens if success else 0,
            success=success, error=error,
        )

    run_result = OfflineRunResult(
        results=[result(requests[0], True),
                 result(requests[1], False, "KV cache exhausted"),
                 result(requests[2], False, "inference server crashed")],
        load_time_s=10.0, processing_time_s=5.0,
    )

    # Stub the compute layer: this test exercises the gateway's partial-
    # failure accounting, not the batch execution path itself.
    d.gateway.compute_client.submit = lambda *a, **k: object()

    def fake_wait(future):
        yield d.env.timeout(1.0)
        return run_result

    d.gateway.compute_client.wait_future = fake_wait

    batch = client.create_batch(requests_to_jsonl(requests))
    final = client.wait_for_batch(batch["id"], poll_every_s=5.0)

    assert final["status"] == "completed"
    assert final["request_counts"] == {"total": 3, "completed": 1, "failed": 2}
    errors = {e["request_id"]: e["error"] for e in final["errors"]["data"]}
    assert set(errors) == {requests[1].request_id, requests[2].request_id}
    assert errors[requests[1].request_id]["type"] == "overloaded_error"
    assert "KV cache exhausted" in errors[requests[1].request_id]["message"]
    assert errors[requests[2].request_id]["type"] == "internal_error"

    dashboard = d.gateway.dashboard()
    assert dashboard["batches_completed"] == 1
    assert dashboard["batch_requests_completed"] == 1
    assert dashboard["batch_requests_failed"] == 2
    assert dashboard["batch_failure_reasons"] == {
        "KV cache exhausted": 1,
        "inference server crashed": 1,
    }


def test_completed_batch_counts_in_dashboard(deployment):
    from repro.workload import ShareGPTWorkload, requests_to_jsonl

    client = deployment.client("researcher@anl.gov")
    before = deployment.gateway.metrics.batches_completed
    requests = ShareGPTWorkload().generate(MODEL_7B, num_requests=4, id_prefix="okbatch")
    batch = client.create_batch(requests_to_jsonl(requests))
    client.wait_for_batch(batch["id"], poll_every_s=30.0)
    assert deployment.gateway.metrics.batches_completed == before + 1
    assert deployment.gateway.dashboard()["batches_completed"] == before + 1


# -- stream channel unit behaviour ---------------------------------------------------------

def test_stream_channel_fifo_and_close():
    from repro.serving import StreamChannel

    env = Environment()
    channel = StreamChannel(env)
    channel.publish("a")
    channel.publish("b")
    channel.close()
    got = []

    def consume():
        while True:
            item = yield channel.get()
            if item is None:
                return got
            got.append(item)

    proc = env.process(consume())
    assert env.run(until=proc) == ["a", "b"]
    # Closed channels keep resolving to None and drop further publishes.
    channel.publish("c")
    assert env.run(until=channel.get()) is None


def test_stream_channel_delivery_latency_preserves_order():
    from repro.serving import StreamChannel

    env = Environment()
    channel = StreamChannel(env, delivery_latency_s=0.5)
    arrivals = []

    def consume():
        while True:
            item = yield channel.get()
            if item is None:
                return
            arrivals.append((item, env.now))

    env.process(consume())
    channel.publish(1)
    channel.publish(2)
    channel.close()
    env.run()
    assert arrivals == [(1, 0.5), (2, 0.5)]


def test_routing_cache_reuses_decision(deployment):
    client = deployment.client("researcher@anl.gov")
    before = len(deployment.gateway.router.decisions)
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "r1"}], max_tokens=8)
    client.chat_completion(MODEL_7B, [{"role": "user", "content": "r2"}], max_tokens=8)
    after = len(deployment.gateway.router.decisions)
    # Within the routing-cache TTL the second request does not re-query.
    assert after - before <= 1


# -- batch retry (POST /v1/batches/{id}/retry) ------------------------------------------

def _partial_failure_deployment():
    """A deployment whose compute layer is stubbed to return scripted batch
    results: first a partial failure, then a clean completion (the retry)."""
    from repro.serving import InferenceResult, OfflineRunResult
    from repro.workload import ShareGPTWorkload

    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="c1", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(MODEL_7B, max_parallel_tasks=32)],
            ),
        ],
        users=["researcher@anl.gov"],
        generate_text=False,
    )
    d = FIRSTDeployment(config)
    requests = ShareGPTWorkload().generate(MODEL_7B, num_requests=3, id_prefix="rt")

    def result(req, success, error=None):
        return InferenceResult(
            request_id=req.request_id, model=req.model,
            prompt_tokens=req.prompt_tokens,
            output_tokens=req.max_output_tokens if success else 0,
            success=success, error=error,
        )

    first = OfflineRunResult(
        results=[result(requests[0], True),
                 result(requests[1], False, "KV cache exhausted"),
                 result(requests[2], False, "inference server crashed")],
        load_time_s=10.0, processing_time_s=5.0,
    )

    submitted = []

    def fake_submit(function_id, endpoint_id, payload, **kwargs):
        submitted.append(payload)
        return object()

    def fake_wait(future):
        yield d.env.timeout(1.0)
        batch_requests = submitted[-1]["requests"]
        if len(batch_requests) == 3:
            return first
        return OfflineRunResult(
            results=[result(r, True) for r in batch_requests],
            load_time_s=10.0, processing_time_s=2.0,
        )

    d.gateway.compute_client.submit = fake_submit
    d.gateway.compute_client.wait_future = fake_wait
    return d, requests, submitted


def test_batch_retry_resubmits_only_failed_requests():
    from repro.workload import requests_to_jsonl

    d, requests, submitted = _partial_failure_deployment()
    client = d.client("researcher@anl.gov")
    batch = client.create_batch(requests_to_jsonl(requests))
    final = client.wait_for_batch(batch["id"], poll_every_s=5.0)
    assert final["request_counts"]["failed"] == 2

    retry = client.retry_batch(batch["id"])
    assert retry["retried_from"] == batch["id"]
    assert retry["request_counts"]["total"] == 2
    # Only the failed request ids were resubmitted, nothing else.
    resubmitted_ids = {r.request_id for r in submitted[-1]["requests"]}
    assert resubmitted_ids == {requests[1].request_id, requests[2].request_id}

    # Provenance is recorded both ways.
    original = client.get_batch(batch["id"])
    assert retry["id"] in original["retry_batch_ids"]

    retried_final = client.wait_for_batch(retry["id"], poll_every_s=5.0)
    assert retried_final["status"] == "completed"
    assert retried_final["request_counts"] == {"total": 2, "completed": 2, "failed": 0}
    assert retried_final["errors"] is None


def test_batch_retry_unknown_batch_is_typed_not_found():
    d, _requests, _submitted = _partial_failure_deployment()
    client = d.client("researcher@anl.gov")
    with pytest.raises(NotFoundError):
        client.retry_batch("batch-does-not-exist")
    envelope_client = d.client("researcher@anl.gov", raise_on_error=False)
    response = envelope_client.retry_batch("batch-does-not-exist")
    assert response["error"]["type"] == "not_found_error"


def test_batch_retry_rejects_non_failed_and_running_batches():
    from repro.workload import requests_to_jsonl

    d, requests, _submitted = _partial_failure_deployment()
    client = d.client("researcher@anl.gov")
    batch = client.create_batch(requests_to_jsonl(requests))
    # Still in progress: not retryable yet.
    with pytest.raises(ValidationError):
        client.retry_batch(batch["id"])
    client.wait_for_batch(batch["id"], poll_every_s=5.0)

    # A clean retry completes with zero failures; retrying *it* is rejected.
    retry = client.retry_batch(batch["id"])
    client.wait_for_batch(retry["id"], poll_every_s=5.0)
    envelope_client = d.client("researcher@anl.gov", raise_on_error=False)
    response = envelope_client.retry_batch(retry["id"])
    assert response["error"]["type"] == "invalid_request_error"
    assert "no failed requests" in response["error"]["message"]


def test_fully_failed_batch_retries_every_request():
    """A batch whose whole compute task failed has no per-request reasons;
    retry resubmits all of them."""
    from repro.serving import InferenceResult, OfflineRunResult
    from repro.workload import requests_to_jsonl

    d, requests, submitted = _partial_failure_deployment()

    calls = {"n": 0}

    def result(req):
        return InferenceResult(
            request_id=req.request_id, model=req.model,
            prompt_tokens=req.prompt_tokens, output_tokens=req.max_output_tokens,
            success=True,
        )

    def fake_wait(future):
        yield d.env.timeout(1.0)
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("endpoint unreachable")
        return OfflineRunResult(
            results=[result(r) for r in submitted[-1]["requests"]],
            load_time_s=5.0, processing_time_s=2.0,
        )

    d.gateway.compute_client.wait_future = fake_wait
    client = d.client("researcher@anl.gov")
    batch = client.create_batch(requests_to_jsonl(requests))
    final = client.wait_for_batch(batch["id"], poll_every_s=5.0)
    assert final["status"] == "failed"

    retry = client.retry_batch(batch["id"])
    assert retry["request_counts"]["total"] == 3
    retried_final = client.wait_for_batch(retry["id"], poll_every_s=5.0)
    assert retried_final["status"] == "completed"
    assert retried_final["request_counts"]["completed"] == 3
