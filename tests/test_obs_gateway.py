"""End-to-end observability tests: the span tree of a streamed request
across every layer, the gateway's metrics/trace endpoints, Perfetto export,
and the bit-identity guarantee (tracing on == tracing off)."""

import json
import logging

import pytest

from repro.common import NotFoundError, sim_logger
from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
    ObservabilityConfig,
)
from repro.obs import span_tree
from repro.sim import Environment

MODEL = "Qwen/Qwen2.5-7B-Instruct"


def obs_deployment(observability=None):
    return FIRSTDeployment(DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="devcluster", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(MODEL, max_parallel_tasks=32)],
            )
        ],
        users=["researcher@anl.gov"],
        generate_text=False,
        observability=observability,
    ))


@pytest.fixture(scope="module")
def traced_request():
    """One streamed request through a traced deployment (shared, read-only)."""
    deployment = obs_deployment(ObservabilityConfig(profile_kernel=True))
    deployment.warm_up(MODEL)
    client = deployment.client("researcher@anl.gov")
    chunks = list(client.chat_completion(
        MODEL, [{"role": "user", "content": "hello"}], max_tokens=8, stream=True))
    trace_id = deployment.observability.tracer.trace_ids()[0]
    return deployment, client, chunks, trace_id


def _index(spans):
    return {s["name"]: s for s in spans}


# -- span-tree completeness -----------------------------------------------------

def test_streamed_request_span_tree_covers_every_layer(traced_request):
    deployment, client, chunks, trace_id = traced_request
    assert chunks[-1]["choices"][0]["finish_reason"] == "stop"
    trace = client.get_trace(trace_id)
    assert trace["trace_id"] == trace_id
    spans = trace["spans"]
    by_name = _index(spans)

    # Every layer of the pipeline shows up.
    for name, layer in [
        ("gateway.request", "gateway"),
        ("gateway.stage.routing", "gateway"),
        ("gateway.stage.dispatch", "gateway"),
        ("gateway.stream_delivery", "gateway"),
        ("relay.transfer", "relay"),
        ("relay.result", "relay"),
        ("endpoint.execute", "endpoint"),
        ("endpoint.queue_wait", "endpoint"),
        ("engine.request", "engine"),
        ("engine.queue_wait", "engine"),
        ("engine.prefill", "engine"),
    ]:
        assert name in by_name, f"missing span {name}"
        assert by_name[name]["layer"] == layer

    # Streaming forces per-token decode: one window span per post-first token.
    windows = [s for s in spans if s["name"] == "engine.decode_window"]
    assert len(windows) == 7  # 8 tokens - the prefill-produced first token
    assert all(w["attrs"]["iterations"] == 1 for w in windows)

    # The routing decision is annotated with the policy and chosen endpoint.
    routing = by_name["gateway.stage.routing"]
    assert routing["attrs"]["endpoint"] == "ep-devcluster"
    assert routing["attrs"]["policy"] == "PriorityRouter"

    root = by_name["gateway.request"]
    assert root["parent_id"] is None
    assert root["attrs"]["outcome"] == "success"
    assert root["attrs"]["stream"] is True
    assert by_name["gateway.stream_delivery"]["attrs"]["tokens"] == 8


def test_span_nesting_and_monotone_timestamps(traced_request):
    deployment, client, _, trace_id = traced_request
    trace = client.get_trace(trace_id)
    spans = trace["spans"]
    by_id = {s["span_id"]: s for s in spans}

    for span in spans:
        assert span["end"] is not None, f"unclosed span {span['name']}"
        assert span["end"] >= span["start"] >= trace["started_at"]
        assert span["end"] <= trace["finished_at"]
        parent = by_id.get(span["parent_id"]) if span["parent_id"] else None
        if parent is not None:
            # Children start within their parent.
            assert span["start"] >= parent["start"]

    roots = span_tree(spans)
    assert [r["name"] for r in roots] == ["gateway.request"]

    # The pipeline stages nest in chain order down to dispatch, which owns
    # the cross-layer subtree.
    node = roots[0]
    chain = []
    while node is not None:
        chain.append(node["name"])
        node = next((c for c in node["children"]
                     if c["name"].startswith("gateway.stage.")), None)
    assert chain == [
        "gateway.request", "gateway.stage.validation", "gateway.stage.auth",
        "gateway.stage.rate-limit", "gateway.stage.response-cache",
        "gateway.stage.accounting", "gateway.stage.routing",
        "gateway.stage.dispatch",
    ]

    dispatch = _index(trace["spans"])["gateway.stage.dispatch"]["span_id"]
    for name in ("relay.transfer", "relay.result", "endpoint.execute",
                 "engine.request", "gateway.stream_delivery"):
        assert _index(spans)[name]["parent_id"] == dispatch
    engine_root = _index(spans)["engine.request"]["span_id"]
    for name in ("engine.queue_wait", "engine.prefill", "engine.decode_window"):
        assert _index(spans)[name]["parent_id"] == engine_root


# -- retrieval endpoints --------------------------------------------------------

def test_trace_and_metrics_endpoints(traced_request):
    deployment, client, _, trace_id = traced_request
    with pytest.raises(NotFoundError):
        client.get_trace("no-such-trace")

    text = client.metrics_text()
    assert '# TYPE gateway_requests_total counter' in text
    assert f'gateway_requests_total{{model="{MODEL}",outcome="success"}} 1' in text
    assert "gateway_request_latency_seconds_count" in text
    assert "gateway_ttft_seconds_count" in text
    assert f'gateway_tokens_total{{model="{MODEL}",kind="output"}} 8' in text
    assert "gateway_in_flight_requests 0" in text

    dashboard = client.dashboard()
    json.dumps(dashboard)  # plain JSON-serializable
    assert dashboard["uptime_s"] > 0
    obs = dashboard["observability"]
    assert obs["tracing"]["finished"] == 1
    assert obs["kernel"]["events_total"] > 0
    assert obs["slowest"][0]["trace_id"] == trace_id


def test_disabled_observability_endpoints_raise(traced_request):
    deployment = obs_deployment()  # no observability configured
    assert deployment.observability is None
    with pytest.raises(NotFoundError):
        deployment.gateway.metrics_text()
    with pytest.raises(NotFoundError):
        deployment.gateway.get_trace("anything")


def test_perfetto_export(traced_request):
    deployment, client, _, trace_id = traced_request
    perfetto = client.get_trace_perfetto(trace_id)
    json.dumps(perfetto)
    events = perfetto["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metas} == {
        "gateway", "relay", "endpoint", "engine"}
    names = {e["name"] for e in slices}
    assert "engine.prefill" in names and "relay.transfer" in names
    trace = client.get_trace(trace_id)
    for e in slices:
        assert e["dur"] >= 0
        assert e["ts"] >= trace["started_at"] * 1e6  # µs of simulated time
    assert perfetto["otherData"]["clock"] == "simulated"
    with pytest.raises(NotFoundError):
        client.get_trace_perfetto("no-such-trace")


# -- bit-identity ---------------------------------------------------------------

def _workload_signature(observability):
    deployment = obs_deployment(observability)
    deployment.warm_up(MODEL)
    client = deployment.client("researcher@anl.gov")
    signature = []
    for i in range(4):
        stream = i % 2 == 0
        response = client.chat_completion(
            MODEL, [{"role": "user", "content": f"msg {i}"}],
            max_tokens=6 + i, stream=stream)
        if stream:
            list(response)
        signature.append(deployment.env.now)
    signature.append(deployment.gateway.metrics.total_output_tokens)
    return signature


def test_results_bit_identical_with_tracing_on_or_off():
    baseline = _workload_signature(None)
    traced = _workload_signature(ObservabilityConfig(profile_kernel=True))
    sampled_off = _workload_signature(ObservabilityConfig(sample_rate=0.0))
    assert traced == baseline
    assert sampled_off == baseline


# -- sim-time structured logging ------------------------------------------------

def test_sim_logger_stamps_simulated_time(caplog):
    env = Environment()
    log = sim_logger("repro.test", env)

    def proc():
        yield env.timeout(12.5)
        log.warning("queue full", depth=3, limit=2)

    env.process(proc())
    with caplog.at_level(logging.WARNING, logger="repro.test"):
        env.run()
    record = caplog.records[-1]
    assert record.sim_time == 12.5
    assert record.sim_fields == {"depth": 3, "limit": 2}
    assert record.getMessage() == "[t=12.500s] queue full (depth=3 limit=2)"
