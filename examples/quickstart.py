#!/usr/bin/env python3
"""Quickstart: bring up a FIRST deployment and talk to it like the OpenAI API.

This mirrors §4.6 of the paper: authenticate (Globus-Auth-like), then use an
OpenAI-style client against the Inference Gateway.  Everything — the cluster,
the scheduler, the Globus-Compute-like endpoint, the vLLM-like engines and
the gateway — runs inside a deterministic simulation, so the script works on
a laptop with no GPUs and finishes in seconds.

Run:  python examples/quickstart.py
"""

from repro.core import FIRSTDeployment

CHAT_MODEL = "Qwen/Qwen2.5-7B-Instruct"
EMBED_MODEL = "nvidia/NV-Embed-v2"


def main() -> None:
    # 1. Deploy the service: a small 2-node cluster hosting two chat models
    #    and an embedding model behind the gateway.
    #
    #    The whole deployment runs on the from-scratch DES kernel.  Its
    #    pending-event structure is pluggable — `Environment(queue="heap")`
    #    (default), `"calendar"`, `"packed"` or `"auto"`; at this layer
    #    pass `DeploymentConfig(kernel_queue=...)`.  Results are
    #    bit-identical either way, only wall-clock differs — §12 below
    #    says which to pick.
    deployment = FIRSTDeployment.quickstart()
    print("Deployed FIRST on cluster(s):", ", ".join(deployment.clusters))

    # 2. Authenticate a user (institutional identity, 48-hour token).
    client = deployment.client("researcher@anl.gov")
    print(f"Authenticated as {client.username}")

    # 3. List the models the federation hosts.
    models = [m["id"] for m in client.models()["data"]]
    print("Hosted models:", ", ".join(models))

    # 4. First request: a cold start (node acquisition + model load), exactly
    #    like §4.3 describes.  The /jobs endpoint shows the transition.
    print("\nModel states before the first request:")
    for job in client.jobs():
        print(f"  {job['model']:<40s} {job['state']}")

    t0 = deployment.now
    response = client.chat_completion(
        CHAT_MODEL,
        [{"role": "user", "content": "Summarise why on-premises inference matters for HPC."}],
        max_tokens=96,
    )
    print(f"\nCold-start chat completion took {deployment.now - t0:.1f} simulated seconds")
    print("Assistant:", response["choices"][0]["message"]["content"][:160], "...")

    # 5. Second request hits the hot instance: low latency.
    t0 = deployment.now
    response = client.chat_completion(
        CHAT_MODEL,
        [{"role": "user", "content": "And what about data governance?"}],
        max_tokens=64,
    )
    print(f"Hot-path chat completion took {deployment.now - t0:.1f} simulated seconds")

    # 6. Streaming (API v2): stream=True returns an iterator of OpenAI-style
    #    chat.completion.chunk dicts.  Each token event travels engine →
    #    relay → gateway → client at the engine's real iteration timing, so
    #    the time-to-first-token is far below the full response latency.
    print("\nStreaming response: ", end="")
    t0 = deployment.now
    ttft = None
    for chunk in client.chat_completion(
        CHAT_MODEL,
        [{"role": "user", "content": "Stream a haiku about batch queues."}],
        max_tokens=24,
        stream=True,
    ):
        if ttft is None and chunk["choices"][0]["delta"].get("content"):
            ttft = deployment.now - t0
        print(chunk["choices"][0]["delta"].get("content", ""), end="")
    print(f"\nTime to first token: {ttft:.2f}s "
          f"(full response: {deployment.now - t0:.2f}s)")

    # 7. Embeddings work the same way.
    embedding = client.embedding(EMBED_MODEL, "lustre striping for large files")
    vector = embedding["data"][0]["embedding"]
    print(f"\nEmbedding dimension: {len(vector)}")

    # 8. The dashboard aggregates usage, like the paper's monitoring layer.
    dashboard = client.dashboard()
    print("\nGateway dashboard:")
    print(f"  requests completed : {dashboard['total_completed']}")
    print(f"  output tokens      : {dashboard['total_output_tokens']}")
    print(f"  models             : {[m['model'] for m in dashboard['models']]}")

    print("\nModel states after serving:")
    for job in client.jobs():
        print(f"  {job['model']:<40s} {job['state']}")

    # 9. Federation v2: every routing decision reads the placement plane's
    #    shared TopologyView — one event-refreshed aggregate of pool state,
    #    cluster free-nodes/GPU-seconds and gateway-observed latency medians
    #    per (model, endpoint).  The dashboard's routing block summarises
    #    where decisions went and which rule placed them.
    signal = deployment.topology.pool_signal("ep-devcluster", CHAT_MODEL)
    print(f"\nPlacement signal for {CHAT_MODEL} on ep-devcluster:")
    print(f"  state={signal.state} ready={signal.ready_instances} "
          f"waiting={signal.waiting_tasks} busy={signal.busy_fraction:.2f} "
          f"p50={signal.latency_p50_s and round(signal.latency_p50_s, 2)}s")
    routing = dashboard["routing"]
    print(f"  routing: policy={routing['policy']} total={routing['total']} "
          f"by_rule={routing['by_rule']}")
    #    Beyond the paper's priority rule, `repro.placement` ships a
    #    LeastLoadedRouter, an SLO-aware SLORouter (sheds to a secondary
    #    cluster while the primary's p50 breaches a per-tenant SLO), a
    #    `federated` autoscaling policy that shifts replicas across clusters
    #    on queue imbalance, and per-tenant capacity reservations as a
    #    pipeline stage — see examples/federated_slo_routing.py for a
    #    two-cluster demo (and `FIRSTClient.retry_batch` to resubmit just
    #    the failed requests of a batch).

    # 10. Shifting-traffic workloads: beyond fixed-rate arrivals, the
    #    workload package generates diurnal day/night cycles, linear ramps
    #    and trace replays — the shapes the autoscaling control plane is
    #    benchmarked against (see examples/autoscaling_policies.py).
    from repro.workload import DiurnalArrival, RampArrival

    diurnal = DiurnalArrival(base_rate=0.5, peak_rate=4.0, period_s=600.0, seed=7)
    ramp = RampArrival(start_rate=0.5, end_rate=4.0, ramp_s=300.0, seed=7)
    print("\nShifting-traffic arrival processes:")
    for arrival in (diurnal, ramp):
        sends = arrival.offsets(300)
        mid = sum(1 for t in sends if sends[-1] / 3 <= t < 2 * sends[-1] / 3)
        print(f"  {arrival.label:<42s} first send {sends[0]:6.1f}s, "
              f"300th {sends[-1]:6.1f}s ({mid} sends in the middle third)")

    # 11. Scenario grids at scale: the sweep plane expands a declarative grid
    #    into independent cells and shards them across worker processes —
    #    merged metrics are bit-identical for any worker count, and quantiles
    #    come from mergeable log-bucket histograms (1% relative error).
    #    A whole sweep is three lines:
    from repro.sweep import SweepRunner, SweepSpec

    grid = SweepSpec("demo", runner="engine",
                     base={"model": "meta-llama/Llama-3.1-8B-Instruct",
                           "num_requests": 50},
                     axes={"rate": [2.0, 8.0], "seed": [0, 1]})
    merged = SweepRunner(workers=1).run(grid.expand()).merged(label="demo grid")
    print(f"\nSweep plane ({grid.num_cells} cells, merged):")
    print("  " + merged.row())
    #    `workers=4` shards the same cells across 4 spawned processes and
    #    merges to the bit-identical summary (fingerprints are compared in
    #    benchmarks/bench_sweep_scale.py, which runs a 1M-request grid).

    # 12. Choosing a kernel queue.  All four backends produce bit-identical
    #    simulated results (golden traces + hypothesis laws pin this), so
    #    the choice is purely about wall-clock on YOUR pending-set size:
    #
    #      * "heap"     — default.  C heapq; fastest for the small pending
    #                     sets (tens to a few thousand timers) every
    #                     scenario in this file produces.
    #      * "packed"   — lazy-sorted calendar with packed overflow
    #                     columns; ~1.6-1.8x the heap once ~100k events are
    #                     pending (sharded sweeps, federation-scale runs),
    #                     but roughly at (slightly below) heap parity at
    #                     small sizes — pure-Python ops cannot beat C heapq
    #                     there.  Honest numbers for both regimes are in
    #                     benchmarks/BENCH_kernel.json (`queue_stress` vs
    #                     `fig3_macro`), measured on a single CPU; your
    #                     crossover will vary with interpreter and load.
    #      * "auto"     — starts as a heap, migrates one-way to packed when
    #                     pending exceeds ~4k: the right default when you
    #                     do not know the scale in advance.
    #      * "calendar" — tuple-based calendar queue (PR 5); superseded by
    #                     "packed" but kept as a second reference backend.
    #
    #    Optional compiled stepper: `REPRO_COMPILED_STEPPER=1` makes the
    #    packed queue compile its overflow binary-probe with cffi at first
    #    use; `repro.sim.use_compiled_stepper()` opts in programmatically
    #    and returns True only if the compiled probe is actually active
    #    for queues built afterwards.  It is off by default — without
    #    cffi or a C compiler the pure-Python probe runs bit-identically;
    #    measured single-CPU wins are small because per-call FFI overhead
    #    eats sub-microsecond savings (ROADMAP item 2 tracks batching many
    #    events per C call as the follow-up).
    from repro.sim.queues import QUEUE_KINDS, make_event_queue

    fresh_auto = make_event_queue("auto")
    print(f"\nKernel queue backends: {', '.join(QUEUE_KINDS)} "
          f"(a fresh 'auto' starts as {type(fresh_auto).__name__})")

    # 13. Observing a request.  `DeploymentConfig(observability=...)` adds an
    #    observability stage to the gateway pipeline: every request gets a
    #    simulated-time distributed trace (gateway stages → relay transfer →
    #    endpoint queue → engine admission/prefill/decode windows → stream
    #    delivery) and the gateway grows Prometheus-style RED metrics backed
    #    by mergeable histograms.  Tracing is observe-only — simulated
    #    results are bit-identical with it on or off (BENCH_obs.json gates
    #    the wall-clock overhead too).  Head sampling plus an always-kept
    #    top-K-slowest reservoir bound retention; `profile_kernel=True` also
    #    attaches an event-loop profiler to the DES kernel.
    from repro.core import ObservabilityConfig, quickstart_config
    from repro.obs import span_tree

    traced_config = quickstart_config(generate_text=False)
    traced_config.observability = ObservabilityConfig(profile_kernel=True)
    traced = FIRSTDeployment(traced_config)
    traced_client = traced.client("researcher@anl.gov")
    for _ in traced_client.chat_completion(
        CHAT_MODEL, [{"role": "user", "content": "trace me"}],
        max_tokens=12, stream=True,
    ):
        pass

    trace_id = traced.observability.tracer.trace_ids()[0]
    trace = traced_client.get_trace(trace_id)          # GET /v1/traces/{id}
    print(f"\nTrace {trace_id} ({trace['duration_s']:.2f}s simulated, "
          f"{len(trace['spans'])} spans):")

    def show(node, depth=1):
        print(f"  {'  ' * depth}{node['name']:<28s} [{node['layer']}] "
              f"{node['duration_s']:.3f}s")
        for child in node["children"][:3]:
            show(child, depth + 1)
        if len(node["children"]) > 3:
            print(f"  {'  ' * (depth + 1)}... {len(node['children']) - 3} more")

    for root in span_tree(trace["spans"]):
        show(root)
    #    `traced_client.get_trace_perfetto(trace_id)` returns the same trace
    #    as Chrome trace-event JSON — json.dump it and load it in Perfetto
    #    (ui.perfetto.dev) to see the request on a simulated-time timeline.

    metrics = traced_client.metrics_text()             # GET /v1/metrics
    print("\nPrometheus metrics (first lines):")
    for line in metrics.splitlines()[:4]:
        print("  " + line)
    kernel = traced.observability.kernel_profiler.snapshot()
    print(f"kernel profile: {kernel['events_total']} events, "
          f"{kernel['events_per_wall_s']:.0f} events/wall-s")

    # 14. Sharding one federated deployment across processes.  The parallel
    #    plane splits a gateway + N compute clusters into per-cluster event
    #    kernels that advance in conservative synchronous windows (lookahead
    #    = relay wire latency) and exchange only boundary messages.  Results
    #    are bit-identical to the serial run for any worker count — the
    #    fingerprint proves it.  On a single-CPU box this costs more than it
    #    saves (worker spawn + one sync round-trip per window); reach for it
    #    when one simulated cluster saturates a core and you have spare ones.
    from repro.parallel import FederatedScenario, PartitionedDeployment

    scenario = FederatedScenario.demo(clusters=2, num_requests=20)
    result = PartitionedDeployment(scenario, workers=2).run()
    print(f"\nPartitioned federation: {len(result.records)} requests across "
          f"{scenario.clusters[0].name}+{scenario.clusters[1].name}, "
          f"{result.stats.windows} windows, "
          f"fingerprint {result.fingerprint[:16]} "
          f"(identical at any worker count)")

    # 15. Guarding determinism.  Everything above is bit-identical across
    #    queue backends, worker counts and PYTHONHASHSEED values — and two
    #    guard layers keep it that way as the code grows:
    #
    #    * detlint (`PYTHONPATH=src python -m repro.analysis src`) — AST
    #      rules that flag wall-clock reads (DET001), global/np.random draws
    #      (DET002), builtin hash() (DET003), iteration over sets in
    #      sim-path packages (DET004), pickle-unsafe closures in specs
    #      (DET005) and layering breaks (ARCH001/ARCH002).  CI fails on any
    #      finding not in detlint_baseline.json — which is empty.
    #    * DetSan (`REPRO_DETSAN=1`, or `Environment(sanitize=True)`) — a
    #      runtime sanitizer using the same shadow-step trick as the kernel
    #      profiler (zero overhead unattached): past-event schedules,
    #      duplicate (time, priority, eid) keys and RNG draws from the
    #      observe-only obs/ layer raise DetSanError at the call site.
    import tempfile
    from pathlib import Path

    from repro.analysis import DetSanError, lint_paths, load_config
    from repro.sim import Environment

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        bad = root / "src" / "repro" / "sim" / "oops.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\ndef stamp(events: set):\n"
                       "    return time.time(), sorted(hash(e) for e in events)\n")
        findings = lint_paths([str(bad.parent)], root=root,
                              config=load_config(root))
    print("\ndetlint on a deliberately bad sim-path file:")
    for f in findings:
        print(f"  {f.rule} line {f.line}: {f.message}")

    env = Environment(sanitize=True)
    try:
        env.schedule(env.event(), delay=-1.0)
    except DetSanError as exc:
        print(f"DetSan caught: {exc}")
    env.sanitizer.detach()          # restores the plain class-level step
    #    The third guard runs in CI only: `python -m repro.analysis.detsan`
    #    reruns a partitioned federation under PYTHONHASHSEED=101 and =202
    #    in separate interpreters and fails unless the merged fingerprints
    #    are bit-identical.


if __name__ == "__main__":
    main()
