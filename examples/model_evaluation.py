#!/usr/bin/env python3
"""Case study §6.1 — evaluating a suite of models through the gateway.

The paper's researchers benchmarked fifteen GPT-style models against the
same prompt set; FIRST's ability to "swap models instantly" (every variant is
registered and served by the same API) removed the manual redeployment steps
and cut total evaluation time by ~40%.

This example evaluates a smaller suite on a shared prompt set and reports
per-model throughput and latency, plus the usage accounting the gateway keeps.

Run:  python examples/model_evaluation.py
"""

from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.workload import BenchmarkClient, ShareGPTWorkload

MODEL_SUITE = [
    "Qwen/Qwen2.5-7B-Instruct",
    "meta-llama/Llama-3.1-8B-Instruct",
    "mistralai/Mistral-7B-Instruct-v0.3",
    "argonne-private/AuroraGPT-7B",
    "argonne-private/AuroraGPT-Tulu3-SFT-0125",
]
REQUESTS_PER_MODEL = 40


def main() -> None:
    deployment = FIRSTDeployment(
        DeploymentConfig(
            clusters=[
                ClusterDeploymentSpec(
                    name="sophia",
                    kind="sophia",
                    num_nodes=6,
                    scheduler="pbs",
                    models=[ModelDeploymentSpec(m, max_parallel_tasks=48) for m in MODEL_SUITE],
                )
            ],
            users=["evaluator@anl.gov"],
        )
    )
    client = deployment.client("evaluator@anl.gov")

    # Pre-warm every variant in parallel: this is the step that replaces
    # "manually deploy model, run, tear down, repeat".
    events = []
    for model in MODEL_SUITE:
        events.extend(deployment.prewarm(model))
    deployment.env.run(until=deployment.env.all_of(events))
    print(f"All {len(MODEL_SUITE)} model variants are hot "
          f"(t={deployment.now:.0f}s simulated)")

    print(f"\nEvaluating each variant on the same {REQUESTS_PER_MODEL}-prompt set:")
    results = []
    for model in MODEL_SUITE:
        requests = ShareGPTWorkload().generate(model, num_requests=REQUESTS_PER_MODEL,
                                               id_prefix=f"eval-{model.split('/')[-1]}")
        bench = BenchmarkClient(deployment.env, client, label=model)
        proc = deployment.env.process(bench.run(requests, summary_label=model))
        summary = deployment.env.run(until=proc)
        results.append(summary)
        print("  " + summary.row())

    fastest = max(results, key=lambda s: s.output_token_throughput)
    print(f"\nHighest-throughput variant: {fastest.label} "
          f"({fastest.output_token_throughput:.0f} tok/s)")

    usage = deployment.database.usage_summary()
    print("\nGateway accounting for the evaluation campaign:")
    print(f"  total requests logged : {usage['total_requests']}")
    print(f"  total output tokens   : {usage['total_output_tokens']}")
    print("\n(The full-scale comparison against manual redeployment is in")
    print(" benchmarks/bench_case_study_eval.py — it reproduces the ~40% saving.)")


if __name__ == "__main__":
    main()
