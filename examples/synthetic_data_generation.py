#!/usr/bin/env python3
"""Case study §6.3 — synthetic data generation with the batch mode.

Researchers used FIRST's ``/v1/batches`` endpoint to generate large volumes
of synthetic training data: a JSONL input file, one dedicated HPC job per
batch, no online-serving overhead, and status polling while it runs.

Run:  python examples/synthetic_data_generation.py
"""

from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.workload import BATCH_GENERATION_CONFIG, ShareGPTWorkload, requests_to_jsonl

MODEL = "meta-llama/Llama-3.3-70B-Instruct"
NUM_PROMPTS = 400


def main() -> None:
    deployment = FIRSTDeployment(
        DeploymentConfig(
            clusters=[
                ClusterDeploymentSpec(
                    name="sophia",
                    kind="sophia",
                    num_nodes=4,
                    scheduler="pbs",
                    models=[ModelDeploymentSpec(MODEL)],
                )
            ],
            users=["datagen@anl.gov"],
        )
    )
    client = deployment.client("datagen@anl.gov")

    # Build the JSONL batch input: prompts asking for synthetic descriptions,
    # with the longer generation profile typical of data-generation jobs.
    prompts = ShareGPTWorkload(BATCH_GENERATION_CONFIG).generate(
        MODEL, num_requests=NUM_PROMPTS, id_prefix="syndata"
    )
    jsonl = requests_to_jsonl(prompts)
    print(f"Prepared a batch input with {NUM_PROMPTS} requests "
          f"({len(jsonl.splitlines())} JSONL lines)")

    # Submit the batch.  The gateway validates the file, picks an endpoint and
    # launches a dedicated HPC job that loads the model just for this batch.
    batch = client.create_batch(jsonl)
    print(f"Submitted batch {batch['id']} -> status {batch['status']}")

    # Poll for completion (the batch system reports progress, §4.4).
    final = client.wait_for_batch(batch["id"], poll_every_s=60.0)
    duration = (final["completed_at"] or 0) - final["created_at"]
    tokens = final["output_tokens"]
    print(f"Batch finished with status {final['status']!r}")
    print(f"  requests completed : {final['request_counts']['completed']}/{NUM_PROMPTS}")
    print(f"  synthetic tokens   : {tokens}")
    print(f"  wall time          : {duration:.0f} simulated seconds "
          f"({tokens / max(duration, 1e-9):.0f} tok/s overall, cold start included)")

    # Compare against pushing the same prompts through the interactive path.
    print("\nWhy batch mode?  The same workload sent interactively would share the")
    print("online server with other users and pay per-request gateway/relay overhead;")
    print("the dedicated batch job amortises one model load across every request")
    print("(see benchmarks/bench_batch_mode.py for the measured comparison).")


if __name__ == "__main__":
    main()
