#!/usr/bin/env python3
"""Federation v2 demo: SLO-aware routing over two clusters.

Two clusters host the same model: "east" (the primary — first in the
federation registry) and "west" (a spill cluster with no warm floor).
Traffic follows a diurnal cycle with a flash crowd on top, deliberately
exceeding east's instance ceiling at the peak.

The placement plane handles it end to end:

* the :class:`~repro.placement.SLORouter` watches east's gateway-observed
  p50 against a latency SLO and sheds overflow to west while it breaches
  (with hold-based hysteresis, so shed/recover cannot flap);
* each pool runs the ``federated`` autoscaling policy over the same shared
  :class:`~repro.placement.TopologyView`: west boots an instance when shed
  traffic arrives and drains it (drain-before-terminate) once the fleet's
  queues rebalance;
* a per-tenant capacity reservation guarantees the "vip" tenant concurrent
  slots fleet-wide, enforced by the reservation pipeline stage.

Run:  python examples/federated_slo_routing.py
"""

from repro.autoscale import AutoscaleConfig
from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.gateway import default_middleware_factories
from repro.placement import ReservationMiddleware, SLORouter
from repro.workload import BenchmarkClient, DiurnalArrival, ShareGPTWorkload

MODEL = "meta-llama/Llama-3.1-8B-Instruct"
LATENCY_SLO_S = 10.0


def build_deployment() -> FIRSTDeployment:
    def scaling(floor: int, ceiling: int) -> AutoscaleConfig:
        return AutoscaleConfig(
            policy="federated", min_instances=floor, max_instances=ceiling,
            interval_s=15.0, queue_per_instance=8,
            scale_down_hold_s=60.0, imbalance_ratio=2.0, imbalance_hold_s=30.0,
        )

    factories = default_middleware_factories()
    factories.insert(2, ReservationMiddleware.factory())

    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="east", kind="small", num_nodes=2, scheduler="pbs",
                models=[ModelDeploymentSpec(
                    MODEL, max_instances=2, max_parallel_tasks=8,
                    autoscale=scaling(floor=1, ceiling=2),
                )],
            ),
            ClusterDeploymentSpec(
                name="west", kind="small", num_nodes=2, scheduler="pbs",
                models=[ModelDeploymentSpec(
                    MODEL, max_instances=1, max_parallel_tasks=8,
                    autoscale=scaling(floor=0, ceiling=1),
                )],
            ),
        ],
        users=["demo@anl.gov", "vip@anl.gov"],
        generate_text=False,
    )
    deployment = FIRSTDeployment(config)
    deployment.config.gateway.middleware_factories = factories
    # Rebuild the pipeline so the reservation stage is part of the chain.
    from repro.gateway.pipeline import GatewayPipeline
    gw = deployment.gateway
    gw.pipeline = GatewayPipeline([f(gw) for f in factories])
    # Swap the paper's priority router for the SLO-aware one.
    gw.router = SLORouter(
        deployment.topology, default_slo_s=LATENCY_SLO_S,
        breach_hold_s=20.0, recover_ratio=0.6, recover_hold_s=60.0,
    )
    gw.config.routing_cache_ttl_s = 5.0
    return deployment


def main() -> None:
    deployment = build_deployment()
    print("Federation v2 fleet:", ", ".join(deployment.clusters))

    deployment.warm_up(MODEL, instances=1, endpoint_id="ep-east")
    client = deployment.client("demo@anl.gov")

    # Diurnal day/night traffic whose peak exceeds east's 2-instance
    # ceiling: the placement plane has to recruit west to hold the SLO.
    arrival = DiurnalArrival(base_rate=0.3, peak_rate=6.5, period_s=400.0, seed=7)
    requests = ShareGPTWorkload().generate(MODEL, num_requests=2000)
    bench = BenchmarkClient(deployment.env, client, label="federation-v2")
    proc = deployment.env.process(
        bench.run(requests, arrival=arrival, summary_label="slo+federated")
    )
    summary = deployment.env.run(until=proc)

    print(f"\n{summary.row()}")
    print(f"p99 latency        : {summary.p99_latency_s:.2f}s (SLO p50 {LATENCY_SLO_S:.0f}s)")

    router = deployment.gateway.router
    print("\nRouting decisions  :", dict(router.decisions_by_endpoint))
    print("Decision rules     :", dict(router.decisions_by_rule))
    transitions = router.shed_transitions(MODEL, "demo@anl.gov")
    print("Shed transitions   :",
          [("shed" if s else "recover", round(t, 1)) for t, s in transitions])

    for name in ("east", "west"):
        pool = deployment.endpoints[f"ep-{name}"].pools[MODEL]
        snap = pool.replicas.snapshot()
        print(f"{name:<5s} scale events : launches={snap['launches']} "
              f"drains={snap['drains']} "
              f"shifts_out={getattr(pool.replicas.policy, 'shifts_out', 0)}")

    gpu_hours = sum(s.gpu_seconds() for s in deployment.schedulers.values()) / 3600.0
    print(f"Fleet GPU-hours    : {gpu_hours:.2f}")

    # Per-tenant capacity reservations: hand the whole fleet to the vip
    # tenant and watch the reservation stage admit vip while rejecting
    # best-effort traffic with a typed overloaded_error envelope.
    capacity = deployment.topology.fleet_slot_capacity(MODEL)
    deployment.topology.reserve("vip@anl.gov", MODEL, capacity)
    print(f"\nReserved all {capacity} fleet slots of {MODEL} for vip@anl.gov")
    vip = deployment.client("vip@anl.gov")
    response = vip.chat_completion(
        MODEL, [{"role": "user", "content": "priority lane, please"}], max_tokens=16)
    print(f"vip request served : {response['usage']['completion_tokens']} tokens")
    besteffort = deployment.client("demo@anl.gov", raise_on_error=False)
    rejected = besteffort.chat_completion(
        MODEL, [{"role": "user", "content": "standby"}], max_tokens=16)
    print(f"best-effort request: {rejected['error']['type']} "
          f"({rejected['error']['code']})")


if __name__ == "__main__":
    main()
