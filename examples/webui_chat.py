#!/usr/bin/env python3
"""Web chat interface walk-through (§4.7).

The Open-WebUI-like front-end authenticates the user, only lists models that
are currently *running*, keeps per-session chat histories, supports a
multi-column comparison of several models, and forwards every turn to the
Inference Gateway.

Run:  python examples/webui_chat.py
"""

from repro.core import FIRSTDeployment
from repro.webui import WebUIServer

MODEL_A = "Qwen/Qwen2.5-7B-Instruct"
MODEL_B = "meta-llama/Llama-3.1-8B-Instruct"


def main() -> None:
    deployment = FIRSTDeployment.quickstart()
    # Keep both chat models hot so they appear in the dropdown.
    deployment.warm_up(MODEL_A)
    deployment.warm_up(MODEL_B)

    webui = WebUIServer(deployment)
    print("Models shown in the WebUI dropdown (running only):")
    for model in webui.available_models():
        print("   -", model)

    # A chat session: the history accumulates turn by turn.
    session = webui.new_session("researcher@anl.gov", MODEL_A)
    print(f"\nStarted session {session.session_id} with {MODEL_A}")
    for turn, prompt in enumerate(
        ["What queues exist on this system?",
         "Which one should I use for a 30-minute test?",
         "And how do I request GPUs there?"],
        start=1,
    ):
        reply = webui.chat_turn_blocking(session.session_id, prompt, output_tokens=60)
        print(f"  turn {turn}: prompt tokens so far = {session.history_tokens:4d} | "
              f"reply: {reply[:80]}...")

    # Multi-column comparison: the same question to two models side by side.
    print("\nComparing two models on the same question:")
    answers = webui.compare(
        "researcher@anl.gov", [MODEL_A, MODEL_B],
        "Summarise the difference between the debug and production queues.",
        output_tokens=48,
    )
    for model, answer in answers.items():
        print(f"  [{model}] {answer[:90]}...")

    print(f"\nTurns served by the WebUI backend: {webui.turns_served}")
    print(f"Stored sessions: {len(webui.sessions)}")


if __name__ == "__main__":
    main()
