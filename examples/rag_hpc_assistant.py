#!/usr/bin/env python3
"""Case study §6.2 — an HPC assistant built from FIRST's embedding + chat services.

NV-Embed-v2 embeds facility documentation into a vector index (the FAISS
substitute in :mod:`repro.rag`); at question time the most relevant passages
are retrieved and folded into the prompt sent to the LLM.

Run:  python examples/rag_hpc_assistant.py
"""

from repro.core import FIRSTDeployment
from repro.rag import RAGPipeline, hpc_documentation_corpus

CHAT_MODEL = "Qwen/Qwen2.5-7B-Instruct"
EMBED_MODEL = "nvidia/NV-Embed-v2"

QUESTIONS = [
    "How do I submit a job with PBS and check its status?",
    "How much local SSD scratch does each compute node have?",
    "What is the walltime limit of the debug queue?",
    "How should I run an Apptainer container that uses MPI?",
]


def main() -> None:
    deployment = FIRSTDeployment.quickstart()
    client = deployment.client("researcher@anl.gov")

    # Build the assistant: embed the documentation corpus through the
    # service's /v1/embeddings endpoint and index it.
    pipeline = RAGPipeline(
        client=client,
        embedding_model=EMBED_MODEL,
        chat_model=CHAT_MODEL,
        top_k=3,
    )
    corpus = hpc_documentation_corpus()
    n_chunks = pipeline.ingest(corpus)
    print(f"Indexed {len(corpus)} documentation pages as {n_chunks} chunks "
          f"using {EMBED_MODEL}")

    for question in QUESTIONS:
        answer = pipeline.answer(question, max_tokens=96)
        print("\nQ:", question)
        print("  retrieved:", ", ".join(answer.sources))
        print("  A:", answer.answer[:180], "...")

    dashboard = client.dashboard()
    print("\nService usage for this session:")
    print(f"  embedding + chat requests: {dashboard['total_completed']}")
    print(f"  output tokens            : {dashboard['total_output_tokens']}")


if __name__ == "__main__":
    main()
