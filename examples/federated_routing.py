#!/usr/bin/env python3
"""Federation walk-through (§4.5): one API, two clusters.

A Sophia-like and a Polaris-like cluster both host the same model behind a
single cluster-agnostic API URL.  The gateway's priority router sends each
request to (1) an endpoint where the model is already active, else (2) a
cluster with free nodes, else (3) the first configured endpoint.

Run:  python examples/federated_routing.py
"""

from repro.cluster import JobRequest
from repro.core import FIRSTDeployment

MODEL = "meta-llama/Llama-3.1-8B-Instruct"


def show_jobs(client) -> None:
    for job in client.jobs():
        print(f"    {job['cluster']:<8s} {job['model']:<40s} {job['state']}")


def main() -> None:
    deployment = FIRSTDeployment.federated(model=MODEL, sophia_nodes=2, polaris_nodes=2)
    client = deployment.client("benchmark@anl.gov")
    print("Federated deployment:", ", ".join(deployment.clusters))

    # Scenario 1: nothing is running anywhere -> the router picks the first
    # cluster with free nodes (sophia) and triggers a cold start there.
    print("\n[1] Cold federation, first request:")
    show_jobs(client)
    response = client.chat_completion(MODEL, [{"role": "user", "content": "hello"}],
                                      max_tokens=32)
    decision = deployment.gateway.router.decisions[-1]
    print(f"    routed by rule {decision.rule!r} to {decision.cluster}")
    show_jobs(client)

    # Scenario 2: the model is now hot on sophia -> rule 1 keeps routing there
    # for low latency, even though polaris also has free nodes.
    print("\n[2] Warm instance wins (rule 1):")
    t0 = deployment.now
    client.chat_completion(MODEL, [{"role": "user", "content": "again"}], max_tokens=32)
    print(f"    warm-path latency: {deployment.now - t0:.1f}s on "
          f"{deployment.gateway.router.decisions[-1].cluster}")

    # Scenario 3: sophia becomes fully busy with other users' jobs and its
    # instance is retired; new demand flows to polaris (rule 2).
    print("\n[3] Sophia busy -> requests flow to polaris (rule 2):")
    endpoint = deployment.endpoints["ep-sophia"]
    for pool in endpoint.pools.values():
        pool.shutdown()
    scheduler = deployment.schedulers["sophia"]
    for i in range(len(deployment.clusters["sophia"].nodes)):
        scheduler.submit(JobRequest(f"other-user-{i}", num_nodes=1, walltime_s=7200.0))
    deployment.run_for(30.0)
    deployment.gateway._routing_cache.clear()  # drop the 30 s routing cache

    client.chat_completion(MODEL, [{"role": "user", "content": "busy sophia"}], max_tokens=32)
    decision = deployment.gateway.router.decisions[-1]
    print(f"    routed by rule {decision.rule!r} to {decision.cluster}")
    show_jobs(client)

    print("\nRouting decision log:")
    for d in deployment.gateway.router.decisions:
        print(f"    {d.model} -> {d.cluster:<8s} ({d.rule})")


if __name__ == "__main__":
    main()
