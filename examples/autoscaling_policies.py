#!/usr/bin/env python3
"""Autoscaling policies under a diurnal workload.

Runs the same day/night traffic cycle twice against a FIRST deployment —
once with the reactive queue-depth policy (the legacy endpoint heuristic,
which never scales down) and once with the predictive EWMA/Holt policy
(which pre-warms one cold start ahead of the morning ramp and drains the
night trough) — and prints the scale-event timelines plus the latency and
GPU-hour trade-off.

Everything runs inside the deterministic simulation: no GPUs needed, and
the run finishes in a few seconds.

Run:  python examples/autoscaling_policies.py
"""

from repro.core import (
    AutoscaleConfig,
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.workload import BenchmarkClient, DiurnalArrival, ShareGPTWorkload

MODEL = "meta-llama/Llama-3.3-70B-Instruct"
PERIOD_S = 500.0        # one compressed "day"
BASE, PEAK = 0.2, 4.0   # night vs noon request rate (req/s)
NUM_REQUESTS = 1200


def autoscale_config(policy: str) -> AutoscaleConfig:
    common = dict(min_instances=1, max_instances=3, interval_s=15.0)
    if policy == "queue_depth":
        return AutoscaleConfig(policy="queue_depth", queue_per_instance=8,
                               scale_down=False, **common)
    return AutoscaleConfig(policy="predictive", ewma_alpha=0.4, trend_beta=0.3,
                           instance_rps=1.8, headroom=0.2,
                           scale_down_hold_s=90.0, **common)


def run_policy(policy: str) -> dict:
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="hpc", kind="sophia", num_nodes=4, scheduler="pbs",
                models=[ModelDeploymentSpec(MODEL, max_instances=3,
                                            max_parallel_tasks=8,
                                            autoscale=autoscale_config(policy))],
            )
        ],
        users=["ops@anl.gov"],
        generate_text=False,
    )
    deployment = FIRSTDeployment(config)
    deployment.warm_up(MODEL, instances=1)
    client = deployment.client("ops@anl.gov")

    arrival = DiurnalArrival(BASE, PEAK, period_s=PERIOD_S, seed=11)
    requests = ShareGPTWorkload().generate(MODEL, num_requests=NUM_REQUESTS)
    bench = BenchmarkClient(deployment.env, client, label=policy)
    proc = deployment.env.process(bench.run(requests, arrival=arrival))
    summary = deployment.env.run(until=proc)

    pool = deployment.endpoints["ep-hpc"].pools[MODEL]
    scheduler = deployment.schedulers["hpc"]
    gpu_hours = scheduler.gpu_seconds() / 3600.0
    deployment.run_for(400.0)  # quiet night: scale-down policies drain

    return {
        "summary": summary,
        "actions": pool.replicas.actions,
        "gpu_hours": gpu_hours,
        "final_ready": len(pool.ready_instances),
        "jobs_drained": scheduler.jobs_drained,
    }


def main() -> None:
    print(f"Two compressed days of {BASE:g}->{PEAK:g} req/s diurnal traffic "
          f"against {MODEL}\n(1-3 instances, ~68 s cold start per instance)\n")
    results = {}
    for policy in ("queue_depth", "predictive"):
        results[policy] = run_policy(policy)
        r = results[policy]
        s = r["summary"]
        print(f"=== {policy} ===")
        print(f"  p50 latency : {s.median_latency_s:7.2f} s")
        print(f"  p99 latency : {s.p99_latency_s:7.2f} s")
        print(f"  GPU-hours   : {r['gpu_hours']:7.2f}")
        print(f"  scale events ({len(r['actions'])}):")
        for action in r["actions"]:
            print(f"    t={action['time']:7.1f}s  {action['from']} -> "
                  f"{action['to']:<2d} ({action['reason']})")
        print(f"  instances drained back down: {r['jobs_drained']}, "
              f"pool ends at {r['final_ready']} instance(s)\n")

    queue, pred = results["queue_depth"], results["predictive"]
    print("The predictive policy pre-warms before each morning ramp (watch the")
    print("scale-ups land ~1 cold start before the reactive ones) and drains the")
    print("night trough:")
    print(f"  p50: {pred['summary'].median_latency_s:.2f}s vs "
          f"{queue['summary'].median_latency_s:.2f}s   "
          f"p99: {pred['summary'].p99_latency_s:.2f}s vs "
          f"{queue['summary'].p99_latency_s:.2f}s   "
          f"GPU-h: {pred['gpu_hours']:.2f} vs {queue['gpu_hours']:.2f}")


if __name__ == "__main__":
    main()
