"""§4.5 — Federation routing (priority policy vs ablations).

The paper's proof-of-concept federation routes each request to (1) an
endpoint where the model is already active, else (2) a cluster with free
nodes, else (3) the first configured endpoint.  This bench reproduces the
behaviour on a Sophia+Polaris-like two-cluster deployment and quantifies the
benefit of the priority policy against two ablations (first-configured-only
and random) in the scenario that motivates it: the first-priority cluster is
busy with other users' jobs while the second cluster already has the model
hot.
"""

import pytest

from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.federation import FirstConfiguredRouter, PriorityRouter, RandomRouter
from repro.workload import BenchmarkClient, ShareGPTWorkload, UniformArrival

MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"
NUM_REQUESTS = 150


def build_deployment(router_cls):
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="sophia", kind="sophia", num_nodes=2, scheduler="pbs",
                models=[ModelDeploymentSpec(MODEL_8B, max_parallel_tasks=64)],
            ),
            ClusterDeploymentSpec(
                name="polaris", kind="polaris", num_nodes=2, scheduler="pbs",
                models=[ModelDeploymentSpec(MODEL_8B, max_parallel_tasks=64)],
            ),
        ],
        users=["benchmark@anl.gov"],
        generate_text=False,
    )
    deployment = FIRSTDeployment(config)
    # Swap in the requested routing policy.
    deployment.gateway.router = router_cls(deployment.registry)
    # The model is already hot on Polaris (the second-priority endpoint)...
    deployment.warm_up(MODEL_8B, endpoint_id="ep-polaris")
    # ...while Sophia (the first-priority endpoint) is fully occupied by
    # other users' batch jobs for the next ~15 minutes, so a cold start
    # there also has to queue.
    from repro.cluster import JobRequest

    sophia_sched = deployment.schedulers["sophia"]
    for i, _node in enumerate(deployment.clusters["sophia"].nodes):
        sophia_sched.submit(JobRequest(f"other-users-{i}", num_nodes=1, walltime_s=900.0,
                                       metadata={"kind": "background"}))
    deployment.run_for(15.0)  # let the background jobs start and occupy the nodes
    return deployment


def run_policy(router_cls, label):
    deployment = build_deployment(router_cls)
    client = deployment.client("benchmark@anl.gov")
    requests = ShareGPTWorkload().generate(MODEL_8B, num_requests=NUM_REQUESTS)
    bench = BenchmarkClient(deployment.env, client, label=label)
    proc = deployment.env.process(
        bench.run(requests, arrival=UniformArrival(rate=5.0), summary_label=label)
    )
    summary = deployment.env.run(until=proc)
    routed_to = [d.endpoint_id for d in deployment.gateway.router.decisions]
    return summary, routed_to


def run_all_policies():
    out = {}
    for label, cls in [
        ("priority (paper §4.5)", PriorityRouter),
        ("first-configured only", FirstConfiguredRouter),
        ("random", RandomRouter),
    ]:
        out[label] = run_policy(cls, label)
    return out


@pytest.mark.benchmark(group="federation")
def test_federation_routing_policies(benchmark):
    results = benchmark.pedantic(run_all_policies, rounds=1, iterations=1)
    print("\n=== Federation routing: hot model on polaris, sophia busy ===")
    for label, (summary, routed) in results.items():
        to_polaris = sum(1 for r in routed if r == "ep-polaris")
        print(f"  {summary.row()}   routed {to_polaris}/{len(routed)} decisions to polaris")
        benchmark.extra_info[label] = {
            **summary.to_dict(), "decisions_to_polaris": to_polaris,
        }

    priority, _ = results["priority (paper §4.5)"]
    first_only, _ = results["first-configured only"]

    # The priority policy finds the hot instance: every request is fast.
    assert priority.median_latency_s < 20.0
    assert priority.num_successful == NUM_REQUESTS
    # Ignoring cluster state forces a cold start behind other users' jobs on
    # sophia, so median latency is dramatically worse.
    assert first_only.median_latency_s > 3 * priority.median_latency_s
    # The priority router sent (essentially) all decisions to the hot cluster.
    _, routed_priority = results["priority (paper §4.5)"]
    assert routed_priority.count("ep-polaris") >= len(routed_priority) * 0.95
