"""Parallel federated simulation benchmark: sharded clusters vs serial.

Runs one federated deployment (gateway + N compute clusters) under the
conservative synchronous-window engine (:mod:`repro.parallel`) at several
worker counts and reports:

* wall-clock per worker count and the measured speedup over the serial
  (``workers=1``) fallback, plus the window/sync-overhead breakdown
  (windows planned, micro-windows, boundary messages, advance vs sync wall);
* the merged run fingerprint, which must be **bit-identical for every
  worker count** (and, in quick mode, across kernel queue backends);
* the zero-lookahead ping-ring null-message exercise — the conservative
  scheme's deadlock worst case — which must terminate with identical logs
  serial and parallel.

Usage::

    python benchmarks/bench_parallel_federation.py            # full, prints report
    python benchmarks/bench_parallel_federation.py --write    # full + quick, writes BENCH_parallel.json
    python benchmarks/bench_parallel_federation.py --quick --check
        # CI smoke: 2-cluster scenario at 1 and 2 workers; fail on
        # fingerprint divergence, on ping-ring divergence, or on a >20%
        # speedup-ratio regression vs the committed baseline

Speedup gates are parallelism-aware: absolute floors only bind when
``min(workers, cpus)`` actually provides the parallelism (a single-CPU box
can only validate correctness, never speedups), and the baseline records
its own ``cpu_count`` so expectations written on a small machine never
inflate.  Conservative-window PDES is barrier-synchronized, so the floors
are deliberately modest compared to the embarrassingly-parallel sweep
plane.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.parallel import (  # noqa: E402
    ClusterShardSpec,
    FederatedScenario,
    PartitionedDeployment,
    run_ping_ring,
)

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_parallel.json"

#: Full scenario: 4 clusters, enough requests that window advances dominate
#: worker spawn cost on a real multi-core box.
FULL = {"clusters": 4, "num_requests": 3000, "rate": 8.0}
FULL_WORKERS = [1, 2, 4]

#: CI smoke scenario — a PR-gate-sized run, big enough that wall-clocks are
#: dominated by deterministic work rather than process-startup jitter.
QUICK = {"clusters": 2, "num_requests": 1000, "rate": 8.0}
QUICK_WORKERS = [1, 2]

QUEUE_BACKENDS = ["heap", "calendar", "packed"]

#: Fraction of the committed baseline speedup a --check run must retain.
REGRESSION_TOLERANCE = 0.8
#: Absolute speedup floors, armed only for the *full* scenario and only
#: when min(workers, cpus) provides the parallelism.  Deliberately modest:
#: conservative windows are barrier-synchronized (one sync round-trip per
#: window), unlike the embarrassingly-parallel sweep plane.  The quick
#: scenario is gated on correctness and the baseline speedup ratio only —
#: it is too small to amortise worker spawn on any machine.
PARALLEL_SPEEDUP_FLOOR_4W = 1.2
PARALLEL_SPEEDUP_FLOOR_2W = 1.0


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_scenario(config: dict, kernel_queue: str = "heap") -> FederatedScenario:
    shards = [ClusterShardSpec(name=f"cluster{i}")
              for i in range(config["clusters"])]
    return FederatedScenario(clusters=shards,
                             num_requests=config["num_requests"],
                             rate=config["rate"], kernel_queue=kernel_queue)


def run_scenario(name: str, config: dict, workers_list) -> dict:
    print(f"\n=== parallel federation: {name} — {config['clusters']} clusters, "
          f"{config['num_requests']} requests, workers {list(workers_list)} ===")
    runs = {}
    fingerprints = {}
    for workers in workers_list:
        result = PartitionedDeployment(build_scenario(config),
                                       workers=workers).run()
        failed = [r for r in result.records if not r.success]
        if len(result.records) != config["num_requests"] or failed:
            raise RuntimeError(
                f"workers={workers}: {len(result.records)} records, "
                f"{len(failed)} failures")
        fingerprints[workers] = result.fingerprint
        stats = result.stats
        runs[str(workers)] = {
            "wall_s": round(result.wall_s, 3),
            "windows": stats.windows,
            "micro_windows": stats.micro_windows,
            "messages": stats.messages,
            "advance_wall_s": round(stats.advance_wall_s, 3),
            "sync_wall_s": round(stats.sync_wall_s, 3),
        }
        print(f"  workers={workers}: wall={result.wall_s:6.2f}s "
              f"windows={stats.windows} messages={stats.messages} "
              f"advance={stats.advance_wall_s:.2f}s sync={stats.sync_wall_s:.2f}s "
              f"fingerprint={result.fingerprint[:16]}")

    base_wall = runs[str(workers_list[0])]["wall_s"]
    for workers in workers_list:
        runs[str(workers)]["speedup"] = round(
            base_wall / max(runs[str(workers)]["wall_s"], 1e-9), 3)
    identical = len(set(fingerprints.values())) == 1
    speedups = ", ".join(f"{w}w={runs[str(w)]['speedup']:.2f}x"
                         for w in workers_list)
    print(f"  fingerprints identical across worker counts: {identical}")
    print(f"  speedup vs 1 worker: {speedups}")
    return {
        "scenario": dict(config),
        "runs": runs,
        "fingerprint": fingerprints[workers_list[0]],
        "fingerprints_identical": identical,
    }


def run_backend_identity(config: dict) -> dict:
    """Every kernel queue backend must produce the same simulated results."""
    fingerprints = {
        backend: PartitionedDeployment(
            build_scenario(config, kernel_queue=backend)).run().fingerprint
        for backend in QUEUE_BACKENDS
    }
    identical = len(set(fingerprints.values())) == 1
    print(f"  queue backends {QUEUE_BACKENDS} identical: {identical}")
    return {"fingerprints": fingerprints, "identical": identical}


def run_ping_check(partitions: int = 3, hops: int = 30) -> dict:
    """Zero-lookahead null-message exercise: must terminate, identically."""
    start = time.perf_counter()
    serial = run_ping_ring(partitions=partitions, hops=hops, latency_s=0.0,
                           workers=1)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_ping_ring(partitions=partitions, hops=hops, latency_s=0.0,
                             workers=partitions)
    parallel_wall = time.perf_counter() - start
    hops_seen = sorted(h for log in serial.values() for _, h in log)
    ok = serial == parallel and hops_seen == list(range(hops + 1))
    print(f"  ping ring ({partitions}p x {hops} hops, zero lookahead): "
          f"{'OK' if ok else 'FAIL'} "
          f"serial={serial_wall:.2f}s parallel={parallel_wall:.2f}s")
    return {"partitions": partitions, "hops": hops, "ok": ok,
            "serial_wall_s": round(serial_wall, 3),
            "parallel_wall_s": round(parallel_wall, 3)}


def correctness_failures(entry: dict) -> list:
    failures = []
    if not entry["fingerprints_identical"]:
        failures.append("fingerprints differ across worker counts")
    backend = entry.get("backend_identity")
    if backend is not None and not backend["identical"]:
        failures.append("kernel queue backends diverge")
    if not entry["ping"]["ok"]:
        failures.append("zero-lookahead ping ring diverged or deadlocked")
    return failures


def speedup_failures(entry: dict, cpus: int, baseline_entry: dict = None,
                     absolute_floors: bool = True) -> list:
    """Parallelism-aware speedup gates for one scenario entry.

    The baseline-ratio gate (>20% regression fails) applies whenever the
    checking machine has at least the baseline machine's effective
    parallelism — including the 1-CPU-vs-1-CPU case, where it still
    catches sync-overhead blowups.  Absolute floors additionally apply to
    the full scenario when the machine really has the cores.
    """
    failures = []
    for workers_str, run in entry["runs"].items():
        workers = int(workers_str)
        if workers == 1:
            continue
        floors = []
        if baseline_entry is not None:
            ref = baseline_entry["runs"].get(workers_str)
            baseline_cpus = baseline_entry.get("cpu_count", 1)
            if ref is not None and ref["speedup"] > 0 \
                    and min(workers, cpus) >= min(workers, baseline_cpus):
                floors.append(("baseline ratio",
                               ref["speedup"] * REGRESSION_TOLERANCE))
        effective = min(workers, cpus)
        if absolute_floors and effective >= 4:
            floors.append(("4-worker floor", PARALLEL_SPEEDUP_FLOOR_4W))
        elif absolute_floors and effective >= 2:
            floors.append(("2-worker floor", PARALLEL_SPEEDUP_FLOOR_2W))
        for reason, floor in floors:
            if run["speedup"] < floor:
                failures.append(
                    f"workers={workers}: speedup {run['speedup']:.2f}x below "
                    f"{floor:.2f}x ({reason}, {cpus} CPUs)")
    return failures


def run_entry(name: str, config: dict, workers_list, cpus: int,
              with_backends: bool) -> dict:
    entry = run_scenario(name, config, workers_list)
    entry["cpu_count"] = cpus
    if with_backends:
        entry["backend_identity"] = run_backend_identity(
            {**config, "num_requests": min(config["num_requests"], 40)})
    entry["ping"] = run_ping_check()
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true",
                        help="run the small CI scenario instead of the full one")
    parser.add_argument("--write", action="store_true",
                        help="run full + quick and write the baseline JSON")
    parser.add_argument("--check", action="store_true",
                        help="fail on fingerprint/ping divergence or speedup "
                             "regression vs the baseline")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    cpus = cpu_count()
    print(f"machine: {cpus} CPUs")

    if args.write:
        baseline = {
            "cpu_count": cpus,
            "full": run_entry("federation-full", FULL, FULL_WORKERS, cpus,
                              with_backends=False),
            "quick": run_entry("federation-quick", QUICK, QUICK_WORKERS, cpus,
                               with_backends=True),
        }
        failures = (correctness_failures(baseline["full"])
                    + correctness_failures(baseline["quick"])
                    + speedup_failures(baseline["full"], cpus)
                    + speedup_failures(baseline["quick"], cpus,
                                       absolute_floors=False))
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"\nwrote {args.baseline}")
        return 0

    key = "quick" if args.quick else "full"
    config = QUICK if args.quick else FULL
    workers_list = QUICK_WORKERS if args.quick else FULL_WORKERS
    entry = run_entry(f"federation-{key}", config, workers_list, cpus,
                      with_backends=args.quick)

    failures = correctness_failures(entry)
    baseline_entry = None
    if args.check and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        # Worker-count identity is gated absolutely above; the baseline
        # fingerprint is recorded for forensics but not gated, since the
        # workload's RNG stream may shift across numpy versions.
        baseline_entry = baseline.get(key)
    failures.extend(speedup_failures(entry, cpus, baseline_entry,
                                     absolute_floors=(key == "full")))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
