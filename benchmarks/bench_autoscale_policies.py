"""Autoscaling policy sweep: diurnal, flash-crowd and ramp traffic.

Runs the full FIRST stack (gateway → relay → endpoint → engine) with the
autoscaling control plane (`repro.autoscale`) driving a Llama-3.1-8B pool
between 1 and 3 instances under three shifting workloads, once per scaling
policy:

* ``queue_depth``          — the legacy reactive heuristic (never scales down)
* ``target_utilization``   — PID-style busy-fraction control with hysteresis
* ``scheduled``            — a cron-like capacity plan tuned per scenario
* ``predictive``           — EWMA/Holt arrival forecast, pre-warms one
                             cold start ahead of ramps, drains troughs

Reported per run: p50/p99 latency, throughput, GPU-hours (scheduler
job-time accounting), scale events, and the post-quiet-tail pool state
(floor return + leak check).

Acceptance criteria (ISSUE 3, enforced by ``--check`` and at ``--write``):

* predictive beats queue-depth on p50 latency under the diurnal scenario at
  equal or lower GPU-hours;
* a pure scale-up/scale-down cycle returns the pool to its floor with zero
  leaked jobs or routes.

Usage::

    python benchmarks/bench_autoscale_policies.py            # full sweep, prints report
    python benchmarks/bench_autoscale_policies.py --write    # full+quick, writes BENCH_autoscale.json
    python benchmarks/bench_autoscale_policies.py --quick --check
        # CI smoke: small diurnal sweep, fail on an acceptance violation or
        # a large p50 drift vs the committed baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.autoscale import AutoscaleConfig  # noqa: E402
from repro.core import (  # noqa: E402
    ClusterDeploymentSpec,
    DeploymentConfig,
    ModelDeploymentSpec,
)
from repro.sweep import ArrivalSpec, ScenarioSpec, SweepRunner  # noqa: E402
from repro.workload import PoissonArrival  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_autoscale.json"
MODEL = "meta-llama/Llama-3.3-70B-Instruct"

#: Pool geometry: one 70B instance (TP=8, one Sophia-like node) saturates
#: around 2.1 req/s at 8 parallel slots and takes ~68 s to cold-start, so
#: the 0.2 -> 4 req/s swings below force 1 <-> 3 instance cycles where the
#: reactive policy pays a full cold start of queueing at every ramp.
MAX_INSTANCES = 3
SLOTS = 8
FLOOR = 1
INSTANCE_RPS = 1.8
QUIET_TAIL_S = 420.0

FULL = {
    "diurnal": {"base": 0.2, "peak": 4.0, "period_s": 500.0, "cycles": 2.0},
    "ramp": {"start": 0.2, "end": 4.0, "ramp_s": 400.0, "hold_s": 200.0},
    "flash": {"calm": 0.4, "burst": 5.0, "burst_at_s": 240.0,
              "burst_s": 60.0, "end_s": 600.0},
}
#: CI smoke: the same diurnal shape (the acceptance scenario), two policies.
#: A faster cycle would under-sell the forecast honestly — a 90 s quarter-
#: period approaches the 68 s cold start, where nothing can pre-warm in time.
QUICK = {
    "diurnal": {"base": 0.2, "peak": 4.0, "period_s": 500.0, "cycles": 2.0},
}
FULL_POLICIES = ["queue_depth", "target_utilization", "scheduled", "predictive"]
QUICK_POLICIES = ["queue_depth", "predictive"]

#: --check tolerance on per-run p50 drift vs the committed baseline.  Runs
#: are deterministic, so this only absorbs numeric drift across
#: numpy/python versions.
P50_TOLERANCE = 0.20


# ------------------------------------------------------------------ scenarios
def make_arrival_spec_and_count(scenario: str, params: dict):
    if scenario == "diurnal":
        arrival = ArrivalSpec(kind="diurnal", seed=11, params={
            "base_rate": params["base"], "peak_rate": params["peak"],
            "period_s": params["period_s"]})
        duration = params["period_s"] * params["cycles"]
        mean_rate = (params["base"] + params["peak"]) / 2.0
        return arrival, int(mean_rate * duration)
    if scenario == "ramp":
        arrival = ArrivalSpec(kind="ramp", seed=31, params={
            "start_rate": params["start"], "end_rate": params["end"],
            "ramp_s": params["ramp_s"]})
        mean_ramp = (params["start"] + params["end"]) / 2.0
        n = int(mean_ramp * params["ramp_s"] + params["end"] * params["hold_s"])
        return arrival, n
    if scenario == "flash":
        # A flash crowd is not a closed-form process: build the trace from
        # three Poisson segments and replay it.
        calm = [t for t in PoissonArrival(params["calm"], seed=21).offsets(2000)
                if t < params["burst_at_s"]]
        burst = [params["burst_at_s"] + t
                 for t in PoissonArrival(params["burst"], seed=22).offsets(2000)
                 if t < params["burst_s"]]
        tail_start = params["burst_at_s"] + params["burst_s"]
        tail = [tail_start + t
                for t in PoissonArrival(params["calm"], seed=23).offsets(2000)
                if t < params["end_s"] - tail_start]
        trace = sorted(calm + burst + tail)
        arrival = ArrivalSpec(kind="trace",
                              params={"trace": trace, "name": "flash-crowd"})
        return arrival, len(trace)
    raise ValueError(f"unknown scenario {scenario!r}")


def autoscale_config(policy: str, scenario: str, params: dict) -> AutoscaleConfig:
    common = dict(min_instances=FLOOR, max_instances=MAX_INSTANCES, interval_s=15.0)
    if policy == "queue_depth":
        # The legacy endpoint heuristic, verbatim: reactive scale-up at 8
        # waiting tasks per ready instance, never scales down.
        return AutoscaleConfig(policy="queue_depth", queue_per_instance=8,
                               scale_down=False, **common)
    if policy == "target_utilization":
        return AutoscaleConfig(policy="target_utilization",
                               target_utilization=0.6, deadband=0.2,
                               cooldown_up_s=30.0, cooldown_down_s=90.0, **common)
    if policy == "scheduled":
        if scenario == "diurnal":
            period = params["period_s"]
            schedule = [(0.0, 1), (0.15 * period, 2), (0.25 * period, 3),
                        (0.75 * period, 2), (0.85 * period, 1)]
            return AutoscaleConfig(policy="scheduled", schedule=schedule,
                                   schedule_period_s=period, **common)
        if scenario == "ramp":
            schedule = [(0.0, 1), (0.3 * params["ramp_s"], 2),
                        (0.7 * params["ramp_s"], 3)]
        else:  # flash: the operator knows when the sale starts
            schedule = [(0.0, 1), (params["burst_at_s"] - 60.0, 3),
                        (params["burst_at_s"] + params["burst_s"] + 120.0, 1)]
        return AutoscaleConfig(policy="scheduled", schedule=schedule,
                               schedule_period_s=10 * 86400.0, **common)
    if policy == "predictive":
        return AutoscaleConfig(policy="predictive", ewma_alpha=0.4,
                               trend_beta=0.3, instance_rps=INSTANCE_RPS,
                               headroom=0.2, scale_down_hold_s=90.0, **common)
    raise ValueError(f"unknown policy {policy!r}")


# ------------------------------------------------------------------ one run
def build_cell(policy: str, scenario: str, params: dict) -> ScenarioSpec:
    """One (policy, scenario) cell on the full FIRST stack."""
    arrival, num_requests = make_arrival_spec_and_count(scenario, params)
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="autoscale", kind="sophia", num_nodes=MAX_INSTANCES + 1,
                scheduler="pbs",
                models=[ModelDeploymentSpec(
                    MODEL, max_instances=MAX_INSTANCES,
                    max_parallel_tasks=SLOTS,
                    autoscale=autoscale_config(policy, scenario, params),
                )],
            )
        ],
        users=["benchmark@anl.gov"],
        generate_text=False,
    )
    return ScenarioSpec(
        key=f"autoscale/{scenario}/{policy}",
        runner="autoscale_policy",
        model=MODEL,
        num_requests=num_requests,
        arrival=arrival,
        params={"deployment": config, "policy": policy, "scenario": scenario,
                "floor": FLOOR, "quiet_tail_s": QUIET_TAIL_S},
        tags={"scenario": scenario, "policy": policy},
    )


# ------------------------------------------------------------------ sweep + checks
def run_sweep(scenarios: dict, policies) -> list:
    cells = [build_cell(policy, scenario, params)
             for scenario, params in scenarios.items()
             for policy in policies]
    workers = int(os.environ.get("BENCH_SWEEP_WORKERS", "1"))
    result = SweepRunner(workers=workers).run(cells)
    if not result.ok:
        for failure in result.failures:
            print(f"FAIL: {failure.key}\n{failure.error}")
        raise RuntimeError(f"{len(result.failures)} autoscale cells failed")
    entries = []
    for shard in result:
        entry = shard.payload["entry"]
        print_entry(entry)
        entries.append(entry)
    return entries


def print_entry(e: dict) -> None:
    print(f"  {e['scenario']:<8s} {e['policy']:<19s} "
          f"p50={e['p50_latency_s']:>7.2f}s p99={e['p99_latency_s']:>7.2f}s "
          f"gpu-h={e['gpu_hours']:>6.2f} peak={e['peak_instances']} "
          f"drains={e['drains']} final={e['final_ready']} "
          f"leaked_jobs={max(0, e['active_jobs_after_tail'] - e['final_ready'])}")


def find(entries, scenario, policy):
    for e in entries:
        if e["scenario"] == scenario and e["policy"] == policy:
            return e
    return None


def acceptance_failures(entries) -> list:
    failures = []
    queue = find(entries, "diurnal", "queue_depth")
    pred = find(entries, "diurnal", "predictive")
    if queue and pred:
        if pred["p50_latency_s"] >= queue["p50_latency_s"]:
            failures.append(
                f"predictive p50 {pred['p50_latency_s']}s does not beat "
                f"queue_depth p50 {queue['p50_latency_s']}s under diurnal load"
            )
        if pred["gpu_hours"] > queue["gpu_hours"] + 1e-9:
            failures.append(
                f"predictive gpu-hours {pred['gpu_hours']} exceed "
                f"queue_depth gpu-hours {queue['gpu_hours']}"
            )
    for e in entries:
        if e["num_successful"] != e["num_requests"]:
            failures.append(f"{e['scenario']}/{e['policy']}: "
                            f"{e['num_requests'] - e['num_successful']} requests failed")
        if not e["route_probe_ok"]:
            failures.append(f"{e['scenario']}/{e['policy']}: route probe failed "
                            "after the scale cycle")
        # No leaked jobs, ever: every active scheduler job must back a live
        # (provisioned or draining) instance.
        expected_jobs = e["final_provisioned"] + e["final_draining"]
        if e["active_jobs_after_tail"] != expected_jobs:
            failures.append(f"{e['scenario']}/{e['policy']}: leaked scheduler "
                            f"jobs ({e['active_jobs_after_tail']} active for "
                            f"{expected_jobs} live instances)")
        # Demand-driven scale-down policies must land back on the floor after
        # the quiet tail (a cron plan legitimately keeps following its plan).
        if e["drains"] > 0 and e["policy"] != "scheduled":
            if e["final_ready"] != FLOOR or e["final_draining"] != 0:
                failures.append(f"{e['scenario']}/{e['policy']}: pool did not "
                                f"return to floor ({e['final_ready']} ready, "
                                f"{e['final_draining']} draining)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI sweep (diurnal, queue_depth vs predictive)")
    parser.add_argument("--write", action="store_true",
                        help="run full + quick sweeps and write the baseline JSON")
    parser.add_argument("--check", action="store_true",
                        help="fail on acceptance violations or p50 drift vs baseline")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    if args.write:
        print("=== autoscaling policy sweep (full) ===")
        full = run_sweep(FULL, FULL_POLICIES)
        print("=== autoscaling policy sweep (quick) ===")
        quick = run_sweep(QUICK, QUICK_POLICIES)
        failures = acceptance_failures(full) + acceptance_failures(quick)
        if failures:
            for f in failures:
                print(f"FAIL: {f}")
            return 1
        args.baseline.write_text(
            json.dumps({"full": full, "quick": quick}, indent=2) + "\n"
        )
        print(f"\nwrote {args.baseline}")
        return 0

    key = "quick" if args.quick else "full"
    scenarios = QUICK if args.quick else FULL
    policies = QUICK_POLICIES if args.quick else FULL_POLICIES
    print(f"=== autoscaling policy sweep ({key}) ===")
    entries = run_sweep(scenarios, policies)

    failures = acceptance_failures(entries)
    if args.check and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())[key]
        for entry in entries:
            ref = find(baseline, entry["scenario"], entry["policy"])
            if ref is None:
                continue
            expected = ref["p50_latency_s"]
            got = entry["p50_latency_s"]
            if expected > 0 and abs(got - expected) / expected > P50_TOLERANCE:
                failures.append(
                    f"{entry['scenario']}/{entry['policy']}: p50 {got}s drifted "
                    f">{P50_TOLERANCE:.0%} from baseline {expected}s"
                )
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("OK: autoscaling acceptance criteria hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
