"""Streaming TTFT/ITL — gateway-observed first-token latency vs. end-to-end.

The paper's interactive WebUI traffic (Table 1) cares about time-to-first-
token and inter-token latency, but API v1 discarded the ``stream`` flag and
those metrics were only measurable inside the serving engine.  Gateway API
v2 honours ``stream=True`` end to end: the engine publishes one event per
token at its real iteration timing, the events ride a stream channel through
the relay, and the gateway timestamps each one.

This harness sweeps the offered request rate and reports, for the same
ShareGPT workload:

* non-streaming median end-to-end latency (the only latency API v1 exposed);
* streaming median TTFT and median ITL as observed at the gateway.

Asserted shape: at every rate the streaming TTFT is well below the full
response latency (the first token skips the decode of the remaining ~200+
output tokens and the result-retrieval hop), and ITL stays near the engine's
per-token decode time.
"""

import pytest

from _harness import (
    MODEL_8B,
    print_table,
    run_first_scenario,
    summaries_to_extra_info,
)

RATES = [1.0, 5.0, 10.0]
NUM_REQUESTS = 200


def _rate_label(rate):
    return "inf" if rate is None else f"{rate:g} req/s"


def run_sweep():
    results = {}
    for rate in RATES:
        results[("plain", rate)] = run_first_scenario(
            MODEL_8B, NUM_REQUESTS, rate,
            label=f"FIRST no-stream @ {_rate_label(rate)}",
        )
        results[("stream", rate)] = run_first_scenario(
            MODEL_8B, NUM_REQUESTS, rate,
            label=f"FIRST stream @ {_rate_label(rate)}",
            stream=True,
        )
    return results


@pytest.mark.benchmark(group="streaming-ttft")
def test_streaming_ttft_vs_latency(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    summaries = [results[(mode, rate)] for rate in RATES for mode in ("plain", "stream")]
    print_table("Streaming: gateway-observed TTFT/ITL vs end-to-end latency "
                "(Llama 3.1 8B)", summaries)
    for rate in RATES:
        s = results[("stream", rate)]
        print(f"  stream @ {_rate_label(rate):>9s}: "
              f"TTFT={s.median_ttft_s:.2f}s ITL={s.median_itl_s * 1000:.1f}ms "
              f"vs median latency {results[('plain', rate)].median_latency_s:.2f}s")
    benchmark.extra_info.update(summaries_to_extra_info(summaries))

    for rate in RATES:
        plain = results[("plain", rate)]
        stream = results[("stream", rate)]
        # Everything completed in both modes.
        assert plain.num_successful == NUM_REQUESTS
        assert stream.num_successful == NUM_REQUESTS
        # Streaming exposes TTFT/ITL through the gateway; non-streaming can't.
        assert stream.median_ttft_s is not None
        assert stream.median_itl_s is not None
        # First token arrives well before the full response: the gap covers
        # the remaining decode plus the whole result-retrieval hop (>1 s of
        # relay routing + result latency).
        assert stream.median_ttft_s < 0.85 * plain.median_latency_s
        assert plain.median_latency_s - stream.median_ttft_s > 1.0
        # ITL is on the order of the per-token decode time, far below a second.
        assert stream.median_itl_s < 0.25
        # Streaming does not change the end-to-end completion behaviour.
        assert stream.median_latency_s == pytest.approx(plain.median_latency_s, rel=0.25)

    # TTFT grows with load but stays below the saturated full-response latency.
    assert results[("stream", RATES[0])].median_ttft_s <= results[
        ("stream", RATES[-1])
    ].median_ttft_s * 1.5
