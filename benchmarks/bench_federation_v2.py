"""Federation v2 sweep: routing policy x cross-cluster scaling policy.

The scenario that motivates the placement plane: demand concentrates on the
primary cluster ("east") because the paper's priority rule pins every
request to the active instance there, while the secondary cluster ("west")
idles.  Peak traffic exceeds east's instance ceiling, so the only way to
hold the latency SLO is to *use the fleet*: shed requests to west
(SLO-aware routing) and shift replica capacity between the clusters on
sustained queue imbalance (federated autoscaling).

Swept combinations (router + per-cluster scaling policy):

* ``priority+queue_depth``     — the paper's §4.5 rule + the legacy
                                 reactive heuristic (never scales down)
* ``least_loaded+queue_depth`` — spread by queue depth/busy fraction
* ``slo+queue_depth``          — shed on SLO breach, plain local scaling
* ``priority+federated``       — paper routing, cross-cluster shifting
* ``slo+federated``            — the full Federation v2 placement plane

Reported per run: p50/p99 latency, throughput, fleet GPU-hours (both
schedulers), per-endpoint routing decisions, scale events and capacity
shifts, plus post-quiet-tail leak checks.

Acceptance criteria (ISSUE 4, enforced by ``--check`` and at ``--write``):

* ``slo+federated`` beats ``priority+queue_depth`` on p99 latency at equal
  or lower GPU-hours under the imbalanced diurnal scenario;
* the paper's priority rule itself keeps reproducing (its ablation parity
  is asserted separately by ``bench_federation.py``).

Usage::

    python benchmarks/bench_federation_v2.py            # full sweep, prints report
    python benchmarks/bench_federation_v2.py --write    # full+quick, writes BENCH_federation.json
    python benchmarks/bench_federation_v2.py --quick --check
        # CI smoke: two-combo diurnal sweep, fail on an acceptance violation
        # or a large p99 drift vs the committed baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.autoscale import AutoscaleConfig  # noqa: E402
from repro.core import (  # noqa: E402
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.placement import LeastLoadedRouter, PriorityRouter, SLORouter  # noqa: E402
from repro.workload import (  # noqa: E402
    BenchmarkClient,
    DiurnalArrival,
    PoissonArrival,
    ShareGPTWorkload,
    TraceReplayArrival,
)

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_federation.json"
MODEL = "meta-llama/Llama-3.3-70B-Instruct"

#: One 70B instance (TP=8) saturates around 2.1 req/s at 8 slots; the peak
#: below exceeds the primary cluster's 2-instance ceiling, so only a fleet
#: that routes AND scales across clusters can absorb it.
MAX_INSTANCES = 2
SLOTS = 8
QUIET_TAIL_S = 600.0
LATENCY_SLO_S = 15.0

FULL_SCENARIOS = {
    "diurnal": {"base": 0.2, "peak": 6.0, "period_s": 500.0, "cycles": 2.0},
    "flash": {"calm": 0.4, "burst": 6.0, "burst_at_s": 240.0,
              "burst_s": 90.0, "end_s": 700.0},
}
FULL_COMBOS = {
    "diurnal": [
        "priority+queue_depth",
        "least_loaded+queue_depth",
        "slo+queue_depth",
        "priority+federated",
        "slo+federated",
    ],
    "flash": ["priority+queue_depth", "slo+federated"],
}
QUICK_SCENARIOS = {
    "diurnal": {"base": 0.2, "peak": 6.0, "period_s": 500.0, "cycles": 2.0},
}
QUICK_COMBOS = {"diurnal": ["priority+queue_depth", "slo+federated"]}

#: --check tolerance on per-run p99 drift vs the committed baseline.
P99_TOLERANCE = 0.25


# ------------------------------------------------------------------ scenarios
def make_arrival_and_count(scenario: str, params: dict):
    if scenario == "diurnal":
        arrival = DiurnalArrival(params["base"], params["peak"],
                                 period_s=params["period_s"], seed=11)
        duration = params["period_s"] * params["cycles"]
        mean_rate = (params["base"] + params["peak"]) / 2.0
        return arrival, int(mean_rate * duration)
    if scenario == "flash":
        calm = [t for t in PoissonArrival(params["calm"], seed=21).offsets(4000)
                if t < params["burst_at_s"]]
        burst = [params["burst_at_s"] + t
                 for t in PoissonArrival(params["burst"], seed=22).offsets(4000)
                 if t < params["burst_s"]]
        tail_start = params["burst_at_s"] + params["burst_s"]
        tail = [tail_start + t
                for t in PoissonArrival(params["calm"], seed=23).offsets(4000)
                if t < params["end_s"] - tail_start]
        trace = sorted(calm + burst + tail)
        return TraceReplayArrival(trace, name="flash-crowd"), len(trace)
    raise ValueError(f"unknown scenario {scenario!r}")


# ------------------------------------------------------------------ deployment
def autoscale_config(policy: str, floor: int, ceiling: int) -> AutoscaleConfig:
    common = dict(min_instances=floor, max_instances=ceiling,
                  interval_s=15.0, queue_per_instance=SLOTS)
    if policy == "queue_depth":
        # The legacy heuristic verbatim: reactive scale-up, never down.
        return AutoscaleConfig(policy="queue_depth", scale_down=False, **common)
    if policy == "federated":
        return AutoscaleConfig(policy="federated", scale_down_hold_s=60.0,
                               imbalance_ratio=2.0, imbalance_hold_s=15.0,
                               **common)
    raise ValueError(f"unknown scaling policy {policy!r}")


def build_deployment(scaling: str) -> FIRSTDeployment:
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="east", kind="sophia", num_nodes=MAX_INSTANCES + 1,
                scheduler="pbs",
                models=[ModelDeploymentSpec(
                    MODEL, max_instances=MAX_INSTANCES, max_parallel_tasks=SLOTS,
                    autoscale=autoscale_config(scaling, floor=1,
                                               ceiling=MAX_INSTANCES),
                )],
            ),
            # West is the spill cluster: one instance of headroom the
            # placement plane may recruit when east saturates.
            ClusterDeploymentSpec(
                name="west", kind="sophia", num_nodes=2,
                scheduler="pbs",
                models=[ModelDeploymentSpec(
                    MODEL, max_instances=1, max_parallel_tasks=SLOTS,
                    autoscale=autoscale_config(scaling, floor=0, ceiling=1),
                )],
            ),
        ],
        users=["benchmark@anl.gov"],
        generate_text=False,
    )
    deployment = FIRSTDeployment(config)
    # Routing decisions must track shifting load faster than the default
    # 30 s cache; identical for every combo so the comparison is fair.
    deployment.gateway.config.routing_cache_ttl_s = 5.0
    return deployment


def make_router(name: str, deployment: FIRSTDeployment):
    view = deployment.topology
    if name == "priority":
        return PriorityRouter(view)
    if name == "least_loaded":
        return LeastLoadedRouter(view)
    if name == "slo":
        return SLORouter(view, default_slo_s=LATENCY_SLO_S,
                         breach_hold_s=20.0, recover_ratio=0.6,
                         recover_hold_s=60.0)
    raise ValueError(f"unknown router {name!r}")


# ------------------------------------------------------------------ one run
def run_combo(combo: str, scenario: str, params: dict) -> dict:
    router_name, scaling = combo.split("+")
    arrival, num_requests = make_arrival_and_count(scenario, params)
    deployment = build_deployment(scaling)
    deployment.gateway.router = make_router(router_name, deployment)

    deployment.warm_up(MODEL, instances=1, endpoint_id="ep-east")
    client = deployment.client("benchmark@anl.gov")
    warm = client.submit(
        ShareGPTWorkload().generate(MODEL, num_requests=1, id_prefix="warmup")[0]
    )
    deployment.env.run(until=warm)
    traffic_start = deployment.now

    requests = ShareGPTWorkload().generate(MODEL, num_requests=num_requests)
    bench = BenchmarkClient(deployment.env, client, label=combo)
    proc = deployment.env.process(
        bench.run(requests, arrival=arrival,
                  summary_label=f"{combo} @ {arrival.label}")
    )
    summary = deployment.env.run(until=proc)

    router = deployment.gateway.router
    pools = {name: deployment.endpoints[f"ep-{name}"].pools[MODEL]
             for name in ("east", "west")}
    shifts_out = shifts_in = 0
    for pool in pools.values():
        policy = pool.replicas.policy
        shifts_out += getattr(policy, "shifts_out", 0)
        shifts_in += getattr(policy, "shifts_in", 0)

    # Quiet tail: scale-down-capable fleets must shed their excess with
    # nothing leaked.  GPU-hours are charged through the tail, so holding
    # idle capacity (the legacy never-scale-down heuristic) costs what it
    # costs in a real allocation.
    deployment.run_for(QUIET_TAIL_S)
    gpu_hours = sum(s.gpu_seconds() for s in deployment.schedulers.values()) / 3600.0
    leaked = 0
    for name in ("east", "west"):
        scheduler = deployment.schedulers[name]
        active = len([j for j in scheduler.all_jobs if not j.state.terminal])
        pool = pools[name]
        leaked += max(0, active - pool.provisioned_count - len(pool.draining))
    probe = client.chat_completion(
        MODEL, [{"role": "user", "content": "post-sweep route probe"}],
        max_tokens=16,
    )
    return {
        "combo": combo,
        "router": router_name,
        "scaling": scaling,
        "scenario": scenario,
        "label": summary.label,
        "num_requests": summary.num_requests,
        "num_successful": summary.num_successful,
        "duration_s": round(summary.duration_s, 1),
        "traffic_start_s": round(traffic_start, 1),
        "throughput_req_s": round(summary.request_throughput, 3),
        "p50_latency_s": round(summary.median_latency_s, 3),
        "mean_latency_s": round(summary.mean_latency_s, 3),
        "p99_latency_s": round(summary.p99_latency_s, 3),
        "gpu_hours": round(gpu_hours, 3),
        "routed": dict(router.decisions_by_endpoint),
        "rules": dict(router.decisions_by_rule),
        "launches": sum(p.replicas.launches for p in pools.values()),
        "drains": sum(p.replicas.drains for p in pools.values()),
        "shifts_out": shifts_out,
        "shifts_in": shifts_in,
        "final_ready": {n: len(p.ready_instances) for n, p in pools.items()},
        "leaked_jobs": leaked,
        "route_probe_ok": "error" not in probe,
    }


# ------------------------------------------------------------------ sweep + checks
def run_sweep(scenarios: dict, combos: dict) -> list:
    entries = []
    for scenario, params in scenarios.items():
        for combo in combos[scenario]:
            entry = run_combo(combo, scenario, params)
            print_entry(entry)
            entries.append(entry)
    return entries


def print_entry(e: dict) -> None:
    west = e["routed"].get("ep-west", 0)
    total = max(1, sum(e["routed"].values()))
    print(f"  {e['scenario']:<8s} {e['combo']:<26s} "
          f"p50={e['p50_latency_s']:>7.2f}s p99={e['p99_latency_s']:>7.2f}s "
          f"gpu-h={e['gpu_hours']:>6.2f} west-routed={west}/{total} "
          f"shifts={e['shifts_out']}/{e['shifts_in']} "
          f"leaked={e['leaked_jobs']}")


def find(entries, scenario, combo):
    for e in entries:
        if e["scenario"] == scenario and e["combo"] == combo:
            return e
    return None


def acceptance_failures(entries) -> list:
    failures = []
    baseline = find(entries, "diurnal", "priority+queue_depth")
    v2 = find(entries, "diurnal", "slo+federated")
    if baseline and v2:
        if v2["p99_latency_s"] >= baseline["p99_latency_s"]:
            failures.append(
                f"slo+federated p99 {v2['p99_latency_s']}s does not beat "
                f"priority+queue_depth p99 {baseline['p99_latency_s']}s"
            )
        if v2["gpu_hours"] > baseline["gpu_hours"] + 1e-9:
            failures.append(
                f"slo+federated gpu-hours {v2['gpu_hours']} exceed "
                f"priority+queue_depth gpu-hours {baseline['gpu_hours']}"
            )
        if not v2["routed"].get("ep-west"):
            failures.append("slo+federated never shed a request to ep-west")
    for e in entries:
        if e["num_successful"] != e["num_requests"]:
            failures.append(f"{e['scenario']}/{e['combo']}: "
                            f"{e['num_requests'] - e['num_successful']} requests failed")
        if not e["route_probe_ok"]:
            failures.append(f"{e['scenario']}/{e['combo']}: route probe failed "
                            "after the sweep")
        if e["leaked_jobs"]:
            failures.append(f"{e['scenario']}/{e['combo']}: "
                            f"{e['leaked_jobs']} leaked scheduler jobs")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI sweep (diurnal, baseline vs slo+federated)")
    parser.add_argument("--write", action="store_true",
                        help="run full + quick sweeps and write the baseline JSON")
    parser.add_argument("--check", action="store_true",
                        help="fail on acceptance violations or p99 drift vs baseline")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    if args.write:
        print("=== federation v2 sweep (full) ===")
        full = run_sweep(FULL_SCENARIOS, FULL_COMBOS)
        print("=== federation v2 sweep (quick) ===")
        quick = run_sweep(QUICK_SCENARIOS, QUICK_COMBOS)
        failures = acceptance_failures(full) + acceptance_failures(quick)
        if failures:
            for f in failures:
                print(f"FAIL: {f}")
            return 1
        args.baseline.write_text(
            json.dumps({"full": full, "quick": quick}, indent=2) + "\n"
        )
        print(f"\nwrote {args.baseline}")
        return 0

    key = "quick" if args.quick else "full"
    scenarios = QUICK_SCENARIOS if args.quick else FULL_SCENARIOS
    combos = QUICK_COMBOS if args.quick else FULL_COMBOS
    print(f"=== federation v2 sweep ({key}) ===")
    entries = run_sweep(scenarios, combos)

    failures = acceptance_failures(entries)
    if args.check and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())[key]
        for entry in entries:
            ref = find(baseline, entry["scenario"], entry["combo"])
            if ref is None:
                continue
            expected = ref["p99_latency_s"]
            got = entry["p99_latency_s"]
            if expected > 0 and abs(got - expected) / expected > P99_TOLERANCE:
                failures.append(
                    f"{entry['scenario']}/{entry['combo']}: p99 {got}s drifted "
                    f">{P99_TOLERANCE:.0%} from baseline {expected}s"
                )
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("OK: federation v2 acceptance criteria hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
