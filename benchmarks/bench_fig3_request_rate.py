"""Figure 3 — Performance vs. request rate, FIRST vs. vLLM Direct (Llama 3.3 70B).

Paper series (single Sophia node, 8xA100, 1000 ShareGPT requests):

* at 1 req/s the direct path is faster per request (3.0 s vs 9.2 s median);
* at 20 req/s and at the infinite rate FIRST sustains higher request and
  output-token throughput (9.2 vs 5.8 req/s, 1677 vs 1054 tok/s) and lower
  median latency (46.9 s vs 80.2 s) because the asynchronous gateway buffers
  the burst instead of exposing the single-threaded vLLM front-end to it.

This harness regenerates all four panels (request throughput, output token
throughput, median end-to-end latency, duration) for both systems across the
same rate sweep and asserts the crossover.  The sweep itself is a grid of
declarative cells executed by the sweep plane (:mod:`repro.sweep`); set
``BENCH_SWEEP_WORKERS=N`` to shard the cells across worker processes.
"""

import os

import pytest

from _harness import MODEL_70B, print_table, summaries_to_extra_info
from repro.sweep import ArrivalSpec, ScenarioSpec, SweepRunner

#: Offered request rates of the paper's sweep (None = infinite).
RATES = [1.0, 5.0, 10.0, 20.0, None]
NUM_REQUESTS = 1000


def _rate_label(rate):
    return "inf" if rate is None else f"{rate:g} req/s"


def build_cells():
    """The figure's grid: (system, rate) cells with the paper's labels."""
    cells = []
    for rate in RATES:
        n = NUM_REQUESTS if (rate is None or rate >= 5.0) else 300
        for system, name in (("direct", "vLLM Direct"), ("first", "FIRST")):
            cells.append(ScenarioSpec(
                key=f"fig3/{system}/rate={_rate_label(rate)}",
                runner=system,
                model=MODEL_70B,
                num_requests=n,
                arrival=ArrivalSpec.for_rate(rate),
                label=f"{name} @ {_rate_label(rate)}",
                tags={"system": system, "rate": rate},
            ))
    return cells


def run_sweep():
    cells = build_cells()
    workers = int(os.environ.get("BENCH_SWEEP_WORKERS", "1"))
    result = SweepRunner(workers=workers).run(cells)
    assert result.ok, "\n".join(f.error or f.key for f in result.failures)
    payloads = result.payload_by_key()
    return {(c.tags["system"], c.tags["rate"]): payloads[c.key]["summary"]
            for c in cells}


@pytest.mark.benchmark(group="fig3")
def test_fig3_request_rate_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    summaries = [results[(sys_, rate)] for rate in RATES for sys_ in ("direct", "first")]
    print_table("Figure 3: performance vs request rate (Llama 3.3 70B, 1 node)", summaries)
    benchmark.extra_info.update(summaries_to_extra_info(summaries))

    direct_low, first_low = results[("direct", 1.0)], results[("first", 1.0)]
    direct_20, first_20 = results[("direct", 20.0)], results[("first", 20.0)]
    direct_inf, first_inf = results[("direct", None)], results[("first", None)]

    # Low rate: the extra gateway/relay hops make FIRST slower per request.
    assert direct_low.median_latency_s < first_low.median_latency_s
    assert first_low.median_latency_s - direct_low.median_latency_s > 3.0

    # High rate / infinite rate: FIRST sustains more throughput at lower latency.
    for direct, first in ((direct_20, first_20), (direct_inf, first_inf)):
        assert first.request_throughput > direct.request_throughput * 1.15
        assert first.output_token_throughput > direct.output_token_throughput * 1.15
        assert first.median_latency_s < direct.median_latency_s
        assert first.duration_s < direct.duration_s

    # Both systems deliver every request successfully.
    assert first_inf.num_successful == NUM_REQUESTS
    assert direct_inf.num_successful == NUM_REQUESTS
