"""Table 1 — WebUI concurrency/throughput benchmark.

Paper table: token throughput (TP/s) and request throughput (Req/s) for
Llama-3.1-8B, Gemma-27B and Llama-3.3-70B at 50/100/300/500/700 concurrent
WebUI sessions, for 60 s and 120 s runs.  The qualitative findings to
reproduce:

* throughput grows (near-linearly at first) from 50 to 500 sessions with
  diminishing returns beyond that as the backend saturates;
* the web interface itself never becomes the bottleneck.

The paper also observed that 60 s runs consistently beat 120 s runs, which it
attributes to resource contention and long-tail latency effects; in the
simulator the two windows land within ~20% of each other (the 120 s window
benefits from proportionally less ramp-up), so that secondary effect is only
weakly reproduced — see EXPERIMENTS.md.

Each (model, concurrency, duration) cell runs against a fresh deployment with
three pre-warmed instances (the production deployment auto-scales), so cells
do not contaminate each other.
"""

import pytest

from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.webui import WebUIConcurrencyBenchmark, WebUIServer

MODELS = [
    "meta-llama/Llama-3.1-8B-Instruct",
    "google/gemma-2-27b-it",
    "meta-llama/Llama-3.3-70B-Instruct",
]
CONCURRENCIES = [50, 100, 300, 500, 700]
DURATIONS = [60.0, 120.0]
INSTANCES = 3


def build_webui(model):
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="sophia", kind="sophia", num_nodes=INSTANCES + 1, scheduler="pbs",
                models=[ModelDeploymentSpec(model, max_instances=INSTANCES,
                                            max_parallel_tasks=96)],
            )
        ],
        users=["benchmark@anl.gov"],
        generate_text=False,
    )
    deployment = FIRSTDeployment(config)
    deployment.warm_up(model, instances=INSTANCES)
    return WebUIServer(deployment)


def run_table1():
    cells = []
    for model in MODELS:
        for concurrency in CONCURRENCIES:
            for duration in DURATIONS:
                webui = build_webui(model)
                bench = WebUIConcurrencyBenchmark(webui, user="benchmark@anl.gov")
                cells.append(bench.run(model, concurrency=concurrency, duration_s=duration))
    return cells


@pytest.mark.benchmark(group="table1")
def test_table1_webui_concurrency(benchmark):
    cells = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print("\n=== Table 1: WebUI benchmark results per model ===")
    for cell in cells:
        print("  " + cell.row())
    benchmark.extra_info.update(
        {f"{c.model}|c{c.concurrency}|{int(c.duration_s)}s": c.to_dict() for c in cells}
    )

    by_key = {(c.model, c.concurrency, c.duration_s): c for c in cells}
    for model in MODELS:
        tp60 = [by_key[(model, c, 60.0)].token_throughput for c in CONCURRENCIES]
        req60 = [by_key[(model, c, 60.0)].request_throughput for c in CONCURRENCIES]

        # Throughput grows with concurrency up to 500 sessions.
        assert tp60[0] < tp60[3], f"{model}: no growth from 50 to 500 sessions"
        assert req60[0] < req60[3]
        # Diminishing returns beyond 500 sessions: the 500→700 relative gain is
        # much smaller than the 50→300 relative gain.
        gain_low = tp60[2] / tp60[0]
        gain_high = tp60[4] / tp60[3]
        assert gain_high < gain_low

        # The WebUI path keeps serving at every concurrency (no collapse), and
        # the 60 s and 120 s windows are broadly comparable.
        for concurrency in CONCURRENCIES[2:]:
            short = by_key[(model, concurrency, 60.0)].token_throughput
            long = by_key[(model, concurrency, 120.0)].token_throughput
            assert short > 0 and long > 0
            assert short >= long * 0.75, (
                f"{model} @ {concurrency}: 60 s run ({short:.0f} TP/s) should not be "
                f"far below the 120 s run ({long:.0f} TP/s)"
            )

    # At matched concurrency the three models sustain the same order of
    # magnitude of token throughput (the table's rows are broadly similar).
    tp_300 = [by_key[(m, 300, 60.0)].token_throughput for m in MODELS]
    assert max(tp_300) < 4 * min(tp_300)
