"""Kernel & engine hot-path benchmark: macro-stepping and queue backends.

Replays the Figure-3 workload shape (ShareGPT-like requests against a single
Llama 3.3 70B instance) directly at the engine layer, once with
``EngineConfig.macro_stepping`` enabled and once with the per-token reference
loop, and reports:

* wall-clock seconds, processed kernel events/s and simulated tokens per
  wall-clock second for both modes;
* the wall-clock speedup (per-token / macro);
* a checksum over every request's simulated timings, asserting the two modes
  are **bit-identical** in simulated time.

The kernel's pending-event structure is pluggable
(``Environment(queue="heap"|"calendar"|"packed"|"auto")``, see
``repro.sim.queues``); ``--queue`` selects the backend the scenario runs on,
and ``--write`` additionally records:

* a queue sweep over all backends: wall clock on the fig3-style scenario
  (the backends are at parity there — the pending set stays small) plus a
  pure queue-op stress with 100k pending entries, where the calendar's
  amortised O(1) push/pop beats the heap's O(log n) and the packed
  lazy-sorted calendar beats both;
* a vectorized-planning batch-width sweep: all-at-once bursts at batch
  widths spanning ``EngineConfig.vector_batch_crossover``, run with the
  numpy window math forced on and forced off, asserting bit-identical
  traces either way.

Usage::

    python benchmarks/bench_kernel_throughput.py            # full run, prints report
    python benchmarks/bench_kernel_throughput.py --write    # all scenarios + sweeps, writes BENCH_kernel.json
    python benchmarks/bench_kernel_throughput.py --quick --check --queue packed
        # CI smoke: quick scenario on one queue backend, fail on mismatch or
        # on a >20% speedup regression vs that backend's committed baseline
    python benchmarks/bench_kernel_throughput.py --stress-check
        # CI smoke: 100k-pending queue stress, fail if the packed backend's
        # advantage over the heap regresses past the baseline tolerance

The regression gates compare *speedup ratios* (not absolute wall time), so
they are insensitive to how fast the CI machine is.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import A100_40GB, dgx_a100_spec  # noqa: E402
from repro.serving import (  # noqa: E402
    ContinuousBatchingEngine,
    EngineConfig,
    PerformanceModel,
    default_catalog,
)
from repro.sim import Environment  # noqa: E402
from repro.workload import PoissonArrival, ShareGPTWorkload  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_kernel.json"
MODEL = "Llama-3.3-70B"

#: Figure-3-style scenario: 1 instance, 2000 ShareGPT requests.  Rate 1 req/s
#: is the paper's low-rate operating point (Fig. 3 left edge).
FULL_SCENARIO = {"num_requests": 2000, "rate": 1.0}
#: CI smoke scenario: small enough for a PR gate, large enough that the
#: macro-mode wall clock is ~100 ms — a single scheduler stall or frequency
#: dip on a shared runner cannot move the ratio past the 20% gate.
QUICK_SCENARIO = {"num_requests": 1500, "rate": 1.0}

#: Acceptance floor for the full scenario (ISSUE 2) and the fraction of the
#: committed baseline speedup the CI smoke run must retain.
FULL_SPEEDUP_FLOOR = 3.0
REGRESSION_TOLERANCE = 0.8
#: Acceptance floor (ISSUE 7) for the packed backend on the 100k-pending
#: stress, enforced when writing the baseline.
PACKED_STRESS_FLOOR = 1.5

#: Queue backends swept by --write; --queue picks one for the scenario runs.
QUEUE_BACKENDS = ("heap", "calendar", "packed")
#: Pure queue-op stress: pending entries held / push+pop ops performed.
STRESS_HOLD = 100_000
STRESS_OPS = 100_000
#: Fraction of the baseline stress advantage the --stress-check gate must
#: retain (ratio-vs-ratio, so machine speed cancels; shared-runner noise
#: does not, hence the generous margin).
STRESS_TOLERANCE = 0.75
#: Batch widths for the vectorized-planning sweep; the default crossover is
#: 32, so the sweep spans it from both sides.
VECTOR_WIDTHS = (8, 64, 256)


def run_mode(macro: bool, num_requests: int, rate: float,
             queue: str = "heap") -> dict:
    """Run the scenario in one stepping mode; returns metrics + checksum."""
    env = Environment(queue=queue)
    events_processed = 0
    original_step = env.step

    def counting_step():
        nonlocal events_processed
        events_processed += 1
        original_step()

    env.step = counting_step

    spec = default_catalog().get(MODEL)
    perf = PerformanceModel(spec, 8, A100_40GB, node_spec=dgx_a100_spec())
    engine = ContinuousBatchingEngine(
        env, perf, EngineConfig(generate_text=False, macro_stepping=macro)
    )
    requests = ShareGPTWorkload().generate(spec.name, num_requests=num_requests)
    offsets = PoissonArrival(rate=rate, seed=7).offsets(num_requests)
    result_events = []

    def driver(env):
        last = 0.0
        for request, offset in zip(requests, offsets):
            if offset > last:
                yield env.timeout(offset - last)
                last = offset
            result_events.append(engine.submit(request))
        yield env.all_of(result_events)

    proc = env.process(driver(env))
    wall_start = time.perf_counter()
    env.run(until=proc)
    wall_s = time.perf_counter() - wall_start

    results = [ev.value for ev in result_events]
    digest = hashlib.sha256()
    for r in results:
        digest.update(
            repr((r.request_id, r.success, r.output_tokens,
                  r.prefill_start_time, r.first_token_time,
                  r.completion_time)).encode()
        )
    digest.update(repr(sorted(engine.stats.snapshot().items())).encode())
    output_tokens = engine.stats.output_tokens
    return {
        "mode": "macro" if macro else "per_token",
        "queue": queue,
        "wall_s": round(wall_s, 4),
        "events": events_processed,
        "events_per_s": round(events_processed / wall_s, 1),
        "sim_duration_s": round(env.now, 6),
        "output_tokens": output_tokens,
        "sim_tokens_per_wall_s": round(output_tokens / wall_s, 1),
        "trace_sha256": digest.hexdigest(),
    }


def run_scenario(name: str, num_requests: int, rate: float, repeats: int = 5,
                 queue: str = "heap") -> dict:
    """Best-of-``repeats`` wall clock for each mode over the same workload."""
    best = {}
    for macro in (False, True):
        runs = [run_mode(macro, num_requests, rate, queue=queue) for _ in range(repeats)]
        checksums = {r["trace_sha256"] for r in runs}
        assert len(checksums) == 1, "non-deterministic simulation run"
        best[runs[0]["mode"]] = min(runs, key=lambda r: r["wall_s"])
    identical = best["macro"]["trace_sha256"] == best["per_token"]["trace_sha256"]
    speedup = best["per_token"]["wall_s"] / best["macro"]["wall_s"]
    return {
        "scenario": {"name": name, "model": MODEL, "instances": 1,
                     "num_requests": num_requests, "rate_req_s": rate,
                     "queue": queue},
        "per_token": best["per_token"],
        "macro": best["macro"],
        "bit_identical": identical,
        "speedup": round(speedup, 2),
    }


def run_queue_stress(queue: str, hold: int = STRESS_HOLD,
                     ops: int = STRESS_OPS, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall clock for raw push/pop churn on one backend.

    Holds ``hold`` pending entries and performs ``ops`` pop+push rounds with
    clustered pseudo-random deltas — the NORMAL-timeout churn profile, at the
    pending-set size where the queue structure (not constant factors)
    dominates.
    """
    from repro.sim.queues import make_event_queue

    best = float("inf")
    for _ in range(repeats):
        rng = random.Random(12345)
        q = make_event_queue(queue)
        now = 0.0
        eid = 0
        for _ in range(hold):
            q.push(now + rng.random() * hold * 0.02, 1, eid, eid)
            eid += 1
        start = time.perf_counter()
        for _ in range(ops):
            now, _event = q.pop2()  # the kernel's fast path
            q.push(now + 0.01 + rng.random() * hold * 0.02, 1, eid, eid)
            eid += 1
        best = min(best, time.perf_counter() - start)
    return best


def run_queue_sweep(num_requests: int, rate: float, repeats: int = 5) -> dict:
    """All queue backends: fig3-style macro wall clock + pure queue stress.

    To keep the ratios honest on a noisy machine, both the fig3 and the
    stress per-backend repeats are interleaved (heap, calendar, packed,
    heap, ...) so a frequency dip hits every backend alike.
    """
    fig3 = {}
    for _ in range(repeats):
        for queue in QUEUE_BACKENDS:
            run = run_mode(True, num_requests, rate, queue=queue)
            if queue not in fig3 or run["wall_s"] < fig3[queue]["wall_s"]:
                fig3[queue] = run
    identical = all(
        fig3[queue]["trace_sha256"] == fig3["heap"]["trace_sha256"]
        for queue in QUEUE_BACKENDS
    )
    stress = {queue: float("inf") for queue in QUEUE_BACKENDS}
    for _ in range(5):
        for queue in QUEUE_BACKENDS:
            stress[queue] = min(stress[queue], run_queue_stress(queue, repeats=1))
    stress = {queue: round(wall, 4) for queue, wall in stress.items()}
    entry = {
        "scenario": {"name": "queue-sweep", "model": MODEL,
                     "num_requests": num_requests, "rate_req_s": rate},
        "fig3_macro": {
            **{queue: fig3[queue] for queue in QUEUE_BACKENDS},
            "bit_identical": identical,
            **{f"{queue}_speedup": round(
                fig3["heap"]["wall_s"] / fig3[queue]["wall_s"], 3)
               for queue in QUEUE_BACKENDS if queue != "heap"},
        },
        "queue_stress": {
            "hold": STRESS_HOLD,
            "ops": STRESS_OPS,
            **{f"{queue}_wall_s": stress[queue] for queue in QUEUE_BACKENDS},
            **{f"{queue}_speedup": round(stress["heap"] / stress[queue], 3)
               for queue in QUEUE_BACKENDS if queue != "heap"},
        },
    }
    return entry


def run_width_mode(width: int, vector: bool, repeats: int = 3) -> dict:
    """All-at-once burst at one batch width, numpy window math on or off."""
    from repro.serving import InferenceRequest

    best = None
    for _ in range(repeats):
        env = Environment(queue="packed")
        spec = default_catalog().get(MODEL)
        perf = PerformanceModel(spec, 8, A100_40GB, node_spec=dgx_a100_spec())
        engine = ContinuousBatchingEngine(
            env, perf,
            EngineConfig(generate_text=False, macro_stepping=True,
                         max_num_seqs=width,
                         vector_batch_crossover=1 if vector else (1 << 30)),
        )
        events = [
            engine.submit(InferenceRequest(
                f"w-{i:05d}", spec.name,
                prompt_tokens=64 + (i * 13) % 192,
                max_output_tokens=40 + (i * 7) % 120,
            ))
            for i in range(width * 3)
        ]
        wall_start = time.perf_counter()
        env.run(until=env.all_of(events))
        wall_s = time.perf_counter() - wall_start
        digest = hashlib.sha256()
        for ev in events:
            r = ev.value
            digest.update(repr((r.request_id, r.first_token_time,
                                r.completion_time)).encode())
        run = {"wall_s": round(wall_s, 4), "trace_sha256": digest.hexdigest()}
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    return best


def run_width_sweep() -> dict:
    """Vectorized window planning on/off across batch widths; traces must match."""
    entries = {}
    for width in VECTOR_WIDTHS:
        vec = run_width_mode(width, vector=True)
        scalar = run_width_mode(width, vector=False)
        entries[str(width)] = {
            "vector": vec,
            "scalar": scalar,
            "bit_identical": vec["trace_sha256"] == scalar["trace_sha256"],
            "vector_speedup": round(scalar["wall_s"] / max(vec["wall_s"], 1e-9), 3),
        }
    return {
        "scenario": {"name": "vector-width-sweep", "model": MODEL,
                     "widths": list(VECTOR_WIDTHS),
                     "requests_per_width_factor": 3},
        "widths": entries,
    }


def print_sweep_report(sweep: dict) -> None:
    s = sweep["scenario"]
    print(f"\n=== queue sweep: {' vs '.join(QUEUE_BACKENDS)} "
          f"({s['num_requests']} reqs @ {s['rate_req_s']:g} req/s, {s['model']}) ===")
    fig3 = sweep["fig3_macro"]
    for queue in QUEUE_BACKENDS:
        r = fig3[queue]
        print(f"  fig3 macro {queue:>9}: wall={r['wall_s']:.3f}s events={r['events']}")
    print(f"  bit-identical across backends: {fig3['bit_identical']}")
    for queue in QUEUE_BACKENDS[1:]:
        print(f"  fig3 {queue} speedup: {fig3[f'{queue}_speedup']:.3f}x "
              f"(small pending set: parity expected)")
    stress = sweep["queue_stress"]
    walls = " ".join(f"{q}={stress[f'{q}_wall_s']:.3f}s" for q in QUEUE_BACKENDS)
    gains = " ".join(f"{q}={stress[f'{q}_speedup']:.2f}x" for q in QUEUE_BACKENDS[1:])
    print(f"  queue stress (hold={stress['hold']}, ops={stress['ops']}): "
          f"{walls} -> {gains}")


def print_width_report(sweep: dict) -> None:
    print(f"\n=== vectorized planning: batch-width sweep "
          f"(widths {sweep['scenario']['widths']}, {sweep['scenario']['model']}) ===")
    for width, entry in sweep["widths"].items():
        print(f"  width {width:>4}: scalar={entry['scalar']['wall_s']:.3f}s "
              f"vector={entry['vector']['wall_s']:.3f}s "
              f"-> {entry['vector_speedup']:.2f}x "
              f"bit-identical={entry['bit_identical']}")


def print_report(entry: dict) -> None:
    s = entry["scenario"]
    print(f"\n=== kernel throughput: {s['name']} "
          f"({s['num_requests']} reqs @ {s['rate_req_s']:g} req/s, {s['model']}, "
          f"queue={s.get('queue', 'heap')}) ===")
    for mode in ("per_token", "macro"):
        r = entry[mode]
        print(f"  {mode:>9}: wall={r['wall_s']:.3f}s events={r['events']} "
              f"({r['events_per_s']:.0f}/s) sim-tokens/wall-s={r['sim_tokens_per_wall_s']:.0f}")
    print(f"  bit-identical simulated time: {entry['bit_identical']}")
    print(f"  speedup: {entry['speedup']:.2f}x")


def stress_check(baseline_path: Path) -> int:
    """CI gate: the packed backend's stress advantage must not regress.

    Interleaves heap and packed repeats so machine noise hits both alike,
    then compares the speedup ratio against the committed baseline ratio.
    """
    baseline = json.loads(baseline_path.read_text())["queue_sweep"]["queue_stress"]
    stress = {"heap": float("inf"), "packed": float("inf")}
    for _ in range(5):
        for queue in stress:
            stress[queue] = min(stress[queue], run_queue_stress(queue, repeats=1))
    ratio = stress["heap"] / stress["packed"]
    floor = baseline["packed_speedup"] * STRESS_TOLERANCE
    print(f"queue stress (hold={STRESS_HOLD}, ops={STRESS_OPS}): "
          f"heap={stress['heap']:.3f}s packed={stress['packed']:.3f}s "
          f"-> {ratio:.2f}x (baseline {baseline['packed_speedup']:.2f}x, "
          f"floor {floor:.2f}x)")
    if ratio < floor:
        print(f"FAIL: packed stress speedup regressed to {ratio:.2f}x "
              f"(<{STRESS_TOLERANCE:.0%} of baseline)")
        return 1
    print("OK: packed queue stress advantage holds")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true",
                        help="run the small CI scenario instead of the full one")
    parser.add_argument("--write", action="store_true",
                        help="run all scenarios + queue sweep and write the baseline JSON")
    parser.add_argument("--check", action="store_true",
                        help="fail on mismatch or >20%% speedup regression vs the baseline")
    parser.add_argument("--stress-check", action="store_true",
                        help="run the 100k-pending queue stress and fail if the "
                             "packed backend's heap advantage regresses")
    parser.add_argument("--queue", choices=QUEUE_BACKENDS + ("auto",), default="heap",
                        help="kernel pending-event structure for the scenario runs")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    if args.stress_check:
        return stress_check(args.baseline)

    if args.write:
        baseline = {}
        for queue in QUEUE_BACKENDS:
            suffix = "" if queue == "heap" else f"_{queue}"
            baseline[f"full{suffix}"] = run_scenario(
                "fig3-style-full", queue=queue, **FULL_SCENARIO)
            baseline[f"quick{suffix}"] = run_scenario(
                "fig3-style-quick", queue=queue, **QUICK_SCENARIO)
        baseline["queue_sweep"] = run_queue_sweep(**FULL_SCENARIO)
        baseline["vector_sweep"] = run_width_sweep()
        for key, entry in baseline.items():
            if key == "queue_sweep":
                print_sweep_report(entry)
            elif key == "vector_sweep":
                print_width_report(entry)
            else:
                print_report(entry)
        scenarios = [e for k, e in baseline.items()
                     if k not in ("queue_sweep", "vector_sweep")]
        if not all(e["bit_identical"] for e in scenarios):
            print("FAIL: simulated-time results differ between stepping modes")
            return 1
        if not baseline["queue_sweep"]["fig3_macro"]["bit_identical"]:
            print("FAIL: simulated-time results differ between queue backends")
            return 1
        for queue in QUEUE_BACKENDS[1:]:
            for a in ("full", "quick"):
                b = f"{a}_{queue}"
                if baseline[a]["macro"]["trace_sha256"] != baseline[b]["macro"]["trace_sha256"]:
                    print(f"FAIL: {a} and {b} traces differ between queue backends")
                    return 1
        if not all(e["bit_identical"] for e in baseline["vector_sweep"]["widths"].values()):
            print("FAIL: vectorized window planning diverged from the scalar path")
            return 1
        if baseline["full"]["speedup"] < FULL_SPEEDUP_FLOOR:
            print(f"FAIL: full-scenario speedup {baseline['full']['speedup']:.2f}x "
                  f"is below the {FULL_SPEEDUP_FLOOR:.1f}x acceptance floor")
            return 1
        stress = baseline["queue_sweep"]["queue_stress"]
        if stress["packed_speedup"] < PACKED_STRESS_FLOOR:
            print(f"FAIL: packed stress speedup {stress['packed_speedup']:.2f}x "
                  f"is below the {PACKED_STRESS_FLOOR:.1f}x acceptance floor")
            return 1
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"\nwrote {args.baseline}")
        return 0

    key = "quick" if args.quick else "full"
    if args.queue not in ("heap", "auto"):
        key = f"{key}_{args.queue}"
    # "auto" has no baseline entry of its own: at fig3 pending-set sizes it
    # never migrates off the heap, so it gates against the heap baseline.
    scenario = QUICK_SCENARIO if args.quick else FULL_SCENARIO
    entry = run_scenario(f"fig3-style-{key}", queue=args.queue, **scenario)
    print_report(entry)

    if not entry["bit_identical"]:
        print("FAIL: simulated-time results differ between stepping modes")
        return 1
    if not args.check:
        if not args.quick and entry["speedup"] < FULL_SPEEDUP_FLOOR:
            print(f"FAIL: speedup {entry['speedup']:.2f}x below the "
                  f"{FULL_SPEEDUP_FLOOR:.1f}x acceptance floor")
            return 1
        return 0

    baseline = json.loads(args.baseline.read_text())[key]
    floor = baseline["speedup"] * REGRESSION_TOLERANCE
    print(f"  baseline speedup: {baseline['speedup']:.2f}x "
          f"(regression floor {floor:.2f}x)")
    if entry["speedup"] < floor:
        print(f"FAIL: speedup regressed to {entry['speedup']:.2f}x "
              f"(<{REGRESSION_TOLERANCE:.0%} of baseline {baseline['speedup']:.2f}x)")
        return 1
    print("OK: no kernel-throughput regression")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
