"""Kernel & engine hot-path benchmark: macro-stepped vs per-token decoding.

Replays the Figure-3 workload shape (ShareGPT-like requests against a single
Llama 3.3 70B instance) directly at the engine layer, once with
``EngineConfig.macro_stepping`` enabled and once with the per-token reference
loop, and reports:

* wall-clock seconds, processed kernel events/s and simulated tokens per
  wall-clock second for both modes;
* the wall-clock speedup (per-token / macro);
* a checksum over every request's simulated timings, asserting the two modes
  are **bit-identical** in simulated time.

Usage::

    python benchmarks/bench_kernel_throughput.py            # full run, prints report
    python benchmarks/bench_kernel_throughput.py --write    # full+quick run, writes BENCH_kernel.json
    python benchmarks/bench_kernel_throughput.py --quick --check
        # CI smoke: quick scenario, fail on mismatch or on a >20% speedup
        # regression vs the committed BENCH_kernel.json baseline

The regression gate compares the *speedup ratio* (not absolute wall time),
so it is insensitive to how fast the CI machine is.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import A100_40GB, dgx_a100_spec  # noqa: E402
from repro.serving import (  # noqa: E402
    ContinuousBatchingEngine,
    EngineConfig,
    PerformanceModel,
    default_catalog,
)
from repro.sim import Environment  # noqa: E402
from repro.workload import PoissonArrival, ShareGPTWorkload  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_kernel.json"
MODEL = "Llama-3.3-70B"

#: Figure-3-style scenario: 1 instance, 2000 ShareGPT requests.  Rate 1 req/s
#: is the paper's low-rate operating point (Fig. 3 left edge).
FULL_SCENARIO = {"num_requests": 2000, "rate": 1.0}
#: CI smoke scenario: small enough for a PR gate, large enough that the
#: macro-mode wall clock is ~100 ms — a single scheduler stall or frequency
#: dip on a shared runner cannot move the ratio past the 20% gate.
QUICK_SCENARIO = {"num_requests": 1500, "rate": 1.0}

#: Acceptance floor for the full scenario (ISSUE 2) and the fraction of the
#: committed baseline speedup the CI smoke run must retain.
FULL_SPEEDUP_FLOOR = 3.0
REGRESSION_TOLERANCE = 0.8


def run_mode(macro: bool, num_requests: int, rate: float) -> dict:
    """Run the scenario in one stepping mode; returns metrics + checksum."""
    env = Environment()
    events_processed = 0
    original_step = env.step

    def counting_step():
        nonlocal events_processed
        events_processed += 1
        original_step()

    env.step = counting_step

    spec = default_catalog().get(MODEL)
    perf = PerformanceModel(spec, 8, A100_40GB, node_spec=dgx_a100_spec())
    engine = ContinuousBatchingEngine(
        env, perf, EngineConfig(generate_text=False, macro_stepping=macro)
    )
    requests = ShareGPTWorkload().generate(spec.name, num_requests=num_requests)
    offsets = PoissonArrival(rate=rate, seed=7).offsets(num_requests)
    result_events = []

    def driver(env):
        last = 0.0
        for request, offset in zip(requests, offsets):
            if offset > last:
                yield env.timeout(offset - last)
                last = offset
            result_events.append(engine.submit(request))
        yield env.all_of(result_events)

    proc = env.process(driver(env))
    wall_start = time.perf_counter()
    env.run(until=proc)
    wall_s = time.perf_counter() - wall_start

    results = [ev.value for ev in result_events]
    digest = hashlib.sha256()
    for r in results:
        digest.update(
            repr((r.request_id, r.success, r.output_tokens,
                  r.prefill_start_time, r.first_token_time,
                  r.completion_time)).encode()
        )
    digest.update(repr(sorted(engine.stats.snapshot().items())).encode())
    output_tokens = engine.stats.output_tokens
    return {
        "mode": "macro" if macro else "per_token",
        "wall_s": round(wall_s, 4),
        "events": events_processed,
        "events_per_s": round(events_processed / wall_s, 1),
        "sim_duration_s": round(env.now, 6),
        "output_tokens": output_tokens,
        "sim_tokens_per_wall_s": round(output_tokens / wall_s, 1),
        "trace_sha256": digest.hexdigest(),
    }


def run_scenario(name: str, num_requests: int, rate: float, repeats: int = 5) -> dict:
    """Best-of-``repeats`` wall clock for each mode over the same workload."""
    best = {}
    for macro in (False, True):
        runs = [run_mode(macro, num_requests, rate) for _ in range(repeats)]
        checksums = {r["trace_sha256"] for r in runs}
        assert len(checksums) == 1, "non-deterministic simulation run"
        best[runs[0]["mode"]] = min(runs, key=lambda r: r["wall_s"])
    identical = best["macro"]["trace_sha256"] == best["per_token"]["trace_sha256"]
    speedup = best["per_token"]["wall_s"] / best["macro"]["wall_s"]
    return {
        "scenario": {"name": name, "model": MODEL, "instances": 1,
                     "num_requests": num_requests, "rate_req_s": rate},
        "per_token": best["per_token"],
        "macro": best["macro"],
        "bit_identical": identical,
        "speedup": round(speedup, 2),
    }


def print_report(entry: dict) -> None:
    s = entry["scenario"]
    print(f"\n=== kernel throughput: {s['name']} "
          f"({s['num_requests']} reqs @ {s['rate_req_s']:g} req/s, {s['model']}) ===")
    for mode in ("per_token", "macro"):
        r = entry[mode]
        print(f"  {mode:>9}: wall={r['wall_s']:.3f}s events={r['events']} "
              f"({r['events_per_s']:.0f}/s) sim-tokens/wall-s={r['sim_tokens_per_wall_s']:.0f}")
    print(f"  bit-identical simulated time: {entry['bit_identical']}")
    print(f"  speedup: {entry['speedup']:.2f}x")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true",
                        help="run the small CI scenario instead of the full one")
    parser.add_argument("--write", action="store_true",
                        help="run full + quick scenarios and write the baseline JSON")
    parser.add_argument("--check", action="store_true",
                        help="fail on mismatch or >20%% speedup regression vs the baseline")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    if args.write:
        baseline = {
            "full": run_scenario("fig3-style-full", **FULL_SCENARIO),
            "quick": run_scenario("fig3-style-quick", **QUICK_SCENARIO),
        }
        for entry in baseline.values():
            print_report(entry)
        if not all(e["bit_identical"] for e in baseline.values()):
            print("FAIL: simulated-time results differ between stepping modes")
            return 1
        if baseline["full"]["speedup"] < FULL_SPEEDUP_FLOOR:
            print(f"FAIL: full-scenario speedup {baseline['full']['speedup']:.2f}x "
                  f"is below the {FULL_SPEEDUP_FLOOR:.1f}x acceptance floor")
            return 1
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"\nwrote {args.baseline}")
        return 0

    key = "quick" if args.quick else "full"
    scenario = QUICK_SCENARIO if args.quick else FULL_SCENARIO
    entry = run_scenario(f"fig3-style-{key}", **scenario)
    print_report(entry)

    if not entry["bit_identical"]:
        print("FAIL: simulated-time results differ between stepping modes")
        return 1
    if not args.check:
        if not args.quick and entry["speedup"] < FULL_SPEEDUP_FLOOR:
            print(f"FAIL: speedup {entry['speedup']:.2f}x below the "
                  f"{FULL_SPEEDUP_FLOOR:.1f}x acceptance floor")
            return 1
        return 0

    baseline = json.loads(args.baseline.read_text())[key]
    floor = baseline["speedup"] * REGRESSION_TOLERANCE
    print(f"  baseline speedup: {baseline['speedup']:.2f}x "
          f"(regression floor {floor:.2f}x)")
    if entry["speedup"] < floor:
        print(f"FAIL: speedup regressed to {entry['speedup']:.2f}x "
              f"(<{REGRESSION_TOLERANCE:.0%} of baseline {baseline['speedup']:.2f}x)")
        return 1
    print("OK: no kernel-throughput regression")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
