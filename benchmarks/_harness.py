"""Shared helpers for the benchmark harnesses.

Each ``bench_*.py`` file regenerates one table or figure from the paper's
evaluation: it builds the relevant deployment(s), replays the paper's
workload, prints the same rows/series the paper reports, attaches them to
the pytest-benchmark report (``extra_info``), and asserts the qualitative
shape (who wins, approximate ratios, crossover locations).

Scenario execution is delegated to the sweep plane (:mod:`repro.sweep`):
each helper below builds one declarative :class:`~repro.sweep.ScenarioSpec`
cell and runs it in-process.  Benchmarks that sweep a grid can expand a
:class:`~repro.sweep.SweepSpec` and hand the cells to a
:class:`~repro.sweep.SweepRunner` instead (see ``bench_sweep_scale.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.metrics import BenchmarkSummary
from repro.sweep import ArrivalSpec, ScenarioSpec

MODEL_70B = "meta-llama/Llama-3.3-70B-Instruct"
MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"


def print_table(title: str, summaries: List[BenchmarkSummary]) -> None:
    print(f"\n=== {title} ===")
    for summary in summaries:
        print("  " + summary.row())


def summaries_to_extra_info(summaries: List[BenchmarkSummary]) -> Dict[str, dict]:
    return {s.label: s.to_dict() for s in summaries}


def run_first_scenario(
    model: str,
    num_requests: int,
    rate: Optional[float],
    max_instances: int = 1,
    prewarm_instances: int = 1,
    num_nodes: int = 8,
    label: Optional[str] = None,
    stream: bool = False,
) -> BenchmarkSummary:
    """Benchmark the FIRST path (gateway → relay → endpoint → engine).

    With ``stream=True`` every request is sent with streaming enabled, so the
    summary additionally carries gateway-observed TTFT/ITL percentiles.
    """
    spec = ScenarioSpec(
        key=f"harness/first/{model}/{rate}",
        runner="first",
        model=model,
        num_requests=num_requests,
        arrival=ArrivalSpec.for_rate(rate),
        label=label or f"FIRST @ {rate or 'inf'}",
        params={
            "max_instances": max_instances,
            "prewarm_instances": prewarm_instances,
            "num_nodes": num_nodes,
            "stream": stream,
        },
    )
    return spec.run()["summary"]


def run_direct_scenario(
    model: str,
    num_requests: int,
    rate: Optional[float],
    label: Optional[str] = None,
) -> BenchmarkSummary:
    """Benchmark the vLLM-Direct path (client → API server → engine)."""
    spec = ScenarioSpec(
        key=f"harness/direct/{model}/{rate}",
        runner="direct",
        model=model,
        num_requests=num_requests,
        arrival=ArrivalSpec.for_rate(rate),
        label=label or f"vLLM Direct @ {rate or 'inf'}",
    )
    return spec.run()["summary"]
