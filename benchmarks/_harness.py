"""Shared helpers for the benchmark harnesses.

Each ``bench_*.py`` file regenerates one table or figure from the paper's
evaluation: it builds the relevant deployment(s), replays the paper's
workload, prints the same rows/series the paper reports, attaches them to
the pytest-benchmark report (``extra_info``), and asserts the qualitative
shape (who wins, approximate ratios, crossover locations).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines import DirectVLLMTarget
from repro.core import FIRSTDeployment, calibration
from repro.metrics import BenchmarkSummary
from repro.serving import EngineConfig
from repro.sim import Environment
from repro.workload import BenchmarkClient, ShareGPTWorkload, make_arrival

MODEL_70B = "meta-llama/Llama-3.3-70B-Instruct"
MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"


def print_table(title: str, summaries: List[BenchmarkSummary]) -> None:
    print(f"\n=== {title} ===")
    for summary in summaries:
        print("  " + summary.row())


def summaries_to_extra_info(summaries: List[BenchmarkSummary]) -> Dict[str, dict]:
    return {s.label: s.to_dict() for s in summaries}


def run_first_scenario(
    model: str,
    num_requests: int,
    rate: Optional[float],
    max_instances: int = 1,
    prewarm_instances: int = 1,
    num_nodes: int = 8,
    label: Optional[str] = None,
    stream: bool = False,
) -> BenchmarkSummary:
    """Benchmark the FIRST path (gateway → relay → endpoint → engine).

    With ``stream=True`` every request is sent with streaming enabled, so the
    summary additionally carries gateway-observed TTFT/ITL percentiles.
    """
    deployment = FIRSTDeployment.sophia_benchmark(
        model=model, max_instances=max_instances, num_nodes=num_nodes
    )
    deployment.warm_up(model, instances=prewarm_instances)
    client = deployment.client("benchmark@anl.gov")
    # Warm the gateway's token/introspection cache with one request so the
    # measured run matches the paper's steady-state deployment.
    warm = client.submit(
        ShareGPTWorkload().generate(model, num_requests=1, id_prefix="warmup")[0]
    )
    deployment.env.run(until=warm)

    requests = ShareGPTWorkload().generate(model, num_requests=num_requests)
    if stream:
        for request in requests:
            request.stream = True
    bench = BenchmarkClient(deployment.env, client, label="FIRST")
    proc = deployment.env.process(
        bench.run(requests, arrival=make_arrival(rate),
                  summary_label=label or f"FIRST @ {rate or 'inf'}")
    )
    return deployment.env.run(until=proc)


def run_direct_scenario(
    model: str,
    num_requests: int,
    rate: Optional[float],
    label: Optional[str] = None,
) -> BenchmarkSummary:
    """Benchmark the vLLM-Direct path (client → API server → engine)."""
    from repro.cluster import Node, dgx_a100_spec
    from repro.serving import default_catalog

    env = Environment()
    catalog = default_catalog()
    spec = catalog.get(model)
    nodes = [Node(f"direct-{i}", dgx_a100_spec()) for i in range(max(1, spec.default_tp // 8))]
    pending, ready = DirectVLLMTarget.launch(
        env, spec, nodes,
        perf_config=calibration.default_perf_config(),
        engine_config=EngineConfig(generate_text=False),
        api_config=calibration.default_api_server_config(),
    )
    env.run(until=ready)
    target = pending.materialise()

    requests = ShareGPTWorkload().generate(spec.name, num_requests=num_requests)
    bench = BenchmarkClient(env, target, label="vLLM Direct")
    proc = env.process(
        bench.run(requests, arrival=make_arrival(rate),
                  summary_label=label or f"vLLM Direct @ {rate or 'inf'}")
    )
    return env.run(until=proc)
