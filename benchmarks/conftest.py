"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated paper tables; the same data is attached to the
pytest-benchmark report via ``extra_info``.
"""

import sys
from pathlib import Path

# Allow ``import _harness`` from every bench module regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))
