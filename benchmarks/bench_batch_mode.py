"""§5.3.1 / §6.3 — Batch (offline) mode.

Paper observations to reproduce:

* a batch job of 1000 requests on Llama 3.3 70B reached ~2117 tok/s overall
  and finished in ~409 s, including the cold start;
* "the initial model loading time can dominate the total execution time for
  smaller batches.  However, for larger workloads (>10,000 requests), the
  amortization of the loading cost across many requests makes batch mode
  highly efficient";
* batch mode reaches higher output-token throughput than interactive serving
  because requests bypass the shared online server.
"""

import pytest

from _harness import MODEL_70B

from repro.cluster import A100_40GB, dgx_a100_spec
from repro.core import calibration
from repro.serving import OfflineBatchRunner, PerformanceModel, default_catalog
from repro.sim import Environment
from repro.workload import BATCH_GENERATION_CONFIG, ShareGPTWorkload

BATCH_SIZES = [100, 1000, 5000]


def run_offline_batch(num_requests):
    env = Environment()
    catalog = default_catalog()
    spec = catalog.get(MODEL_70B)
    perf = PerformanceModel(
        spec, num_gpus=8, gpu_spec=A100_40GB,
        config=calibration.default_perf_config(), node_spec=dgx_a100_spec(),
    )
    runner = OfflineBatchRunner(env, perf)
    requests = ShareGPTWorkload(BATCH_GENERATION_CONFIG).generate(
        spec.name, num_requests=num_requests
    )
    proc = env.process(runner.run(requests))
    return env.run(until=proc)


def run_all():
    return {n: run_offline_batch(n) for n in BATCH_SIZES}


@pytest.mark.benchmark(group="batch")
def test_batch_mode_throughput_and_amortisation(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\n=== Batch mode (Llama 3.3 70B, dedicated job, offline engine) ===")
    for n, result in results.items():
        print(
            f"  {n:>6d} requests: duration={result.duration_s:8.1f}s "
            f"(load {result.load_time_s:5.1f}s)  overall={result.overall_output_tok_s:7.1f} tok/s "
            f"processing={result.processing_output_tok_s:7.1f} tok/s"
        )
        benchmark.extra_info[f"batch_{n}"] = {
            "duration_s": round(result.duration_s, 1),
            "load_time_s": round(result.load_time_s, 1),
            "overall_tok_s": round(result.overall_output_tok_s, 1),
            "processing_tok_s": round(result.processing_output_tok_s, 1),
        }

    mid = results[1000]
    # Overall throughput (including the cold start) lands in the paper's
    # ballpark of ~2100 tok/s for a 1000-request batch.
    assert 1500.0 <= mid.overall_output_tok_s <= 2800.0
    assert mid.num_completed == 1000
    # The cold start is a visible but not dominant fraction for 1000 requests.
    assert 0.03 <= mid.load_time_s / mid.duration_s <= 0.5

    # Amortisation: the load-time share shrinks and overall throughput grows
    # as the batch gets larger.
    small, large = results[100], results[5000]
    assert small.load_time_s / small.duration_s > large.load_time_s / large.duration_s
    assert large.overall_output_tok_s > small.overall_output_tok_s
    # Large batches approach the processing-only rate (load fully amortised).
    assert large.overall_output_tok_s > 0.9 * large.processing_output_tok_s

    # Batch mode beats the interactive serving rate observed in Fig. 3/4
    # (~1400-1700 tok/s through the online path).
    assert mid.processing_output_tok_s > 1700.0
