"""Figure 5 — FIRST (Llama 3.1 8B) vs. the OpenAI API (GPT-4o-mini).

Paper numbers: FIRST reaches 25.1 req/s and 3283 tok/s at 16.3 s median
latency; the OpenAI API delivers 6.7 req/s and 1199 tok/s at 2.0 s median
latency.  The comparison illustrates the trade-off: the commercial cloud API
is snappier per request, but the self-hosted deployment sustains several
times more concurrent throughput on secure HPC resources.

Notes on the reproduction:

* the FIRST side runs the 8B model (TP=4) with auto-scaling allowed to use
  four instances, which is how a saturated deployment on 8-GPU nodes behaves;
* the OpenAI side is driven at its account rate limit (the paper notes its
  results "may be influenced by service-side rate limiting"), so the measured
  latency reflects service time rather than client-side queueing.
"""

import pytest

from _harness import MODEL_8B, print_table, summaries_to_extra_info, run_first_scenario

from repro.baselines import OpenAIAPIConfig, OpenAIAPITarget
from repro.sim import Environment
from repro.workload import BenchmarkClient, PoissonArrival, ShareGPTWorkload

NUM_REQUESTS = 1000


def run_comparison():
    first = run_first_scenario(
        MODEL_8B,
        NUM_REQUESTS,
        rate=None,
        max_instances=4,
        prewarm_instances=4,
        num_nodes=4,
        label="FIRST (Llama 3.1 8B)",
    )

    env = Environment()
    target = OpenAIAPITarget(env, OpenAIAPIConfig())
    requests = ShareGPTWorkload().generate("gpt-4o-mini", num_requests=NUM_REQUESTS)
    client = BenchmarkClient(env, target, label="OpenAI API")
    proc = env.process(
        client.run(requests, arrival=PoissonArrival(rate=6.0, seed=17),
                   summary_label="OpenAI API (GPT-4o-mini)")
    )
    openai = env.run(until=proc)
    return {"first": first, "openai": openai}


@pytest.mark.benchmark(group="fig5")
def test_fig5_first_vs_openai(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    first, openai = results["first"], results["openai"]
    print_table("Figure 5: FIRST (Llama 3.1 8B) vs OpenAI API (GPT-4o-mini)", [first, openai])
    benchmark.extra_info.update(summaries_to_extra_info([first, openai]))

    # FIRST wins decisively on throughput (paper: 25.1 vs 6.7 req/s, ~3.7x).
    assert first.request_throughput > 2.5 * openai.request_throughput
    assert first.output_token_throughput > 2.0 * openai.output_token_throughput

    # The cloud API wins decisively on per-request latency (paper: 2.0 s vs 16.3 s).
    assert openai.median_latency_s < 4.0
    assert first.median_latency_s > 3 * openai.median_latency_s

    # Sanity: both served every request, and the OpenAI rate hovered near its limit.
    assert first.num_successful == NUM_REQUESTS
    assert openai.num_successful == NUM_REQUESTS
    assert 4.0 <= openai.request_throughput <= 7.5
