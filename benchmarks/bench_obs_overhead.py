"""Observability overhead benchmark: tracing must be observe-only and cheap.

Replays a ShareGPT workload through a full deployment (gateway pipeline →
relay → endpoint → engine) three times:

* ``off``       — no observability middleware at all (the baseline);
* ``sampling_off`` — observability enabled with ``sample_rate=0`` and no
  slowest-K reservoir: RED metrics are recorded but no trace has a path to
  retention, so the tracer takes its metrics-only fast path.  This is the
  production posture for high-rate sweeps, and the **gated** mode: its
  wall-clock overhead over ``off`` must stay under 5%;
* ``full``      — every trace retained (``sample_rate=1``) plus the kernel
  profiler, reporting the cost ceiling of span recording (not gated; head
  sampling exists precisely to bound it).

All three modes must produce a bit-identical simulated-timing checksum —
tracing performs no simulated-time spends, schedules no events and draws no
RNG, and the benchmark fails loudly if that ever regresses.

Usage::

    python benchmarks/bench_obs_overhead.py             # full run, prints report
    python benchmarks/bench_obs_overhead.py --write     # writes BENCH_obs.json
    python benchmarks/bench_obs_overhead.py --quick --check
        # CI smoke: fail on a checksum mismatch or a sampling-off overhead
        # above the gate
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (  # noqa: E402
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
    ObservabilityConfig,
)
from repro.workload import PoissonArrival, ShareGPTWorkload  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_obs.json"
MODEL = "Qwen/Qwen2.5-7B-Instruct"

FULL_SCENARIO = {"num_requests": 1200, "rate": 6.0, "repeats": 9}
#: CI smoke: shorter runs are noisier per round (±15% single-round ratio
#: spread on a shared runner), so the quick scenario takes the median over
#: more rounds instead.
QUICK_SCENARIO = {"num_requests": 600, "rate": 6.0, "repeats": 9}

#: Acceptance gate (ISSUE 8): wall-clock overhead of the sampling-off mode.
#: ``--write`` enforces it strictly — the committed baseline is the
#: authoritative record that the gate holds.  The quick CI smoke adds a
#: noise margin: it exists to catch gross regressions (span recording
#: leaking back into the sampling-off fast path costs +35%), not to re-prove
#: the 5% bound on a shared runner.
OVERHEAD_GATE = 0.05
QUICK_NOISE_MARGIN = 0.05

MODES = {
    "off": None,
    "sampling_off": ObservabilityConfig(sample_rate=0.0, slowest_k=0),
    "full": ObservabilityConfig(sample_rate=1.0, profile_kernel=True),
}


def run_mode(observability, num_requests: int, rate: float) -> dict:
    """One deployment-level replay; returns wall clock + timing checksum."""
    deployment = FIRSTDeployment(DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="bench", kind="small", num_nodes=2, scheduler="local",
                models=[ModelDeploymentSpec(MODEL, max_parallel_tasks=32)],
            )
        ],
        users=["bench@anl.gov"],
        generate_text=False,
        observability=observability,
    ))
    deployment.warm_up(MODEL)
    token = deployment.client("bench@anl.gov").access_token
    requests = ShareGPTWorkload().generate(MODEL, num_requests=num_requests)
    offsets = PoissonArrival(rate=rate, seed=11).offsets(num_requests)
    env = deployment.env
    result_events = []

    def driver(env):
        last = 0.0
        for request, offset in zip(requests, offsets):
            if offset > last:
                yield env.timeout(offset - last)
                last = offset
            result_events.append(deployment.gateway.submit_request(token, request))
        yield env.all_of(result_events)

    proc = env.process(driver(env))
    wall_start = time.perf_counter()
    env.run(until=proc)
    wall_s = time.perf_counter() - wall_start

    digest = hashlib.sha256()
    for event in result_events:
        r = event.value
        digest.update(repr((r.request_id, r.success, r.output_tokens,
                            r.prefill_start_time, r.first_token_time,
                            r.completion_time)).encode())
    out = {
        "wall_s": round(wall_s, 4),
        "sim_duration_s": round(env.now, 6),
        "trace_sha256": digest.hexdigest(),
    }
    layer = deployment.observability
    if layer is not None:
        out["tracing"] = layer.tracer.stats()
        if layer.kernel_profiler is not None:
            snap = layer.kernel_profiler.snapshot()
            out["kernel"] = {k: snap[k] for k in
                             ("events_total", "windows", "window_iterations",
                              "max_queue_depth")}
    return out


def run_scenario(num_requests: int, rate: float, repeats: int = 5) -> dict:
    """Paired repeats: each round runs every mode back to back, the overhead
    estimate is the median of the per-round wall-clock ratios.  Pairing
    cancels machine-speed drift between rounds; the median shrugs off a
    single scheduler stall, which best-of-N does not when it hits the
    baseline round."""
    rounds = {name: [] for name in MODES}
    for _ in range(repeats):
        for name, config in MODES.items():
            rounds[name].append(run_mode(config, num_requests, rate))
    checksums = {run["trace_sha256"] for runs in rounds.values() for run in runs}
    best = {name: min(runs, key=lambda r: r["wall_s"])
            for name, runs in rounds.items()}

    def median_ratio(name):
        ratios = sorted(rounds[name][i]["wall_s"] / rounds["off"][i]["wall_s"]
                        for i in range(repeats))
        return ratios[repeats // 2]

    return {
        "scenario": {"model": MODEL, "num_requests": num_requests,
                     "rate_req_s": rate, "repeats": repeats},
        **best,
        "bit_identical": len(checksums) == 1,
        "sampling_off_overhead": round(median_ratio("sampling_off") - 1, 4),
        "full_overhead": round(median_ratio("full") - 1, 4),
    }


def report(entry: dict, gate: float) -> None:
    scenario = entry["scenario"]
    print(f"observability overhead @ {scenario['num_requests']} requests, "
          f"{scenario['rate_req_s']} req/s [{scenario['model']}]")
    for name in MODES:
        run = entry[name]
        print(f"  {name:13s} wall={run['wall_s']:.4f}s "
              f"sha={run['trace_sha256'][:12]}")
    print(f"  bit_identical={entry['bit_identical']}")
    print(f"  sampling_off_overhead={entry['sampling_off_overhead']:+.2%} "
          f"(gate < {gate:.0%})")
    print(f"  full_overhead={entry['full_overhead']:+.2%} (reported, not gated)")


def check(entry: dict, gate: float) -> int:
    failures = []
    if not entry["bit_identical"]:
        failures.append("simulated timings differ across observability modes")
    if entry["sampling_off_overhead"] > gate:
        failures.append(
            f"sampling-off overhead {entry['sampling_off_overhead']:.2%} "
            f"exceeds the {gate:.0%} gate")
    full = entry["full"]
    if full["tracing"]["finished"] != entry["scenario"]["num_requests"]:
        failures.append("full mode did not finish a trace per request")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small scenario (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on identity or overhead violations")
    parser.add_argument("--write", action="store_true",
                        help=f"write {BASELINE_PATH.name}")
    args = parser.parse_args()

    scenario = QUICK_SCENARIO if args.quick else FULL_SCENARIO
    gate = OVERHEAD_GATE + (QUICK_NOISE_MARGIN if args.quick else 0.0)
    entry = run_scenario(**scenario)
    report(entry, gate)

    status = check(entry, gate) if (args.check or args.write) else 0
    if args.write and status == 0:
        BASELINE_PATH.write_text(json.dumps(
            {("quick" if args.quick else "full"): entry,
             "overhead_gate": OVERHEAD_GATE}, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
    return status


if __name__ == "__main__":
    sys.exit(main())
