"""§4.3 — Hot vs. cold model starts and the ``/jobs`` visibility endpoint.

Paper behaviour to reproduce:

* a request for a "hot" model is served with minimal latency;
* a "cold" start pays scheduler queueing + node acquisition + model-weight
  loading, and the loading time grows with the parameter count (an 8B model
  loads quickly; a 70B model takes on the order of a minute; a 405B-class
  model spanning several nodes takes several times longer);
* the ``/jobs`` endpoint reports models as running / starting / queued.
"""

import pytest

from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)
from repro.serving import InferenceRequest

MODEL_8B = "meta-llama/Llama-3.1-8B-Instruct"
MODEL_70B = "meta-llama/Llama-3.3-70B-Instruct"
MODEL_405B = "meta-llama/Llama-3.1-405B-Instruct"


def build_deployment():
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="sophia", kind="sophia", num_nodes=8, scheduler="pbs",
                models=[
                    ModelDeploymentSpec(MODEL_8B),
                    ModelDeploymentSpec(MODEL_70B),
                    ModelDeploymentSpec(MODEL_405B, tensor_parallel=32, nodes_per_instance=4),
                ],
            )
        ],
        users=["benchmark@anl.gov"],
        generate_text=False,
    )
    return FIRSTDeployment(config)


def measure_latency(deployment, client, model, request_id):
    request = InferenceRequest(request_id, model, prompt_tokens=200, max_output_tokens=100)
    start = deployment.now
    ev = client.submit(request)
    deployment.env.run(until=ev)
    return deployment.now - start


def run_cold_start_study():
    deployment = build_deployment()
    client = deployment.client("benchmark@anl.gov")
    data = {}

    # Cold starts, smallest to largest model.
    for model in (MODEL_8B, MODEL_70B, MODEL_405B):
        data[f"cold:{model}"] = measure_latency(deployment, client, model, f"cold-{model}")
    # Hot repeats.
    for model in (MODEL_8B, MODEL_70B, MODEL_405B):
        data[f"hot:{model}"] = measure_latency(deployment, client, model, f"hot-{model}")
    data["jobs"] = client.jobs()
    return data


@pytest.mark.benchmark(group="cold_start")
def test_cold_vs_hot_start_latencies(benchmark):
    data = benchmark.pedantic(run_cold_start_study, rounds=1, iterations=1)
    print("\n=== Cold vs hot request latency (includes scheduler + model load) ===")
    for key, value in data.items():
        if key.startswith(("cold", "hot")):
            print(f"  {key:<60s} {value:8.1f} s")
    benchmark.extra_info.update(
        {k: round(v, 1) for k, v in data.items() if isinstance(v, float)}
    )

    cold8, cold70, cold405 = (data[f"cold:{m}"] for m in (MODEL_8B, MODEL_70B, MODEL_405B))
    hot8, hot70, hot405 = (data[f"hot:{m}"] for m in (MODEL_8B, MODEL_70B, MODEL_405B))

    # Cold-start latency grows with model size (§4.3).
    assert cold8 < cold70 < cold405
    assert cold405 > 2 * cold8

    # Hot requests are dramatically faster than cold ones for every model.
    for cold, hot in ((cold8, hot8), (cold70, hot70), (cold405, hot405)):
        assert hot < cold / 3
        assert hot < 30.0

    # The /jobs endpoint now reports all three models as running.
    states = {j["model"]: j["state"] for j in data["jobs"]}
    assert states[MODEL_8B] == "running"
    assert states[MODEL_70B] == "running"
    assert states[MODEL_405B] == "running"
