"""§6.1 — Model evaluation and comparison case study.

"Researchers benchmarked fifteen GPT-style models ... The gateway's ability
to swap models instantly eliminated manual deployment steps, yielding a 40
percent reduction in total evaluation time while preserving consistent
throughput across all model variants."

The bench compares two ways of evaluating a suite of models on the same
prompt set:

* **FIRST**: all models are registered with the service; the evaluation
  sweeps through them via the gateway, and model "swaps" are instant because
  instances stay hot;
* **manual deployment**: each model is deployed by hand (cold start), the
  evaluation runs against it directly, then it is torn down before the next
  model — the workflow FIRST replaces.

The evaluation suite is scaled down (15 models x 60 requests instead of
50,000 requests) to keep the harness fast; the relative saving is what the
paper reports.
"""

import pytest

from repro.cluster import Node, dgx_a100_spec
from repro.core import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
    calibration,
)
from repro.serving import EngineConfig, ServingInstance, default_catalog
from repro.sim import Environment
from repro.workload import BenchmarkClient, ShareGPTWorkload

#: Fifteen 7-8B-class model variants (the paper's suite mixes AuroraGPT and
#: open-source models of similar size).
MODEL_SUITE = [f"eval-suite/model-{i:02d}" for i in range(15)]
REQUESTS_PER_MODEL = 60


def make_catalog():
    from repro.serving import ModelSpec

    catalog = default_catalog()
    for name in MODEL_SUITE:
        catalog.register(ModelSpec(name, params_b=7.5, default_tp=1, n_layers=32, kv_heads=8))
    return catalog


def run_with_first():
    catalog = make_catalog()
    config = DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="sophia", kind="sophia", num_nodes=15, scheduler="pbs",
                models=[ModelDeploymentSpec(m, max_parallel_tasks=48) for m in MODEL_SUITE],
            )
        ],
        users=["evaluator@anl.gov"],
        generate_text=False,
    )
    deployment = FIRSTDeployment(config, catalog=catalog)
    client = deployment.client("evaluator@anl.gov")
    start = deployment.now
    total_tokens = 0
    # All model variants are registered with the service; their instances come
    # up in parallel and stay hot, so "swapping" models during the sweep is
    # instantaneous (no manual redeployment between variants).
    prewarm_events = []
    for model in MODEL_SUITE:
        prewarm_events.extend(deployment.prewarm(model))
    deployment.env.run(until=deployment.env.all_of(prewarm_events))
    for model in MODEL_SUITE:
        requests = ShareGPTWorkload().generate(model, num_requests=REQUESTS_PER_MODEL,
                                               id_prefix=f"eval-{model[-2:]}")
        bench = BenchmarkClient(deployment.env, client, label=model)
        proc = deployment.env.process(bench.run(requests, summary_label=model))
        summary = deployment.env.run(until=proc)
        total_tokens += summary.total_output_tokens
    return {"duration_s": deployment.now - start, "output_tokens": total_tokens}


def run_manual_deployment():
    catalog = make_catalog()
    env = Environment()
    node = Node("manual-0", dgx_a100_spec())
    start = env.now
    total_tokens = 0
    for model in MODEL_SUITE:
        spec = catalog.get(model)
        instance = ServingInstance(
            env, spec, [node],
            perf_config=calibration.default_perf_config(),
            engine_config=EngineConfig(generate_text=False),
        )
        env.run(until=instance.ready)  # manual cold start for every model
        requests = ShareGPTWorkload().generate(model, num_requests=REQUESTS_PER_MODEL,
                                               id_prefix=f"manual-{model[-2:]}")
        bench = BenchmarkClient(env, instance, label=model)
        proc = env.process(bench.run(requests, summary_label=model))
        summary = env.run(until=proc)
        total_tokens += summary.total_output_tokens
        instance.stop()  # tear down before deploying the next model
    return {"duration_s": env.now - start, "output_tokens": total_tokens}


def run_case_study():
    return {"first": run_with_first(), "manual": run_manual_deployment()}


@pytest.mark.benchmark(group="case_study_eval")
def test_model_evaluation_case_study(benchmark):
    results = benchmark.pedantic(run_case_study, rounds=1, iterations=1)
    first, manual = results["first"], results["manual"]
    reduction = 1.0 - first["duration_s"] / manual["duration_s"]
    print("\n=== Case study 6.1: evaluating 15 models on the same prompt set ===")
    print(f"  FIRST gateway sweep : {first['duration_s']:8.1f} s "
          f"({first['output_tokens']} tokens)")
    print(f"  manual redeployment : {manual['duration_s']:8.1f} s "
          f"({manual['output_tokens']} tokens)")
    print(f"  evaluation-time reduction: {reduction:.0%} (paper: ~40%)")
    benchmark.extra_info.update(
        {"first_s": round(first["duration_s"], 1), "manual_s": round(manual["duration_s"], 1),
         "reduction": round(reduction, 3)}
    )

    # Both approaches evaluate the full suite.
    assert first["output_tokens"] > 0 and manual["output_tokens"] > 0
    # FIRST eliminates the per-model redeployment cost: a substantial
    # reduction in total evaluation time (paper: ~40%).
    assert reduction > 0.25
    assert reduction < 0.75
