"""§5.3.1 — The three gateway optimisations (ablation).

* **Optimization 1**: replacing 2 s status polling with concurrent futures
  removes the polling quantisation from every request's latency.
* **Optimization 2**: caching token introspection / endpoint connections
  "eliminated 2 s from the latency of each request" and avoids hammering the
  auth service.
* **Optimization 3**: moving from synchronous Django REST (nine concurrent
  requests) to the asynchronous gateway raised response throughput by roughly
  20x on a single compute node, and an Artillery-style load test (100 req/s)
  left thousands of tasks queued at the Globus relay rather than at the API.
"""

import pytest

from _harness import MODEL_8B

from repro.core import FIRSTDeployment
from repro.gateway import GatewayConfig, RetrievalMode, ServerMode
from repro.serving import InferenceRequest
from repro.workload import BenchmarkClient, ShareGPTWorkload, UniformArrival


def build(gateway_config, max_parallel_tasks=200):
    deployment = FIRSTDeployment.sophia_benchmark(
        model=MODEL_8B, max_instances=1, num_nodes=2,
        max_parallel_tasks=max_parallel_tasks, gateway_config=gateway_config,
    )
    deployment.warm_up(MODEL_8B)
    client = deployment.client("benchmark@anl.gov")
    # Warm the token cache so per-request measurements are steady-state.
    warm = client.submit(InferenceRequest("warm", MODEL_8B, prompt_tokens=50,
                                          max_output_tokens=10))
    deployment.env.run(until=warm)
    return deployment, client


def measure_single_latency(client, deployment, request_id):
    request = InferenceRequest(request_id, MODEL_8B, prompt_tokens=220, max_output_tokens=150)
    start = deployment.now
    ev = client.submit(request)
    deployment.env.run(until=ev)
    return deployment.now - start


def run_retrieval_and_cache_ablation():
    latencies = {}
    for label, config in [
        ("futures + cached auth", GatewayConfig()),
        ("polling (Opt.1 off)", GatewayConfig(retrieval_mode=RetrievalMode.POLLING)),
        ("no auth caching (Opt.2 off)", GatewayConfig(cache_token_introspection=False)),
    ]:
        deployment, client = build(config)
        latencies[label] = measure_single_latency(client, deployment, f"probe-{label}")
    return latencies


def run_sync_vs_async():
    """Artillery-style constant-rate load: 100 req/s for 120 s."""
    results = {}
    for label, config in [
        ("async gateway", GatewayConfig(server_mode=ServerMode.ASYNC)),
        ("sync legacy gateway", GatewayConfig(server_mode=ServerMode.SYNC_LEGACY)),
    ]:
        deployment, client = build(config)
        requests = ShareGPTWorkload().generate(MODEL_8B, num_requests=6000)
        bench = BenchmarkClient(deployment.env, client, label=label)
        proc = deployment.env.process(
            bench.run(requests, arrival=UniformArrival(rate=100.0), summary_label=label)
        )
        # Measure completions within the fixed load window rather than waiting
        # for the long sync backlog to drain.
        deployment.run_for(120.0)
        completed = len([r for r in bench.collector.records if r.success])
        results[label] = {
            "completed_in_window": completed,
            "throughput_req_s": completed / 120.0,
            "queued_at_relay": deployment.relay.queued_tasks,
            "peak_queued_at_relay": deployment.relay.stats.peak_queued,
        }
    return results


@pytest.mark.benchmark(group="optimizations")
def test_optimization1_and_2_latency_ablation(benchmark):
    latencies = benchmark.pedantic(run_retrieval_and_cache_ablation, rounds=1, iterations=1)
    print("\n=== Optimizations 1 & 2: per-request latency ablation (warm 8B instance) ===")
    for label, latency in latencies.items():
        print(f"  {label:<32s} {latency:6.2f} s")
    benchmark.extra_info.update({k: round(v, 3) for k, v in latencies.items()})

    base = latencies["futures + cached auth"]
    polling = latencies["polling (Opt.1 off)"]
    uncached = latencies["no auth caching (Opt.2 off)"]
    # Polling quantises retrieval to the 2 s poll interval: ≥1 s extra.
    assert polling > base + 1.0
    # Uncached introspection + connection setup adds roughly 2 s (paper's claim).
    assert 1.0 <= uncached - base <= 3.5


@pytest.mark.benchmark(group="optimizations")
def test_optimization3_async_vs_sync_gateway(benchmark):
    results = benchmark.pedantic(run_sync_vs_async, rounds=1, iterations=1)
    print("\n=== Optimization 3: async vs sync gateway under 100 req/s load ===")
    for label, data in results.items():
        print(f"  {label:<24s} {data['throughput_req_s']:6.2f} req/s completed, "
              f"{data['peak_queued_at_relay']} tasks queued at the relay")
    benchmark.extra_info.update(results)

    async_result = results["async gateway"]
    sync_result = results["sync legacy gateway"]
    # The asynchronous gateway completes far more requests in the window
    # (the paper reports a ~20x response-throughput improvement).
    ratio = async_result["throughput_req_s"] / max(sync_result["throughput_req_s"], 1e-9)
    assert ratio > 5.0
    # With the async gateway the backlog accumulates at the Globus relay, not
    # at the API server (the paper saw >8000 tasks queued at Globus under a
    # 100 req/s Artillery run).
    assert async_result["peak_queued_at_relay"] > 3000
    assert async_result["peak_queued_at_relay"] > 5 * sync_result["peak_queued_at_relay"]
