"""Sweep-plane scale benchmark: a million-request grid, sharded across workers.

Expands one declarative grid (:class:`repro.sweep.SweepSpec`) of engine-level
cells — offered rates × kernel queue backends × workload seeds — into ≥1M
simulated requests (full mode), runs it under :class:`repro.sweep.SweepRunner`
at several worker counts, and reports:

* wall-clock per worker count and the measured N-worker speedup;
* one merged :class:`repro.metrics.MergeableSummary` over every shard
  (log-bucket quantiles, associative merge) — with its fingerprint, which
  must be **bit-identical for every worker count** (cells are merged in cell
  order and cell RNG streams are keyed by cell key, never by scheduling);
* per-(rate, seed) fingerprint identity between the ``heap`` and
  ``calendar`` kernel queue backends — the kernel's bit-identical-trace
  invariant, revalidated at million-request scale.

Usage::

    python benchmarks/bench_sweep_scale.py            # full grid, prints report
    python benchmarks/bench_sweep_scale.py --write    # full + quick, writes BENCH_sweep.json
    python benchmarks/bench_sweep_scale.py --quick --check
        # CI smoke: small 2-worker grid; fail on fingerprint divergence, on
        # merged-quantile drift vs the committed baseline, or on a >20%
        # speedup-ratio regression

Speedup gates are parallelism-aware: the absolute floors (3x at 4 workers,
a modest gain at 2) only bind when the machine actually has that many CPUs
— ``cpu_count`` is recorded in the baseline, so a baseline written on a
small box never inflates expectations, and a many-core CI runner is still
held to the absolute floor.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sweep import SweepRunner, SweepSpec  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"
MODEL = "meta-llama/Llama-3.1-8B-Instruct"

QUEUE_BACKENDS = ["heap", "calendar"]

#: Full grid: 12 cells x 87,500 requests = 1,050,000 simulated requests.
FULL_GRID = {"rates": [8.0, 32.0, 64.0], "seeds": [0, 1],
             "requests_per_cell": 87_500}
FULL_WORKERS = [1, 2, 4]

#: CI smoke grid: 8 cells x 6,250 requests = 50,000 requests — big enough
#: that two real CPUs beat the worker-pool spawn overhead, small enough for
#: a PR gate.
QUICK_GRID = {"rates": [8.0, 64.0], "seeds": [0, 1],
              "requests_per_cell": 6_250}
QUICK_WORKERS = [1, 2]

#: Fraction of the committed baseline speedup a --check run must retain.
REGRESSION_TOLERANCE = 0.8
#: Absolute speedup floors, applied only when min(workers, cpus) allows them.
PARALLEL_SPEEDUP_FLOOR_4W = 3.0
PARALLEL_SPEEDUP_FLOOR_2W = 1.1
#: --check tolerance on merged p50/p99 drift vs the committed baseline.
#: Merged metrics are deterministic, so this only absorbs numeric drift
#: across numpy/python versions.
QUANTILE_TOLERANCE = 0.20


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_grid(name: str, rates, seeds, requests_per_cell: int) -> SweepSpec:
    return SweepSpec(
        name,
        runner="engine",
        base={"model": MODEL, "num_requests": requests_per_cell},
        axes={"rate": rates, "kernel_queue": QUEUE_BACKENDS, "seed": seeds},
    )


def queue_identity_failures(result) -> list:
    """Heap and calendar cells of the same (rate, seed) must be bit-identical."""
    failures = []
    by_key = {r.key: r for r in result if r.ok}
    for key, shard in by_key.items():
        if "/kernel_queue=heap/" not in key:
            continue
        twin = by_key.get(key.replace("/kernel_queue=heap/", "/kernel_queue=calendar/"))
        if twin is None:
            continue
        if (shard.payload["mergeable"].fingerprint()
                != twin.payload["mergeable"].fingerprint()):
            failures.append(f"{key}: heap and calendar shards diverge")
    return failures


def run_grid(name: str, grid: dict, workers_list, progress: bool = False) -> dict:
    spec = build_grid(name, grid["rates"], grid["seeds"], grid["requests_per_cell"])
    cells = spec.expand()
    total_requests = sum(c.num_requests for c in cells)
    print(f"\n=== sweep scale: {name} — {len(cells)} cells, "
          f"{total_requests:,} requests, workers {list(workers_list)} ===")

    runs = {}
    fingerprints = {}
    merged_summary = None
    identity_failures: list = []
    for workers in workers_list:
        result = SweepRunner(workers=workers, progress=progress).run(cells)
        if not result.ok:
            for failure in result.failures:
                print(f"FAIL: {failure.key}\n{failure.error}")
            raise RuntimeError(f"{len(result.failures)} cells failed at "
                               f"workers={workers}")
        merged = result.merged(label=name)
        fingerprints[workers] = merged.fingerprint()
        runs[str(workers)] = {"wall_s": round(result.wall_s, 3)}
        if merged_summary is None:
            merged_summary = merged.to_benchmark_summary()
            identity_failures = queue_identity_failures(result)
        print(f"  workers={workers}: wall={result.wall_s:7.2f}s "
              f"({total_requests / result.wall_s:,.0f} req/s-wall) "
              f"fingerprint={fingerprints[workers][:16]}")

    base_wall = runs[str(workers_list[0])]["wall_s"]
    for workers in workers_list:
        runs[str(workers)]["speedup"] = round(base_wall / runs[str(workers)]["wall_s"], 3)
    identical = len(set(fingerprints.values())) == 1
    print(f"  merged: {merged_summary.row()}")
    print(f"  merge fingerprints identical across worker counts: {identical}")
    print(f"  heap/calendar shard identity: "
          f"{'OK' if not identity_failures else 'FAIL'}")
    for failure in identity_failures:
        print(f"    {failure}")
    speedups = ", ".join(f"{w}w={runs[str(w)]['speedup']:.2f}x" for w in workers_list)
    print(f"  speedup vs 1 worker: {speedups}")
    return {
        "grid": {"model": MODEL, "rates": grid["rates"],
                 "kernel_queues": QUEUE_BACKENDS, "seeds": grid["seeds"],
                 "requests_per_cell": grid["requests_per_cell"]},
        "cells": len(cells),
        "total_requests": total_requests,
        "runs": runs,
        "fingerprint": fingerprints[workers_list[0]],
        "fingerprints_identical": identical,
        "queue_identity_failures": identity_failures,
        "merged": {
            "num_requests": merged_summary.num_requests,
            "throughput_req_s": round(merged_summary.request_throughput, 3),
            "p50_latency_s": round(merged_summary.median_latency_s, 4),
            "p99_latency_s": round(merged_summary.p99_latency_s, 4),
        },
    }


def correctness_failures(entry: dict) -> list:
    failures = []
    if not entry["fingerprints_identical"]:
        failures.append("merged fingerprints differ across worker counts")
    failures.extend(entry["queue_identity_failures"])
    return failures


def speedup_failures(entry: dict, cpus: int, baseline_entry: dict = None) -> list:
    """Parallelism-aware speedup gates for one grid entry."""
    failures = []
    for workers_str, run in entry["runs"].items():
        workers = int(workers_str)
        if workers == 1:
            continue
        floors = []
        if baseline_entry is not None:
            ref = baseline_entry["runs"].get(workers_str)
            if ref is not None and ref["speedup"] > 0:
                floors.append(("baseline ratio",
                               ref["speedup"] * REGRESSION_TOLERANCE))
        effective = min(workers, cpus)
        if effective >= 4:
            floors.append(("4-worker floor", PARALLEL_SPEEDUP_FLOOR_4W))
        elif effective >= 2:
            floors.append(("2-worker floor", PARALLEL_SPEEDUP_FLOOR_2W))
        for reason, floor in floors:
            if run["speedup"] < floor:
                failures.append(
                    f"workers={workers}: speedup {run['speedup']:.2f}x below "
                    f"{floor:.2f}x ({reason}, {cpus} CPUs)")
    return failures


def quantile_failures(entry: dict, baseline_entry: dict) -> list:
    failures = []
    for stat in ("p50_latency_s", "p99_latency_s"):
        expected = baseline_entry["merged"][stat]
        got = entry["merged"][stat]
        if expected > 0 and abs(got - expected) / expected > QUANTILE_TOLERANCE:
            failures.append(f"merged {stat} {got} drifted "
                            f">{QUANTILE_TOLERANCE:.0%} from baseline {expected}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true",
                        help="run the small CI grid instead of the full one")
    parser.add_argument("--write", action="store_true",
                        help="run full + quick grids and write the baseline JSON")
    parser.add_argument("--check", action="store_true",
                        help="fail on fingerprint divergence, quantile drift or "
                             "speedup regression vs the baseline")
    parser.add_argument("--progress", action="store_true",
                        help="print per-shard progress lines")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    cpus = cpu_count()
    print(f"machine: {cpus} CPUs")

    if args.write:
        baseline = {
            "cpu_count": cpus,
            "full": run_grid("sweep-full", FULL_GRID, FULL_WORKERS,
                             progress=args.progress),
            "quick": run_grid("sweep-quick", QUICK_GRID, QUICK_WORKERS,
                              progress=args.progress),
        }
        failures = (correctness_failures(baseline["full"])
                    + correctness_failures(baseline["quick"])
                    + speedup_failures(baseline["full"], cpus)
                    + speedup_failures(baseline["quick"], cpus))
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"\nwrote {args.baseline}")
        return 0

    key = "quick" if args.quick else "full"
    grid = QUICK_GRID if args.quick else FULL_GRID
    workers_list = QUICK_WORKERS if args.quick else FULL_WORKERS
    entry = run_grid(f"sweep-{key}", grid, workers_list, progress=args.progress)

    failures = correctness_failures(entry)
    baseline_entry = None
    if args.check and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        baseline_entry = baseline.get(key)
        if baseline_entry is not None:
            failures.extend(quantile_failures(entry, baseline_entry))
    failures.extend(speedup_failures(entry, cpus, baseline_entry))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: sweep scale gates hold ({entry['total_requests']:,} requests)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
