"""Figure 4 — Auto-scaling: 1 to 4 instances of Llama 3.3 70B under maximum load.

Paper series (infinite request rate, ShareGPT, 1000 requests):

=============  ==========  ==========  ===============
instances      req/s       tok/s       median latency
=============  ==========  ==========  ===============
1              8.3         1432        54.5 s
2              14.6        (1.75x)     30.1 s
3              20.9        (2.52x)     18.8 s
4              23.9        4131 (2.88x)  16.0 s
=============  ==========  ==========  ===============

Scaling is sub-linear; the paper attributes the ceiling to Globus Compute's
ability to route requests to multiple instances, which the relay's routing
scalability model reproduces.  Instances are pre-warmed so the measurement
reflects steady-state scaling (cold starts are covered by
``bench_cold_start.py``).
"""

import pytest

from _harness import MODEL_70B, print_table, run_first_scenario, summaries_to_extra_info

INSTANCE_COUNTS = [1, 2, 3, 4]
NUM_REQUESTS = 1000


def run_scaling():
    summaries = {}
    for n in INSTANCE_COUNTS:
        summaries[n] = run_first_scenario(
            MODEL_70B,
            NUM_REQUESTS,
            rate=None,
            max_instances=n,
            prewarm_instances=n,
            num_nodes=max(8, n + 1),
            label=f"FIRST {n} instance(s)",
        )
    return summaries


@pytest.mark.benchmark(group="fig4")
def test_fig4_autoscaling(benchmark):
    summaries = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    ordered = [summaries[n] for n in INSTANCE_COUNTS]
    print_table("Figure 4: auto-scaling, Llama 3.3 70B under maximum load", ordered)
    benchmark.extra_info.update(summaries_to_extra_info(ordered))

    throughput = {n: summaries[n].request_throughput for n in INSTANCE_COUNTS}
    tokens = {n: summaries[n].output_token_throughput for n in INSTANCE_COUNTS}
    latency = {n: summaries[n].median_latency_s for n in INSTANCE_COUNTS}

    # Throughput increases monotonically with the instance count...
    assert throughput[1] < throughput[2] < throughput[3] < throughput[4]
    assert tokens[1] < tokens[4]
    # ...and median latency decreases monotonically.
    assert latency[1] > latency[2] > latency[3] > latency[4]

    # Sub-linear scaling, in the paper's ballpark: 2 instances give ~1.6-1.9x,
    # 4 instances give ~2.5-3.3x (paper: 1.75x and 2.88x).
    scale2 = throughput[2] / throughput[1]
    scale4 = throughput[4] / throughput[1]
    assert 1.5 <= scale2 <= 2.0
    assert 2.4 <= scale4 <= 3.4
    # Far from ideal linear scaling.
    assert scale4 < 3.6

    # Absolute single-instance throughput lands near the paper's 8.3 req/s.
    assert 6.5 <= throughput[1] <= 10.0
