"""Calibration constants and the paper anchors they were fitted to.

The reproduction runs on a simulator, not on Sophia's DGX A100 nodes, so a
small number of constants map model size / GPU allocation / relay behaviour
onto wall-clock time.  Every constant below is tied to a specific
measurement in the paper; benchmarks assert the resulting *shapes* (who
wins, by roughly what factor, where crossovers fall) rather than exact
numbers.  EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..faas import ComputeClientConfig, RelayConfig
from ..gateway import GatewayConfig
from ..serving import APIServerConfig, EngineConfig, PerfModelConfig

__all__ = [
    "CALIBRATION_NOTES",
    "default_perf_config",
    "default_engine_config",
    "default_api_server_config",
    "default_relay_config",
    "default_gateway_config",
    "default_compute_client_config",
    "DEFAULT_MAX_PARALLEL_TASKS",
    "describe",
]

#: Anchor → constant mapping, kept in one place so EXPERIMENTS.md and the
#: benchmark harnesses can print it alongside results.
CALIBRATION_NOTES: Dict[str, str] = {
    "serving.alpha=4500, beta=0.627, batch_half_saturation=33, prefill_speedup=10": (
        "Fitted jointly to Fig. 3 (70B/TP=8: ~3 s single-request latency, "
        "~1700 output tok/s saturated once prefill interference is paid) and "
        "Fig. 5 (8B/TP=4: ~3300 tok/s saturated)."
    ),
    "api_server.base_handling_s=0.08, degradation_connections=400": (
        "The single-threaded vLLM API front-end tops out near 12 req/s and "
        "collapses to ~4-6 req/s when ~1000 connections are open simultaneously "
        "(Fig. 3, 20 req/s and infinite rate), while adding <0.1 s per request "
        "at low concurrency."
    ),
    "relay.routing_rate_max=66, routing_half_instances=7": (
        "Globus-Compute routing scalability fitted to Fig. 4: 8.3/14.6/20.9/23.9 "
        "req/s for 1-4 instances (the paper attributes the ceiling to Globus "
        "Compute's ability to route requests to multiple instances)."
    ),
    "relay latencies (submit=0.8, dispatch=2.4, result=1.8) + endpoint poll 1.0 + gateway": (
        "The ~6 s per-request overhead of FIRST vs Direct at 1 req/s "
        "(9.2 s vs 3.0 s median, Fig. 3)."
    ),
    "gateway.uncached_connection_setup_s=1.5 + introspection 0.3 s": (
        "Optimization 2: caching token introspection and endpoint connections "
        "'eliminated 2 s from the latency of each request'."
    ),
    "gateway.sync_workers=9": (
        "Optimization 3: the legacy synchronous Django REST deployment could "
        "only process nine requests at a time."
    ),
    "compute_client.poll_interval_s=2.0": (
        "Optimization 1: the original design polled task status every 2 s."
    ),
    "max_parallel_tasks=96": (
        "Endpoint admission bound per instance; keeps the instance's API "
        "front-end healthy while saturating the engine (~9 req/s for 70B)."
    ),
    "offline_factor=1.1": (
        "Batch mode avoids online-serving overhead; a 1000-request 70B batch "
        "reaches ~2100 tok/s overall including the cold start (§5.3.1)."
    ),
}

#: Default per-instance admission bound used by deployments.
DEFAULT_MAX_PARALLEL_TASKS = 96


def default_perf_config() -> PerfModelConfig:
    """Serving timing model fitted to Figs. 3-5 (see CALIBRATION_NOTES)."""
    return PerfModelConfig(
        alpha=4500.0,
        beta=0.627,
        batch_half_saturation=33.0,
        prefill_speedup=10.0,
        engine_init_s=25.0,
        offline_factor=1.1,
    )


def default_engine_config(generate_text: bool = False) -> EngineConfig:
    return EngineConfig(max_num_seqs=256, generate_text=generate_text)


def default_api_server_config() -> APIServerConfig:
    return APIServerConfig(threads=1, base_handling_s=0.08, degradation_connections=400.0)


def default_relay_config() -> RelayConfig:
    return RelayConfig(
        submit_latency_s=0.8,
        dispatch_latency_s=2.4,
        result_latency_s=1.8,
        routing_rate_max=66.0,
        routing_half_instances=7.0,
    )


def default_gateway_config() -> GatewayConfig:
    return GatewayConfig()


def default_compute_client_config() -> ComputeClientConfig:
    return ComputeClientConfig(poll_interval_s=2.0, poll_latency_s=0.15)


def describe() -> Dict[str, str]:
    """Return the calibration notes (printed by the benchmark harnesses)."""
    return dict(CALIBRATION_NOTES)
