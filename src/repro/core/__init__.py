"""The FIRST toolkit facade: deployments, calibration and the client SDK."""

from . import calibration
from .client import FIRSTClient
from .deployment import (
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)

__all__ = [
    "FIRSTDeployment",
    "DeploymentConfig",
    "ClusterDeploymentSpec",
    "ModelDeploymentSpec",
    "FIRSTClient",
    "calibration",
]
