"""The FIRST toolkit facade: deployments, calibration and the client SDK."""

from . import calibration
from .client import FIRSTClient
from .deployment import (
    AutoscaleConfig,
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
)

__all__ = [
    "FIRSTDeployment",
    "DeploymentConfig",
    "ClusterDeploymentSpec",
    "ModelDeploymentSpec",
    "AutoscaleConfig",
    "FIRSTClient",
    "calibration",
]
