"""The FIRST toolkit facade: deployments, calibration and the client SDK."""

from . import calibration
from .client import FIRSTClient
from .deployment import (
    AutoscaleConfig,
    ClusterDeploymentSpec,
    DeploymentConfig,
    FIRSTDeployment,
    ModelDeploymentSpec,
    ObservabilityConfig,
    federated_config,
    quickstart_config,
    sophia_benchmark_config,
)

__all__ = [
    "FIRSTDeployment",
    "DeploymentConfig",
    "ClusterDeploymentSpec",
    "ModelDeploymentSpec",
    "AutoscaleConfig",
    "ObservabilityConfig",
    "FIRSTClient",
    "calibration",
    "quickstart_config",
    "sophia_benchmark_config",
    "federated_config",
]
