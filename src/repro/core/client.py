"""OpenAI-style Python client bound to a FIRST deployment.

"Once authenticated, users can make API requests using standard HTTP clients
or the OpenAI Python package" (§4.6).  :class:`FIRSTClient` plays the role of
that OpenAI client: it holds the user's access token (refreshing it when
needed) and exposes ``chat_completion``, ``completion``, ``embedding``,
``create_batch``, ``jobs`` and ``models`` calls.

Two calling styles are supported:

* **blocking** (examples): ``client.chat_completion(...)`` advances the
  simulation until the response is available and returns the OpenAI dict;
* **target protocol** (benchmarks): ``client.submit(request)`` returns a
  simulation event, which is what :class:`~repro.workload.BenchmarkClient`
  expects.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..auth import TokenBundle
from ..serving import InferenceRequest
from ..sim import Event

__all__ = ["FIRSTClient"]


class FIRSTClient:
    """A user-facing client for one authenticated identity."""

    def __init__(self, deployment, token_bundle: TokenBundle):
        self.deployment = deployment
        self.env = deployment.env
        self.gateway = deployment.gateway
        self._bundle = token_bundle

    # ------------------------------------------------------------------ token handling
    @property
    def username(self) -> str:
        return self._bundle.username

    @property
    def access_token(self) -> str:
        self._maybe_refresh()
        return self._bundle.access_token

    @property
    def name(self) -> str:
        return "FIRST"

    def _maybe_refresh(self) -> None:
        """Transparently refresh the access token when it nears expiry (§4.6)."""
        if self.env.now >= self._bundle.expires_at - 300.0:
            self._bundle = self.deployment.auth.refresh(self._bundle.refresh_token)

    # ------------------------------------------------------------------ target protocol
    def submit(self, request: InferenceRequest) -> Event:
        """Submit a typed request; returns the result event (benchmark protocol)."""
        return self.gateway.submit_request(self.access_token, request)

    # ------------------------------------------------------------------ blocking helpers
    def _call(self, generator):
        proc = self.env.process(generator)
        return self.env.run(until=proc)

    def chat_completion(self, model: str, messages: List[Dict[str, str]],
                        max_tokens: int = 256, **params) -> dict:
        """``POST /v1/chat/completions`` (blocking)."""
        body = {"model": model, "messages": messages, "max_tokens": max_tokens, **params}
        return self._call(self.gateway.chat_completions(self.access_token, body))

    def completion(self, model: str, prompt: str, max_tokens: int = 256, **params) -> dict:
        """``POST /v1/completions`` (blocking)."""
        body = {"model": model, "prompt": prompt, "max_tokens": max_tokens, **params}
        return self._call(self.gateway.completions(self.access_token, body))

    def embedding(self, model: str, text: str) -> dict:
        """``POST /v1/embeddings`` (blocking)."""
        body = {"model": model, "input": text}
        return self._call(self.gateway.embeddings(self.access_token, body))

    def create_batch(self, input_jsonl: str, endpoint_id: Optional[str] = None) -> dict:
        """``POST /v1/batches`` (blocking submit; poll with :meth:`get_batch`)."""
        return self._call(self.gateway.create_batch(self.access_token, input_jsonl, endpoint_id))

    def get_batch(self, batch_id: str) -> dict:
        return self._call(self.gateway.get_batch(self.access_token, batch_id))

    def wait_for_batch(self, batch_id: str, poll_every_s: float = 30.0,
                       timeout_s: float = 24 * 3600.0) -> dict:
        """Advance the simulation until the batch reaches a terminal state."""
        waited = 0.0
        while waited < timeout_s:
            status = self.get_batch(batch_id)
            if status["status"] in ("completed", "failed"):
                return status
            self.deployment.run_for(poll_every_s)
            waited += poll_every_s
        raise TimeoutError(f"Batch {batch_id} did not finish within {timeout_s}s")

    # ------------------------------------------------------------------ informational
    def models(self) -> dict:
        """``GET /v1/models``."""
        return self.gateway.list_models()

    def jobs(self) -> List[dict]:
        """``GET /jobs`` — model availability / wait-time transparency (§4.3)."""
        return self.gateway.jobs()

    def dashboard(self) -> dict:
        return self.gateway.dashboard()
