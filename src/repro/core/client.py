"""OpenAI-style Python client bound to a FIRST deployment.

"Once authenticated, users can make API requests using standard HTTP clients
or the OpenAI Python package" (§4.6).  :class:`FIRSTClient` plays the role of
that OpenAI client: it holds the user's access token (refreshing it when
needed) and exposes ``chat_completion``, ``completion``, ``embedding``,
``create_batch``, ``jobs`` and ``models`` calls.

Three calling styles are supported:

* **blocking** (examples): ``client.chat_completion(...)`` advances the
  simulation until the response is available and returns the OpenAI dict;
* **streaming** (API v2): ``client.chat_completion(..., stream=True)``
  returns an iterator of OpenAI-style ``chat.completion.chunk`` dicts —
  each ``next()`` advances the simulation to the next token event, ending
  with a chunk carrying ``finish_reason`` and the usage block;
* **target protocol** (benchmarks): ``client.submit(request)`` returns a
  simulation event, which is what :class:`~repro.workload.BenchmarkClient`
  expects.

Gateway failures arrive as typed error envelopes.  With the default
``raise_on_error=True`` the client re-raises them as the matching
:mod:`repro.common.errors` exception; with ``raise_on_error=False`` the
envelope dict is returned (or yielded as the terminal chunk) unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..auth import TokenBundle
from ..gateway import GatewayStream, exception_from_envelope, is_error_envelope
from ..serving import InferenceRequest, InferenceResult, RequestKind
from ..sim import Event

__all__ = ["FIRSTClient"]


class FIRSTClient:
    """A user-facing client for one authenticated identity."""

    def __init__(self, deployment, token_bundle: TokenBundle, raise_on_error: bool = True):
        self.deployment = deployment
        self.env = deployment.env
        self.gateway = deployment.gateway
        self._bundle = token_bundle
        #: Re-raise gateway error envelopes as typed exceptions (default) or
        #: hand the raw ``{"error": {...}}`` body back to the caller.
        self.raise_on_error = raise_on_error

    # ------------------------------------------------------------------ token handling
    @property
    def username(self) -> str:
        return self._bundle.username

    @property
    def access_token(self) -> str:
        self._maybe_refresh()
        return self._bundle.access_token

    @property
    def name(self) -> str:
        return "FIRST"

    def _maybe_refresh(self) -> None:
        """Transparently refresh the access token when it nears expiry (§4.6)."""
        if self.env.now >= self._bundle.expires_at - 300.0:
            self._bundle = self.deployment.auth.refresh(self._bundle.refresh_token)

    # ------------------------------------------------------------------ target protocol
    def submit(self, request: InferenceRequest) -> Event:
        """Submit a typed request; returns the result event (benchmark protocol)."""
        return self.gateway.submit_request(self.access_token, request)

    # ------------------------------------------------------------------ blocking helpers
    def _call(self, generator):
        proc = self.env.process(generator)
        return self._unwrap(self.env.run(until=proc))

    def _unwrap(self, response):
        if self.raise_on_error and is_error_envelope(response):
            raise exception_from_envelope(response)
        return response

    def chat_completion(self, model: str, messages: List[Dict[str, str]],
                        max_tokens: int = 256, stream: bool = False, **params):
        """``POST /v1/chat/completions`` (blocking; iterator when ``stream=True``)."""
        body = {"model": model, "messages": messages, "max_tokens": max_tokens,
                "stream": stream, **params}
        if stream:
            return self._open_stream(body, RequestKind.CHAT_COMPLETION)
        return self._call(self.gateway.chat_completions(self.access_token, body))

    def completion(self, model: str, prompt: str, max_tokens: int = 256,
                   stream: bool = False, **params):
        """``POST /v1/completions`` (blocking; iterator when ``stream=True``)."""
        body = {"model": model, "prompt": prompt, "max_tokens": max_tokens,
                "stream": stream, **params}
        if stream:
            return self._open_stream(body, RequestKind.COMPLETION)
        return self._call(self.gateway.completions(self.access_token, body))

    def embedding(self, model: str, text: str) -> dict:
        """``POST /v1/embeddings`` (blocking)."""
        body = {"model": model, "input": text}
        return self._call(self.gateway.embeddings(self.access_token, body))

    # ------------------------------------------------------------------ streaming (API v2)
    def _open_stream(self, body: dict, kind: RequestKind) -> Iterator[dict]:
        """Open a streaming request; returns the chunk iterator."""
        try:
            request = self.gateway.build_request(body, kind)
        except Exception as exc:
            from ..common import ReproError
            from ..gateway import error_envelope

            if self.raise_on_error or not isinstance(exc, ReproError):
                raise
            return iter([error_envelope(exc)])
        stream = self.gateway.submit_stream(self.access_token, request)
        return self._iter_chunks(stream)

    def _iter_chunks(self, stream: GatewayStream) -> Iterator[dict]:
        """Advance the simulation event by event, yielding OpenAI chunks."""
        # Only the identity fields are known mid-stream; the terminal chunk
        # (built from the real result) carries usage.
        request = stream.request
        shell = InferenceResult(
            request_id=request.request_id,
            model=request.model,
            prompt_tokens=request.prompt_tokens,
            output_tokens=0,
        )
        sent_role = False
        while True:
            item = self.env.run(until=stream.channel.get())
            if item is None:
                return  # channel closed without a terminal event
            if item.kind == "error":
                if self.raise_on_error and item.exception is not None:
                    raise item.exception
                yield {"error": item.error}
                return
            if item.kind == "token":
                if not sent_role:
                    sent_role = True
                    yield shell.to_openai_chunk(delta={"role": "assistant", "content": ""})
                yield shell.to_openai_chunk(delta={"content": item.text})
            elif item.kind == "done":
                final = item.result
                stream.result = final
                yield final.to_openai_chunk(
                    finish_reason="stop" if final.success else "error",
                    include_usage=True,
                )
                return

    def create_batch(self, input_jsonl: str, endpoint_id: Optional[str] = None) -> dict:
        """``POST /v1/batches`` (blocking submit; poll with :meth:`get_batch`)."""
        return self._call(self.gateway.create_batch(self.access_token, input_jsonl, endpoint_id))

    def get_batch(self, batch_id: str) -> dict:
        return self._call(self.gateway.get_batch(self.access_token, batch_id))

    def retry_batch(self, batch_id: str) -> dict:
        """``POST /v1/batches/{id}/retry`` — resubmit only the failed requests."""
        return self._call(self.gateway.retry_batch(self.access_token, batch_id))

    def wait_for_batch(self, batch_id: str, poll_every_s: float = 30.0,
                       timeout_s: float = 24 * 3600.0) -> dict:
        """Advance the simulation until the batch reaches a terminal state."""
        waited = 0.0
        while waited < timeout_s:
            status = self.get_batch(batch_id)
            if status["status"] in ("completed", "failed"):
                return status
            self.deployment.run_for(poll_every_s)
            waited += poll_every_s
        raise TimeoutError(f"Batch {batch_id} did not finish within {timeout_s}s")

    # ------------------------------------------------------------------ informational
    def models(self) -> dict:
        """``GET /v1/models``."""
        return self.gateway.list_models()

    def jobs(self) -> List[dict]:
        """``GET /jobs`` — model availability / wait-time transparency (§4.3)."""
        return self.gateway.jobs()

    def dashboard(self) -> dict:
        return self.gateway.dashboard()

    def metrics_text(self) -> str:
        """``GET /v1/metrics`` — Prometheus text exposition (observability)."""
        return self.gateway.metrics_text()

    def get_trace(self, trace_id: str) -> dict:
        """``GET /v1/traces/{id}`` — a retained distributed trace as a dict."""
        return self.gateway.get_trace(trace_id)

    def get_trace_perfetto(self, trace_id: str) -> dict:
        """A retained trace as Chrome/Perfetto trace-event JSON."""
        if self.gateway.observability is None:
            from ..common import NotFoundError

            raise NotFoundError("Observability is not enabled on this gateway")
        trace = self.gateway.observability.trace_perfetto(trace_id)
        if trace is None:
            from ..common import NotFoundError

            raise NotFoundError(f"Unknown or unretained trace id: {trace_id}")
        return trace
