"""Deployment assembly: wire every substrate into a running FIRST service.

:class:`FIRSTDeployment` is the top-level object users and benchmarks work
with.  Given a :class:`DeploymentConfig` it builds, inside one simulation
environment:

* the Globus-Auth-like service with identity providers, users, groups and
  policies;
* one cluster + batch scheduler + compute endpoint per configured facility;
* the cloud relay with the admin confidential client and the pre-registered
  inference functions;
* the federation registry/router;
* the Inference Gateway.

Convenience constructors cover the paper's scenarios (quickstart on a small
local cluster; a Sophia-like benchmark deployment; the Sophia+Polaris
federation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..autoscale import AutoscaleConfig
from ..auth import AccessPolicy, AuthServiceConfig, GlobusAuthLikeService, IdentityProvider
from ..cluster import (
    Cluster,
    FacilityStatusProvider,
    SchedulerConfig,
    make_scheduler,
    polaris_like,
    small_test_cluster,
    sophia_like,
)
from ..common import ConfigurationError, IdGenerator
from ..faas import (
    HANDLER_BATCH,
    HANDLER_CHAT,
    HANDLER_EMBEDDING,
    ComputeClient,
    ComputeEndpoint,
    EndpointConfig,
    ModelHostingConfig,
    RelayService,
)
from ..federation import FederationRegistry, FederationRouter, PriorityRouter
from ..gateway import GatewayConfig, GatewayDatabase, InferenceGatewayAPI
from ..obs.middleware import ObservabilityConfig, observability_middleware_factories
from ..placement import TopologyView
from ..serving import ModelCatalog, default_catalog
from ..sim import Environment
from . import calibration
from .client import FIRSTClient

__all__ = [
    "AutoscaleConfig",
    "ObservabilityConfig",
    "ModelDeploymentSpec",
    "ClusterDeploymentSpec",
    "DeploymentConfig",
    "FIRSTDeployment",
    "quickstart_config",
    "sophia_benchmark_config",
    "federated_config",
]


@dataclass
class ModelDeploymentSpec:
    """One model hosted on one cluster."""

    model: str
    backend: str = "vllm"
    tensor_parallel: Optional[int] = None
    nodes_per_instance: int = 1
    max_instances: int = 1
    max_parallel_tasks: int = calibration.DEFAULT_MAX_PARALLEL_TASKS
    hot_idle_timeout_s: float = 2 * 3600.0
    #: Waiting tasks per ready instance that trigger reactive scale-up.
    scale_up_queue_per_instance: int = 8
    #: Autoscaling control plane for this model (``None`` = legacy reactive
    #: queue-depth scale-up only; see :class:`repro.autoscale.AutoscaleConfig`).
    autoscale: Optional[AutoscaleConfig] = None

    def to_hosting(self) -> ModelHostingConfig:
        return ModelHostingConfig(
            model=self.model,
            backend=self.backend,
            tensor_parallel=self.tensor_parallel,
            nodes_per_instance=self.nodes_per_instance,
            max_instances=self.max_instances,
            max_parallel_tasks=self.max_parallel_tasks,
            hot_idle_timeout_s=self.hot_idle_timeout_s,
            scale_up_queue_per_instance=self.scale_up_queue_per_instance,
            autoscale=self.autoscale,
        )


@dataclass
class ClusterDeploymentSpec:
    """One facility participating in the deployment."""

    name: str
    #: "sophia" | "polaris" | "small" — which cluster factory to use.
    kind: str = "small"
    num_nodes: int = 2
    scheduler: str = "pbs"
    scheduler_cycle_s: float = 2.0
    scheduler_prologue_s: float = 5.0
    models: List[ModelDeploymentSpec] = field(default_factory=list)
    endpoint_poll_interval_s: float = 1.0
    endpoint_monitor_interval_s: float = 30.0


@dataclass
class DeploymentConfig:
    """Full deployment description."""

    clusters: List[ClusterDeploymentSpec] = field(default_factory=list)
    gateway: GatewayConfig = field(default_factory=calibration.default_gateway_config)
    users: List[str] = field(default_factory=lambda: ["researcher@anl.gov"])
    identity_domains: List[str] = field(default_factory=lambda: ["anl.gov", "university.edu"])
    generate_text: bool = False
    seed: int = 0
    #: Kernel pending-event structure: "heap" | "calendar" | "auto" (see
    #: :mod:`repro.sim.queues`).  Simulation results are bit-identical across
    #: backends; only wall-clock differs.
    kernel_queue: str = "heap"
    #: Distributed tracing + metrics registry (see :mod:`repro.obs`).  When
    #: set and ``gateway.middleware_factories`` is None, the gateway pipeline
    #: gains an observability stage; tracing is observe-only, so simulation
    #: results are bit-identical with or without it.
    observability: Optional["ObservabilityConfig"] = None


def quickstart_config(generate_text: bool = True) -> DeploymentConfig:
    """Config of :meth:`FIRSTDeployment.quickstart` — a laptop-scale deployment.

    The shipped configs are module-level builders (rather than inline in the
    classmethods) so sweep cells can embed them and pickle-round-trip them to
    worker processes.
    """
    return DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="devcluster",
                kind="small",
                num_nodes=2,
                scheduler="local",
                models=[
                    ModelDeploymentSpec("Qwen/Qwen2.5-7B-Instruct", max_parallel_tasks=32),
                    ModelDeploymentSpec("meta-llama/Llama-3.1-8B-Instruct",
                                        max_parallel_tasks=32),
                    ModelDeploymentSpec("nvidia/NV-Embed-v2", backend="infinity"),
                ],
            )
        ],
        users=["researcher@anl.gov", "student@university.edu"],
        generate_text=generate_text,
    )


def sophia_benchmark_config(
    model: str = "meta-llama/Llama-3.3-70B-Instruct",
    max_instances: int = 1,
    num_nodes: int = 8,
    max_parallel_tasks: int = calibration.DEFAULT_MAX_PARALLEL_TASKS,
    gateway_config: Optional[GatewayConfig] = None,
) -> DeploymentConfig:
    """Config of :meth:`FIRSTDeployment.sophia_benchmark` (the §5 deployment)."""
    return DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="sophia",
                kind="sophia",
                num_nodes=num_nodes,
                scheduler="pbs",
                models=[
                    ModelDeploymentSpec(
                        model,
                        max_instances=max_instances,
                        max_parallel_tasks=max_parallel_tasks,
                    )
                ],
            )
        ],
        gateway=gateway_config or calibration.default_gateway_config(),
        users=["benchmark@anl.gov"],
        generate_text=False,
    )


def federated_config(
    model: str = "meta-llama/Llama-3.1-8B-Instruct",
    sophia_nodes: int = 4,
    polaris_nodes: int = 4,
) -> DeploymentConfig:
    """Config of :meth:`FIRSTDeployment.federated` (the §4.5 two-facility PoC)."""
    return DeploymentConfig(
        clusters=[
            ClusterDeploymentSpec(
                name="sophia", kind="sophia", num_nodes=sophia_nodes, scheduler="pbs",
                models=[ModelDeploymentSpec(model, max_instances=2)],
            ),
            ClusterDeploymentSpec(
                name="polaris", kind="polaris", num_nodes=polaris_nodes, scheduler="pbs",
                models=[ModelDeploymentSpec(model, max_instances=2)],
            ),
        ],
        users=["benchmark@anl.gov"],
        generate_text=False,
    )


class FIRSTDeployment:
    """A fully wired FIRST service inside one simulation environment."""

    CLIENT_ID = "first-gateway-client"
    CLIENT_SECRET = "first-gateway-secret"

    def __init__(self, config: Optional[DeploymentConfig] = None,
                 env: Optional[Environment] = None,
                 catalog: Optional[ModelCatalog] = None):
        self.config = config or DeploymentConfig()
        if not self.config.clusters:
            raise ConfigurationError("DeploymentConfig needs at least one cluster")
        self.env = env or Environment(queue=self.config.kernel_queue)
        self.catalog = catalog or default_catalog()
        self.ids = IdGenerator()

        self._build_auth()
        self._build_relay()
        self._build_clusters()
        self._build_gateway()

    # ------------------------------------------------------------------ assembly
    def _build_auth(self) -> None:
        self.auth = GlobusAuthLikeService(self.env, AuthServiceConfig())
        for domain in self.config.identity_domains:
            self.auth.register_provider(
                IdentityProvider(name=domain.split(".")[0].upper(), domain=domain)
            )
        for user in self.config.users:
            self.auth.register_user(user)
        self.auth.register_confidential_client(
            self.CLIENT_ID, self.CLIENT_SECRET, owner="first-admins",
            description="Gateway confidential client (shared with endpoints)",
        )
        # Service-wide policy: only registered identity domains may use the service.
        self.auth.policies.add_policy(
            AccessPolicy("registered-domains", resource="service",
                         allowed_domains=list(self.config.identity_domains))
        )

    def _build_relay(self) -> None:
        self.relay = RelayService(
            self.env, calibration.default_relay_config(), ids=self.ids,
            authorized_client_ids=[self.CLIENT_ID],
        )
        self.function_ids = {
            HANDLER_CHAT: "fn-inference-chat",
            HANDLER_EMBEDDING: "fn-inference-embedding",
            HANDLER_BATCH: "fn-inference-batch",
        }
        for handler, function_id in self.function_ids.items():
            self.relay.functions.register(
                function_id, name=handler, handler=handler, owner="first-admins"
            )

    def _make_cluster(self, spec: ClusterDeploymentSpec) -> Cluster:
        if spec.kind == "sophia":
            return sophia_like(num_nodes=spec.num_nodes)
        if spec.kind == "polaris":
            return polaris_like(num_nodes=spec.num_nodes)
        if spec.kind == "small":
            return small_test_cluster(name=spec.name, num_nodes=spec.num_nodes)
        raise ConfigurationError(f"Unknown cluster kind {spec.kind!r}")

    def _build_clusters(self) -> None:
        self.registry = FederationRegistry()
        self.clusters: Dict[str, Cluster] = {}
        self.schedulers: Dict[str, object] = {}
        self.endpoints: Dict[str, ComputeEndpoint] = {}

        perf_config = calibration.default_perf_config()
        engine_config = calibration.default_engine_config(self.config.generate_text)
        api_config = calibration.default_api_server_config()

        for spec in self.config.clusters:
            cluster = self._make_cluster(spec)
            # The spec name wins over the factory name so federation entries
            # are unambiguous even with two "small" clusters.
            cluster.name = spec.name
            scheduler = make_scheduler(
                spec.scheduler,
                self.env,
                cluster,
                SchedulerConfig(
                    cycle_latency_s=spec.scheduler_cycle_s,
                    prologue_s=spec.scheduler_prologue_s,
                ) if spec.scheduler in ("pbs", "slurm") else None,
                ids=self.ids,
            )
            endpoint = ComputeEndpoint(
                self.env,
                scheduler,
                self.catalog,
                EndpointConfig(
                    endpoint_id=f"ep-{spec.name}",
                    cluster=spec.name,
                    models=[m.to_hosting() for m in spec.models],
                    poll_interval_s=spec.endpoint_poll_interval_s,
                    monitor_interval_s=spec.endpoint_monitor_interval_s,
                    required_client_id=self.CLIENT_ID,
                ),
                perf_config=perf_config,
                engine_config=engine_config,
                api_config=api_config,
                ids=self.ids,
            )
            self.relay.register_endpoint(endpoint)
            provider = FacilityStatusProvider(self.env, scheduler)
            self.registry.register(endpoint, provider)
            self.clusters[spec.name] = cluster
            self.schedulers[spec.name] = scheduler
            self.endpoints[endpoint.endpoint_id] = endpoint

    def _build_gateway(self) -> None:
        # The placement plane's shared fleet view: one event-refreshed
        # aggregate of pool/cluster/latency signals that the router, the
        # federation-aware scaling policies and the reservation stage share.
        self.topology = TopologyView(self.env, self.registry)
        self.router: FederationRouter = PriorityRouter(self.topology)
        self.compute_client = ComputeClient(
            self.env,
            self.relay,
            self.CLIENT_ID,
            self.CLIENT_SECRET,
            auth=self.auth,
            config=calibration.default_compute_client_config(),
        )
        self.database = GatewayDatabase()
        gateway_config = self.config.gateway
        if (self.config.observability is not None
                and gateway_config.middleware_factories is None):
            # Prepend the observability stage to the stock chain; an explicit
            # middleware_factories list wins (callers compose their own).
            gateway_config = replace(
                gateway_config,
                middleware_factories=observability_middleware_factories(
                    self.config.observability),
            )
        self.gateway = InferenceGatewayAPI(
            self.env,
            self.auth,
            self.compute_client,
            self.router,
            self.catalog,
            function_ids=self.function_ids,
            config=gateway_config,
            database=self.database,
            ids=self.ids,
            topology=self.topology,
        )
        # Close the control loop: the gateway's recent TTFT/ITL/latency
        # medians become visible to every endpoint's autoscaling policies
        # and to the placement plane's pool signals.
        self.topology.gateway_metrics = self.gateway.metrics
        for endpoint in self.endpoints.values():
            endpoint.attach_gateway_metrics(self.gateway.metrics)

    # ------------------------------------------------------------------ operations
    def client(self, user: str, scopes: Optional[List[str]] = None,
               raise_on_error: bool = True) -> FIRSTClient:
        """Authenticate ``user`` and return an OpenAI-style client bound to the gateway.

        ``raise_on_error=False`` makes the client return the gateway's typed
        error envelopes (``{"error": {...}}``) instead of re-raising them as
        :mod:`repro.common.errors` exceptions.
        """
        if user not in self.auth.registered_users:
            self.auth.register_user(user)
        bundle = self.auth.issue_token(user, scopes)
        return FIRSTClient(self, bundle, raise_on_error=raise_on_error)

    def add_user(self, user: str) -> None:
        self.auth.register_user(user)

    def prewarm(self, model: str, instances: int = 1,
                endpoint_id: Optional[str] = None) -> List:
        """Launch ``instances`` hot instances of ``model`` ahead of traffic."""
        if endpoint_id is not None:
            endpoints = [self.endpoints[endpoint_id]]
        else:
            endpoints = [e.endpoint for e in self.registry.endpoints_for_model(model)][:1]
        if not endpoints:
            raise ConfigurationError(f"No endpoint hosts model {model}")
        events = []
        for endpoint in endpoints:
            events.extend(endpoint.prewarm(model, instances))
        return events

    def warm_up(self, model: str, instances: int = 1,
                endpoint_id: Optional[str] = None, timeout_s: float = 3600.0) -> None:
        """Prewarm and advance the simulation until the instances are ready."""
        events = self.prewarm(model, instances, endpoint_id)
        if events:
            self.env.run(until=self.env.all_of(events))
        # Give monitors a scheduling round.
        self.run_for(1.0)

    def run_for(self, seconds: float) -> None:
        """Advance the simulation clock by ``seconds``."""
        self.env.run(until=self.env.now + seconds)

    def run_until(self, event) -> object:
        return self.env.run(until=event)

    @property
    def now(self) -> float:
        return self.env.now

    @property
    def observability(self):
        """The gateway's :class:`~repro.obs.ObservabilityLayer` (or ``None``)."""
        return self.gateway.observability

    # ------------------------------------------------------------------ ready-made deployments
    @classmethod
    def quickstart(cls, generate_text: bool = True) -> "FIRSTDeployment":
        """A laptop-scale deployment: one 2-node cluster hosting small chat models
        plus the embedding model, with a local (no-queue) scheduler."""
        return cls(quickstart_config(generate_text))

    @classmethod
    def sophia_benchmark(
        cls,
        model: str = "meta-llama/Llama-3.3-70B-Instruct",
        max_instances: int = 1,
        num_nodes: int = 8,
        max_parallel_tasks: int = calibration.DEFAULT_MAX_PARALLEL_TASKS,
        gateway_config: Optional[GatewayConfig] = None,
    ) -> "FIRSTDeployment":
        """The §5 benchmark deployment: a Sophia-like cluster hosting one model."""
        return cls(sophia_benchmark_config(
            model, max_instances=max_instances, num_nodes=num_nodes,
            max_parallel_tasks=max_parallel_tasks, gateway_config=gateway_config,
        ))

    @classmethod
    def federated(
        cls,
        model: str = "meta-llama/Llama-3.1-8B-Instruct",
        sophia_nodes: int = 4,
        polaris_nodes: int = 4,
    ) -> "FIRSTDeployment":
        """The §4.5 federation proof of concept: Sophia plus Polaris."""
        return cls(federated_config(model, sophia_nodes=sophia_nodes,
                                    polaris_nodes=polaris_nodes))
