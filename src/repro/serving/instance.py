"""A running model instance: GPUs + engine + API front-end + lifecycle.

Instances are what Globus-Compute-like endpoints create when they acquire
nodes for a model: the weights are loaded (cold start), the engine and its
OpenAI-compatible front-end come up, and the instance stays "hot" until the
endpoint releases it.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from dataclasses import dataclass
from typing import List, Optional

from ..cluster.node import Node
from ..sim import Environment, Event
from .api_server import APIServer, APIServerConfig
from .backends import BackendSpec, get_backend
from .engine import ContinuousBatchingEngine, EngineConfig
from .models import ModelSpec
from .request import InferenceRequest
from .textgen import SyntheticTextGenerator
from .timing import PerfModelConfig, PerformanceModel

__all__ = ["InstanceState", "ServingInstance", "EmbeddingServingInstance"]


class InstanceState(str, enum.Enum):
    """Lifecycle of a model instance (matches the ``/jobs`` endpoint vocabulary)."""

    STARTING = "starting"
    RUNNING = "running"
    #: Finishing in-flight work before a scale-down retirement; accepts no
    #: new requests (``is_ready`` is False).
    DRAINING = "draining"
    STOPPED = "stopped"
    FAILED = "failed"


class ServingInstance:
    """One model served on a specific set of GPUs."""

    _counter = itertools.count()

    def __init__(
        self,
        env: Environment,
        model: ModelSpec,
        nodes: List[Node],
        tensor_parallel: Optional[int] = None,
        backend: str = "vllm",
        perf_config: Optional[PerfModelConfig] = None,
        engine_config: Optional[EngineConfig] = None,
        api_config: Optional[APIServerConfig] = None,
        instance_id: Optional[str] = None,
        cluster: str = "",
        text_generator: Optional[SyntheticTextGenerator] = None,
        via_api_server: bool = True,
    ):
        if not nodes:
            raise ValueError("An instance needs at least one node")
        self.env = env
        self.model = model
        self.nodes = list(nodes)
        self.tp = tensor_parallel or model.default_tp
        self.backend: BackendSpec = get_backend(backend)
        if not self.backend.supports_generation and not model.is_embedding:
            raise ValueError(
                f"Backend {self.backend.name} does not support generation models"
            )
        self.instance_id = instance_id or f"{model.name.split('/')[-1]}-{next(self._counter)}"
        self.cluster = cluster or (nodes[0].name.rsplit("-", 1)[0])
        self.via_api_server = via_api_server

        perf_config = perf_config or PerfModelConfig()
        perf_config = dataclasses.replace(
            perf_config, backend_factor=perf_config.backend_factor * self.backend.throughput_factor
        )
        self._reserve_gpus()
        self.perf = PerformanceModel(
            model=model,
            num_gpus=self.tp,
            gpu_spec=self.nodes[0].spec.gpu_spec,
            config=perf_config,
            node_spec=self.nodes[0].spec,
            num_nodes=len(self.nodes),
        )
        self.engine_config = engine_config or EngineConfig()
        self.api_config = api_config or APIServerConfig()
        self.text_generator = text_generator

        self.state = InstanceState.STARTING
        self.ready: Event = env.event()
        self.engine: Optional[ContinuousBatchingEngine] = None
        self.api_server: Optional[APIServer] = None
        self.started_at: Optional[float] = None
        self.load_time_s: Optional[float] = None
        self.last_request_time: float = env.now
        env.process(self._startup())

    # -- lifecycle -----------------------------------------------------------
    def _reserve_gpus(self) -> None:
        """Reserve ``tp`` GPUs spread across the instance's nodes."""
        remaining = self.tp
        vram_per_gpu = self.model.vram_per_gpu_gb(self.tp)
        self._reserved_nodes: List[Node] = []
        for node in self.nodes:
            if remaining <= 0:
                break
            take = min(remaining, len(node.free_gpus))
            if take > 0:
                node.reserve_gpus(take, vram_per_gpu, owner=self.instance_id)
                self._reserved_nodes.append(node)
                remaining -= take
        if remaining > 0:
            # Roll back partial reservations before failing.
            for node in self._reserved_nodes:
                node.release_gpus(self.instance_id)
            raise RuntimeError(
                f"Not enough free GPUs for {self.model.name} (TP={self.tp}) on "
                f"{[n.name for n in self.nodes]}"
            )

    def _startup(self):
        """Cold start: load weights, then bring up the engine and front-end."""
        fabric_overhead = 0.0
        if len(self.nodes) > 1:
            # Multi-node loads coordinate across the fabric.
            fabric_overhead = 5.0 * (len(self.nodes) - 1)
        self.load_time_s = self.perf.load_time_s(coordination_overhead_s=fabric_overhead)
        yield self.env.timeout(self.load_time_s)
        if self.state != InstanceState.STARTING:
            return  # released while loading
        self.engine = ContinuousBatchingEngine(
            self.env,
            self.perf,
            self.engine_config,
            instance_id=self.instance_id,
            cluster=self.cluster,
            text_generator=self.text_generator,
        )
        self.api_server = APIServer(self.env, self.engine, self.api_config)
        self.state = InstanceState.RUNNING
        self.started_at = self.env.now
        if not self.ready.triggered:
            self.ready.succeed(self)

    def drain(self) -> bool:
        """Stop accepting new requests; in-flight work runs to completion.

        Returns whether the instance transitioned (only RUNNING instances
        drain).  The owner retires the instance once ``in_flight`` reaches 0.
        """
        if self.state != InstanceState.RUNNING:
            return False
        self.state = InstanceState.DRAINING
        if self.engine is not None:
            self.engine.drain()
        return True

    def stop(self) -> None:
        """Release GPUs and stop the engine."""
        if self.state in (InstanceState.STOPPED, InstanceState.FAILED):
            return
        previous = self.state
        self.state = InstanceState.STOPPED
        if self.engine is not None:
            self.engine.stop()
        for node in self.nodes:
            node.release_gpus(self.instance_id)
        if previous == InstanceState.STARTING and not self.ready.triggered:
            self.ready.fail(RuntimeError(f"instance {self.instance_id} stopped while loading"))
            self.ready.defuse()

    def fail(self, reason: str = "inference server crashed") -> None:
        """Simulate an inference-server crash (used by fault-tolerance tests).

        The endpoint's process-management monitor detects FAILED instances
        and restarts them (paper §3.2.2, "Fault Tolerance").
        """
        if self.state in (InstanceState.STOPPED, InstanceState.FAILED):
            return
        previous = self.state
        self.state = InstanceState.FAILED
        if self.engine is not None:
            self.engine.stop()
        for node in self.nodes:
            node.release_gpus(self.instance_id)
        if previous == InstanceState.STARTING and not self.ready.triggered:
            self.ready.fail(RuntimeError(f"instance {self.instance_id} failed: {reason}"))
            self.ready.defuse()

    # -- request path -----------------------------------------------------------
    @property
    def is_ready(self) -> bool:
        return self.state == InstanceState.RUNNING

    @property
    def in_flight(self) -> int:
        if self.engine is None:
            return 0
        return self.engine.in_flight

    @property
    def idle_for_s(self) -> float:
        """Seconds since the last request was submitted (for hot-idle release)."""
        return self.env.now - self.last_request_time

    def submit(self, request: InferenceRequest) -> Event:
        """Submit a request to this instance (via the API front-end by default)."""
        if not self.is_ready:
            raise RuntimeError(f"Instance {self.instance_id} is not running")
        self.last_request_time = self.env.now
        if self.via_api_server:
            return self.api_server.submit(request)
        return self.engine.submit(request)

    def __repr__(self) -> str:
        return (
            f"<ServingInstance {self.instance_id} model={self.model.name} "
            f"state={self.state.value} nodes={[n.name for n in self.nodes]}>"
        )


class EmbeddingServingInstance:
    """An embedding-model instance with the same lifecycle protocol as
    :class:`ServingInstance` (used by endpoints for the Infinity-like backend)."""

    _counter = itertools.count()

    def __init__(
        self,
        env: Environment,
        model: ModelSpec,
        nodes: List[Node],
        tensor_parallel: Optional[int] = None,
        backend: str = "infinity",
        instance_id: Optional[str] = None,
        cluster: str = "",
        load_time_s: float = 20.0,
    ):
        from .embedding import EmbeddingEngine  # local import to avoid cycle

        if not nodes:
            raise ValueError("An instance needs at least one node")
        self.env = env
        self.model = model
        self.nodes = list(nodes)
        self.tp = tensor_parallel or model.default_tp
        self.backend = get_backend(backend)
        if not self.backend.supports_embeddings:
            raise ValueError(f"Backend {self.backend.name} does not support embeddings")
        self.instance_id = instance_id or f"{model.name.split('/')[-1]}-emb-{next(self._counter)}"
        self.cluster = cluster or (nodes[0].name.rsplit("-", 1)[0])
        vram = model.vram_per_gpu_gb(self.tp)
        nodes[0].reserve_gpus(self.tp, vram, owner=self.instance_id)
        self.state = InstanceState.STARTING
        self.ready: Event = env.event()
        self.engine: Optional["EmbeddingEngine"] = None
        self.load_time_s = load_time_s
        self.last_request_time: float = env.now
        self.started_at: Optional[float] = None
        env.process(self._startup())

    def _startup(self):
        from .embedding import EmbeddingEngine

        yield self.env.timeout(self.load_time_s)
        if self.state != InstanceState.STARTING:
            return
        self.engine = EmbeddingEngine(
            self.env, self.model, num_gpus=self.tp, instance_id=self.instance_id
        )
        self.state = InstanceState.RUNNING
        self.started_at = self.env.now
        if not self.ready.triggered:
            self.ready.succeed(self)

    @property
    def is_ready(self) -> bool:
        return self.state == InstanceState.RUNNING

    @property
    def in_flight(self) -> int:
        if self.engine is None:
            return 0
        return len(self.engine._queue)

    @property
    def idle_for_s(self) -> float:
        return self.env.now - self.last_request_time

    def drain(self) -> bool:
        """Same drain protocol as :class:`ServingInstance`."""
        if self.state != InstanceState.RUNNING:
            return False
        self.state = InstanceState.DRAINING
        return True

    def submit(self, request: InferenceRequest) -> Event:
        if not self.is_ready:
            raise RuntimeError(f"Instance {self.instance_id} is not running")
        self.last_request_time = self.env.now
        return self.engine.submit(request)

    def stop(self) -> None:
        if self.state == InstanceState.STOPPED:
            return
        previous = self.state
        self.state = InstanceState.STOPPED
        for node in self.nodes:
            node.release_gpus(self.instance_id)
        if previous == InstanceState.STARTING and not self.ready.triggered:
            self.ready.fail(RuntimeError(f"instance {self.instance_id} stopped while loading"))
            self.ready.defuse()
