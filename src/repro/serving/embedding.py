"""Embedding engine (the Infinity-like backend).

Embedding requests (NV-Embed-v2 in the paper) are latency-light and batch
well: the engine gathers requests over a short batching window and processes
them together.  Vectors are produced by a deterministic hashing featurizer so
that downstream retrieval (the RAG case study, §6.2) behaves consistently:
similar texts map to similar vectors because the featurizer hashes word
unigrams/bigrams into a fixed-size space.

Under load the engine macro-steps: when the backlog already holds complete
batches, their composition can no longer change (arrivals only append), so
the engine precomputes each batch's completion boundary with the same float
additions the stepwise loop performs and schedules one kernel event per
batch instead of two — halving event pressure while every
``InferenceResult.completion_time`` stays bit-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional

try:  # The simulator core stays importable without numpy; only the
    import numpy as np  # featurizer below actually needs it.
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from ..sim import Environment, Event
from .models import ModelSpec
from .request import InferenceRequest, InferenceResult, RequestKind

__all__ = ["hash_embedding", "EmbeddingEngineConfig", "EmbeddingEngine"]


def hash_embedding(text: str, dim: int = 384) -> np.ndarray:
    """Deterministic bag-of-words hashing embedding, L2-normalised.

    Word unigrams and bigrams are hashed into ``dim`` buckets with a signed
    hashing trick; texts sharing vocabulary therefore land near each other
    in cosine space, which is all the RAG case study requires.
    """
    if np is None:
        raise RuntimeError("hash_embedding requires numpy")
    vec = np.zeros(dim, dtype=np.float64)
    words = text.lower().split()
    grams = words + [" ".join(p) for p in zip(words, words[1:])]
    for gram in grams:
        digest = hashlib.md5(gram.encode()).digest()
        bucket = int.from_bytes(digest[:4], "little") % dim
        sign = 1.0 if digest[4] % 2 == 0 else -1.0
        vec[bucket] += sign
    norm = np.linalg.norm(vec)
    if norm > 0:
        vec /= norm
    return vec


@dataclass
class EmbeddingEngineConfig:
    """Batching and throughput parameters of the embedding server."""

    max_batch_size: int = 32
    batch_window_s: float = 0.01
    #: Prompt tokens embedded per second per GPU.
    tokens_per_s_per_gpu: float = 60000.0
    fixed_batch_overhead_s: float = 0.005
    embedding_dim: int = 384
    #: Collapse already-full backlog batches into one kernel event each
    #: (instead of window + service timeouts).  Bit-identical results; set
    #: False to force the stepwise reference loop.
    macro_stepping: bool = True


class EmbeddingEngine:
    """Batched embedding server."""

    def __init__(
        self,
        env: Environment,
        model: ModelSpec,
        num_gpus: int = 1,
        config: Optional[EmbeddingEngineConfig] = None,
        featurizer: Callable[[str, int], np.ndarray] = hash_embedding,
        instance_id: str = "embedding-0",
    ):
        self.env = env
        self.model = model
        self.num_gpus = max(1, num_gpus)
        self.config = config or EmbeddingEngineConfig(
            embedding_dim=model.embedding_dim or 384
        )
        self.featurizer = featurizer
        self.instance_id = instance_id
        self._queue: List[tuple] = []
        self._idle: Optional[Event] = None
        self.completed = 0
        self._loop = env.process(self._run())

    @property
    def throughput_tok_s(self) -> float:
        return self.config.tokens_per_s_per_gpu * self.num_gpus

    def submit(self, request: InferenceRequest) -> Event:
        """Queue an embedding request; the event succeeds with an :class:`InferenceResult`."""
        event = self.env.event()
        self._queue.append((request, event))
        if self._idle is not None and not self._idle.triggered:
            self._idle.succeed()
        return event

    def _run(self):
        env = self.env
        cfg = self.config
        while True:
            if not self._queue:
                self._idle = env.event()
                yield self._idle
                self._idle = None
            full = (len(self._queue) // cfg.max_batch_size
                    if cfg.macro_stepping else 0)
            if full >= 1:
                # Macro-step: the backlog's leading ``full`` batches are
                # complete, so arrivals (which only append) cannot change
                # their composition.  Precompute each completion boundary
                # with the same float additions the stepwise loop performs
                # (window, then service) and wake once per batch.
                t = env.now
                boundaries = []
                for i in range(full):
                    start = i * cfg.max_batch_size
                    batch = self._queue[start:start + cfg.max_batch_size]
                    total_tokens = sum(req.prompt_tokens for req, _ in batch)
                    t += cfg.batch_window_s
                    t += (cfg.fixed_batch_overhead_s
                          + total_tokens / self.throughput_tok_s)
                    boundaries.append(t)
                for boundary in boundaries:
                    yield env.timeout_at(boundary)
                    batch, self._queue = (
                        self._queue[: cfg.max_batch_size],
                        self._queue[cfg.max_batch_size:],
                    )
                    self._complete_batch(batch)
                continue
            # Small batching window to gather concurrent requests.
            yield env.timeout(cfg.batch_window_s)
            batch, self._queue = (
                self._queue[: cfg.max_batch_size],
                self._queue[cfg.max_batch_size:],
            )
            if not batch:
                continue
            total_tokens = sum(req.prompt_tokens for req, _ in batch)
            service = cfg.fixed_batch_overhead_s + total_tokens / self.throughput_tok_s
            yield env.timeout(service)
            self._complete_batch(batch)

    def _complete_batch(self, batch) -> None:
        """Featurize and succeed one processed batch at the current time."""
        env = self.env
        cfg = self.config
        for req, event in batch:
            vector = self.featurizer(req.prompt_text or req.request_id, cfg.embedding_dim)
            result = InferenceResult(
                request_id=req.request_id,
                model=req.model,
                prompt_tokens=req.prompt_tokens,
                output_tokens=0,
                embedding=vector.tolist(),
                success=True,
                arrival_time=req.arrival_time,
                engine_enqueue_time=req.arrival_time,
                completion_time=env.now,
                instance_id=self.instance_id,
            )
            self.completed += 1
            event.succeed(result)
