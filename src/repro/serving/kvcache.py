"""Paged KV-cache block manager (the PagedAttention memory model).

vLLM's PagedAttention stores each sequence's KV cache in fixed-size blocks so
GPU memory can be allocated on demand and reclaimed without fragmentation.
The engine uses this manager to decide how many sequences can run
concurrently; when the pool is exhausted, admission stalls (and, under
sustained pressure, the engine preempts the most recently admitted sequence).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

__all__ = ["KVCacheConfig", "KVCacheManager"]


@dataclass(frozen=True)
class KVCacheConfig:
    """Sizing of the paged KV cache."""

    capacity_tokens: int
    block_size: int = 16

    def __post_init__(self):
        if self.capacity_tokens < 0:
            raise ValueError("capacity_tokens must be >= 0")
        if self.block_size <= 0:
            raise ValueError("block_size must be > 0")

    @property
    def total_blocks(self) -> int:
        return self.capacity_tokens // self.block_size


class KVCacheManager:
    """Tracks block allocation per sequence."""

    def __init__(self, config: KVCacheConfig):
        self.config = config
        self._allocated: Dict[str, int] = {}
        self._used_blocks = 0
        #: Cumulative count of allocation failures (admission stalls).
        self.allocation_failures = 0
        #: Cumulative count of preemptions performed by the engine.
        self.preemptions = 0

    # -- queries -----------------------------------------------------------
    @property
    def total_blocks(self) -> int:
        return self.config.total_blocks

    @property
    def used_blocks(self) -> int:
        return self._used_blocks

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self._used_blocks

    @property
    def utilization(self) -> float:
        if self.total_blocks == 0:
            return 1.0
        return self._used_blocks / self.total_blocks

    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to store ``tokens`` tokens of KV cache."""
        return math.ceil(max(0, tokens) / self.config.block_size)

    def can_allocate(self, tokens: int) -> bool:
        return self.blocks_for(tokens) <= self.free_blocks

    def holds(self, seq_id: str) -> bool:
        return seq_id in self._allocated

    # -- mutation ------------------------------------------------------------
    def allocate(self, seq_id: str, tokens: int) -> bool:
        """Reserve blocks for a new sequence; returns False if it does not fit."""
        if seq_id in self._allocated:
            raise ValueError(f"Sequence {seq_id} already has an allocation")
        blocks = self.blocks_for(tokens)
        if blocks > self.free_blocks:
            self.allocation_failures += 1
            return False
        self._allocated[seq_id] = blocks
        self._used_blocks += blocks
        return True

    def grow(self, seq_id: str, new_total_tokens: int) -> bool:
        """Grow a sequence's allocation to cover ``new_total_tokens`` tokens."""
        if seq_id not in self._allocated:
            raise KeyError(f"Sequence {seq_id} has no allocation")
        needed = self.blocks_for(new_total_tokens)
        current = self._allocated[seq_id]
        if needed <= current:
            return True
        extra = needed - current
        if extra > self.free_blocks:
            self.allocation_failures += 1
            return False
        self._allocated[seq_id] = needed
        self._used_blocks += extra
        return True

    def _bulk_extra_blocks(self, requirements) -> int:
        """Extra blocks needed to grow every ``(seq_id, tokens)`` requirement."""
        extra = 0
        allocated = self._allocated
        for seq_id, tokens in requirements:
            if seq_id not in allocated:
                raise KeyError(f"Sequence {seq_id} has no allocation")
            need = self.blocks_for(tokens) - allocated[seq_id]
            if need > 0:
                extra += need
        return extra

    def can_grow_bulk(self, requirements) -> bool:
        """Whether every growth in ``requirements`` could be applied together.

        Because block demand per sequence is monotone in tokens, a ``True``
        answer proves that growing the same sequences one token at a time (in
        any interleaving, up to their requirement) cannot fail either; the
        engine's macro-stepper relies on exactly that property to rule out
        preemption inside a window.  A pure probe: nothing is allocated and a
        ``False`` answer does not count towards :attr:`allocation_failures`
        (the caller falls back to per-token stepping, whose individual
        :meth:`grow` calls keep the failure accounting of the non-bulk path).
        """
        return self._bulk_extra_blocks(list(requirements)) <= self.free_blocks

    def grow_bulk(self, requirements) -> bool:
        """Atomically grow several sequences' allocations.

        ``requirements`` is an iterable of ``(seq_id, new_total_tokens)``
        pairs.  Either every growth is applied, or — if the combined extra
        blocks exceed the free pool — nothing changes and ``False`` is
        returned (without counting an allocation failure; see
        :meth:`can_grow_bulk`).
        """
        requirements = list(requirements)
        allocated = self._allocated
        if self._bulk_extra_blocks(requirements) > self.free_blocks:
            return False
        for seq_id, tokens in requirements:
            needed = self.blocks_for(tokens)
            current = allocated[seq_id]
            if needed > current:
                allocated[seq_id] = needed
                self._used_blocks += needed - current
        return True

    def free(self, seq_id: str) -> None:
        """Release every block held by ``seq_id`` (no-op if unknown)."""
        blocks = self._allocated.pop(seq_id, 0)
        self._used_blocks -= blocks

    def preempt(self, seq_id: str) -> None:
        """Free a sequence's blocks due to preemption (tracked separately)."""
        if seq_id in self._allocated:
            self.preemptions += 1
            self.free(seq_id)

    def reset(self) -> None:
        self._allocated.clear()
        self._used_blocks = 0
