"""Model of the OpenAI-compatible API server fronting an engine.

The paper attributes the FIRST-vs-Direct crossover (Fig. 3) to the vLLM API
server's limited request-handling capacity under many concurrent
connections ("vLLM's API server historically being single-threaded", §4.4,
§5.3.1).  This module models that front-end explicitly:

* requests are handled by a small pool of server threads (1 by default —
  the historical single-threaded server);
* the per-request handling cost grows with the number of concurrently open
  connections (event-loop and serialization overhead), so hammering the
  server with 1000 simultaneous connections degrades it sharply, while a
  bounded admission (as enforced by a FIRST endpoint's ``max_parallel_tasks``)
  keeps it healthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Environment, Event, Resource
from .engine import ContinuousBatchingEngine
from .request import InferenceRequest, InferenceResult

__all__ = ["APIServerConfig", "APIServerStats", "APIServer"]


@dataclass
class APIServerConfig:
    """Front-end behaviour.

    ``base_handling_s`` is the per-request CPU cost with few open
    connections (the single-threaded server tops out around 12 req/s even
    when idle); the cost additionally scales by ``(1 + open_connections /
    degradation_connections)``, calibrated so ~1000 concurrent open
    connections push the server down to roughly 4-6 req/s as in the paper's
    Direct-infinite measurement.
    """

    threads: int = 1
    base_handling_s: float = 0.08
    degradation_connections: float = 400.0
    #: Maximum simultaneously open connections (0 = unlimited). Requests
    #: beyond the limit wait to connect.
    max_connections: int = 0


@dataclass
class APIServerStats:
    handled: int = 0
    rejected: int = 0
    peak_open_connections: int = 0
    handling_time_s: float = 0.0


class APIServer:
    """Front-end that forwards requests to a :class:`ContinuousBatchingEngine`."""

    def __init__(
        self,
        env: Environment,
        engine: ContinuousBatchingEngine,
        config: Optional[APIServerConfig] = None,
    ):
        self.env = env
        self.engine = engine
        self.config = config or APIServerConfig()
        self.stats = APIServerStats()
        self._threads = Resource(env, capacity=max(1, self.config.threads))
        self._open_connections = 0

    # -- queries -----------------------------------------------------------
    @property
    def open_connections(self) -> int:
        return self._open_connections

    def handling_cost_s(self) -> float:
        """Current per-request front-end cost given open connections."""
        cfg = self.config
        return cfg.base_handling_s * (
            1.0 + self._open_connections / cfg.degradation_connections
        )

    # -- request path --------------------------------------------------------
    def submit(self, request: InferenceRequest) -> Event:
        """Open a connection and process ``request``; returns a result event."""
        done = self.env.event()
        self.env.process(self._handle(request, done))
        return done

    def handle(self, request: InferenceRequest):
        """Simulation process form: ``result = yield from server.handle(req)``."""
        result = yield self.submit(request)
        return result

    def _handle(self, request: InferenceRequest, done: Event):
        cfg = self.config
        self._open_connections += 1
        self.stats.peak_open_connections = max(
            self.stats.peak_open_connections, self._open_connections
        )
        try:
            # Ingress: parse/validate/tokenize on a server thread.
            with self._threads.request() as req:
                yield req
                cost = self.handling_cost_s() / 2.0
                self.stats.handling_time_s += cost
                yield self.env.timeout(cost)

            result = yield self.engine.submit(request)

            # Egress: serialize the response on a server thread.
            with self._threads.request() as req:
                yield req
                cost = self.handling_cost_s() / 2.0
                self.stats.handling_time_s += cost
                yield self.env.timeout(cost)

            self.stats.handled += 1
            done.succeed(result)
        finally:
            self._open_connections -= 1
