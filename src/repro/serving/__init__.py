"""Model-serving substrate: catalog, timing model, engines and front-ends.

This package replaces vLLM/Infinity in the reproduction: a continuous-
batching engine with a paged KV cache and a calibrated timing model, an
OpenAI-style API front-end whose concurrency behaviour matches the paper's
Direct-vs-FIRST observations, an offline batch runner, and an embedding
engine.
"""

from .api_server import APIServer, APIServerConfig, APIServerStats
from .backends import BACKENDS, BackendSpec, get_backend, register_backend
from .embedding import EmbeddingEngine, EmbeddingEngineConfig, hash_embedding
from .engine import ContinuousBatchingEngine, EngineConfig, EngineStats
from .instance import EmbeddingServingInstance, InstanceState, ServingInstance
from .kvcache import KVCacheConfig, KVCacheManager
from .models import ModelCatalog, ModelKind, ModelSpec, default_catalog
from .offline import OfflineBatchRunner, OfflineRunResult
from .request import InferenceRequest, InferenceResult, RequestKind
from .stream import STREAM_CHANNEL_KEY, StreamChannel, StreamEvent
from .textgen import SyntheticTextGenerator, estimate_tokens
from .timing import PerfModelConfig, PerformanceModel

__all__ = [
    "ModelSpec",
    "ModelKind",
    "ModelCatalog",
    "default_catalog",
    "PerformanceModel",
    "PerfModelConfig",
    "KVCacheManager",
    "KVCacheConfig",
    "ContinuousBatchingEngine",
    "EngineConfig",
    "EngineStats",
    "APIServer",
    "APIServerConfig",
    "APIServerStats",
    "ServingInstance",
    "EmbeddingServingInstance",
    "InstanceState",
    "OfflineBatchRunner",
    "OfflineRunResult",
    "EmbeddingEngine",
    "EmbeddingEngineConfig",
    "hash_embedding",
    "InferenceRequest",
    "InferenceResult",
    "RequestKind",
    "StreamChannel",
    "StreamEvent",
    "STREAM_CHANNEL_KEY",
    "SyntheticTextGenerator",
    "estimate_tokens",
    "BackendSpec",
    "BACKENDS",
    "get_backend",
    "register_backend",
]
