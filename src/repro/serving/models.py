"""Model specifications and the model catalog.

The catalog mirrors the model families the paper exposes (§4.2): Qwen2.5,
Meta-Llama 3/3.1/3.3, Mistral/Mixtral, the science-focused AuroraGPT suite,
vision-language models, and NVIDIA's NV-Embed-v2 embedding model.

A :class:`ModelSpec` carries just enough architectural detail to drive the
serving timing model: parameter count, weight footprint, KV-cache bytes per
token, default tensor parallelism, and context length.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["ModelKind", "ModelSpec", "ModelCatalog", "default_catalog"]


class ModelKind(str, enum.Enum):
    """Functional group of a model (the paper's three groups, §4.2)."""

    CHAT = "chat"
    VISION = "vision"
    EMBEDDING = "embedding"


@dataclass(frozen=True)
class ModelSpec:
    """Static description of a servable model."""

    name: str
    params_b: float
    kind: ModelKind = ModelKind.CHAT
    #: Default tensor-parallel degree used by the deployment (paper §5.2.1:
    #: TP=4 for Llama 3.1 8B, TP=8 for Llama 3.3 70B).
    default_tp: int = 1
    #: Number of transformer layers (drives the KV-cache footprint).
    n_layers: int = 32
    #: KV heads × head dim (grouped-query attention reduces this).
    kv_heads: int = 8
    head_dim: int = 128
    context_length: int = 8192
    #: Bytes per parameter of the stored weights (2 = fp16/bf16).
    bytes_per_param: float = 2.0
    #: Embedding output dimension (embedding models only).
    embedding_dim: int = 0
    aliases: tuple = ()

    def __post_init__(self):
        if self.params_b <= 0:
            raise ValueError("params_b must be > 0")
        if self.default_tp <= 0:
            raise ValueError("default_tp must be > 0")

    # -- derived sizes -----------------------------------------------------
    @property
    def weights_gb(self) -> float:
        """Total weight footprint in GB."""
        return self.params_b * self.bytes_per_param

    @property
    def kv_bytes_per_token(self) -> float:
        """KV-cache bytes stored per generated/prompt token (fp16 K and V)."""
        return 2.0 * self.n_layers * self.kv_heads * self.head_dim * 2.0

    def vram_per_gpu_gb(self, tp: Optional[int] = None, overhead: float = 1.2) -> float:
        """Per-GPU VRAM needed for the weights alone (plus runtime overhead)."""
        tp = tp or self.default_tp
        return self.weights_gb * overhead / tp

    def gpus_required(self, gpu_memory_gb: float, overhead: float = 1.2) -> int:
        """Minimum number of GPUs needed to hold the weights."""
        import math

        return max(1, math.ceil(self.weights_gb * overhead / gpu_memory_gb))

    @property
    def is_embedding(self) -> bool:
        return self.kind == ModelKind.EMBEDDING

    def matches(self, name: str) -> bool:
        return name == self.name or name in self.aliases


class ModelCatalog:
    """Registry of servable models, keyed by name (with alias lookup).

    The paper notes that "adding a new model is straightforward: the model
    only needs to be supported by one of the configured back-ends, after
    which it can be registered via the service's dashboard" — hence
    :meth:`register` is a first-class operation.
    """

    def __init__(self, specs: Optional[List[ModelSpec]] = None):
        self._specs: Dict[str, ModelSpec] = {}
        for spec in specs or []:
            self.register(spec)

    def register(self, spec: ModelSpec) -> None:
        if spec.name in self._specs:
            raise ValueError(f"Model {spec.name} already registered")
        self._specs[spec.name] = spec

    def unregister(self, name: str) -> None:
        self._specs.pop(self.get(name).name)

    def get(self, name: str) -> ModelSpec:
        if name in self._specs:
            return self._specs[name]
        for spec in self._specs.values():
            if spec.matches(name):
                return spec
        raise KeyError(f"Unknown model: {name}")

    def __contains__(self, name: str) -> bool:
        try:
            self.get(name)
            return True
        except KeyError:
            return False

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs.values())

    @property
    def names(self) -> List[str]:
        return sorted(self._specs)

    def by_kind(self, kind: ModelKind) -> List[ModelSpec]:
        return [s for s in self._specs.values() if s.kind == kind]


def default_catalog() -> ModelCatalog:
    """The model catalogue of the paper's deployment (§4.2, §5.2, Table 1)."""
    specs = [
        # Qwen2.5 chat family
        ModelSpec("Qwen/Qwen2.5-7B-Instruct", 7, default_tp=1, n_layers=28, kv_heads=4),
        ModelSpec("Qwen/Qwen2.5-14B-Instruct", 14, default_tp=2, n_layers=48, kv_heads=8),
        ModelSpec("Qwen/Qwen2.5-32B-Instruct", 32, default_tp=4, n_layers=64, kv_heads=8),
        # Meta-Llama family (benchmark models of §5)
        ModelSpec("meta-llama/Llama-3.1-8B-Instruct", 8, default_tp=4, n_layers=32,
                  kv_heads=8, aliases=("Llama-3.1-8B", "meta-llama/Meta-Llama-3.1-8B-Instruct")),
        ModelSpec("meta-llama/Llama-3.3-70B-Instruct", 70, default_tp=8, n_layers=80,
                  kv_heads=8, aliases=("Llama-3.3-70B", "meta-llama/Meta-Llama-3-70B-Instruct")),
        ModelSpec("meta-llama/Llama-3.1-405B-Instruct", 405, default_tp=16, n_layers=126,
                  kv_heads=8, aliases=("Llama-3.1-405B",)),
        # Mistral / Mixtral
        ModelSpec("mistralai/Mistral-7B-Instruct-v0.3", 7, default_tp=1, n_layers=32, kv_heads=8),
        ModelSpec("mistralai/Mixtral-8x22B-Instruct-v0.1", 141, default_tp=8, n_layers=56,
                  kv_heads=8),
        # Gemma (Table 1)
        ModelSpec("google/gemma-2-27b-it", 27, default_tp=4, n_layers=46, kv_heads=16,
                  aliases=("Gemma-27B",)),
        # AuroraGPT science suite
        ModelSpec("argonne-private/AuroraGPT-7B", 7, default_tp=1, n_layers=32, kv_heads=8),
        ModelSpec("argonne-private/AuroraGPT-IT-v4-0125", 7, default_tp=1, n_layers=32,
                  kv_heads=8),
        ModelSpec("argonne-private/AuroraGPT-Tulu3-SFT-0125", 8, default_tp=1, n_layers=32,
                  kv_heads=8),
        # Vision-language models
        ModelSpec("Qwen/Qwen2-VL-72B-Instruct", 72, kind=ModelKind.VISION, default_tp=8,
                  n_layers=80, kv_heads=8),
        ModelSpec("meta-llama/Llama-3.2-90B-Vision-Instruct", 90, kind=ModelKind.VISION,
                  default_tp=8, n_layers=100, kv_heads=8),
        # Embedding model
        ModelSpec("nvidia/NV-Embed-v2", 7.8, kind=ModelKind.EMBEDDING, default_tp=1,
                  n_layers=32, kv_heads=8, embedding_dim=4096),
    ]
    return ModelCatalog(specs)
