"""Synthetic response text generation.

The reproduction does not run a neural network, but examples and the web UI
still need human-readable responses.  :class:`SyntheticTextGenerator`
produces deterministic, science-flavoured filler text with roughly 0.75
words per token (a common English tokenisation ratio), seeded by the request
id so repeated runs are stable.
"""

from __future__ import annotations

import hashlib
from itertools import islice
from typing import List, Optional

from .request import InferenceRequest

__all__ = ["SyntheticTextGenerator", "estimate_tokens"]

_VOCABULARY: List[str] = (
    "the of a to in analysis model data simulation results suggest that"
    " particle climate genomic sequence observed parameters scaling"
    " throughput latency inference cluster node GPU memory bandwidth"
    " experiment measurement uncertainty distribution correlation gradient"
    " optimization converges baseline comparison significant improvement"
    " workload scheduler queue allocation federation endpoint token"
).split()

_WORDS_PER_TOKEN = 0.75


def estimate_tokens(text: str) -> int:
    """Rough token count for a piece of text (≈ words / 0.75, min 1)."""
    words = len(text.split())
    return max(1, int(round(words / _WORDS_PER_TOKEN)))


class SyntheticTextGenerator:
    """Deterministic filler-text generator."""

    def __init__(self, vocabulary: Optional[List[str]] = None):
        self.vocabulary = vocabulary or _VOCABULARY

    def _word_stream(self, request: InferenceRequest):
        """Infinite deterministic word stream seeded by the request."""
        seed_material = f"{request.request_id}:{request.model}:{request.prompt_text[:64]}"
        digest = hashlib.sha256(seed_material.encode()).digest()
        vocab = self.vocabulary
        state = int.from_bytes(digest[:8], "little")
        while True:
            state = (state * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
            yield vocab[state % len(vocab)]

    def generate(self, request: InferenceRequest, output_tokens: int) -> str:
        """Produce ``output_tokens`` tokens of text for ``request``."""
        n_words = max(1, int(output_tokens * _WORDS_PER_TOKEN))
        words = islice(self._word_stream(request), n_words)
        return f"[{request.model}] " + " ".join(words)

    def stream_pieces(self, request: InferenceRequest):
        """Infinite generator of per-token text pieces for streaming responses.

        Draws from the same seeded word stream as :meth:`generate`, so a
        streamed response reads like (a slightly longer form of) the final
        text.  The first piece carries the ``[model]`` prefix.
        """
        first = True
        for word in self._word_stream(request):
            if first:
                first = False
                yield f"[{request.model}] {word}"
            else:
                yield f" {word}"
