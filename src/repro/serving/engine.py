"""Continuous-batching inference engine (the vLLM-like core).

The engine advances in *iterations*: each iteration generates one token for
every running sequence and (optionally) prefills newly admitted sequences.
Iteration duration comes from the :class:`~repro.serving.timing.PerformanceModel`,
so aggregate throughput saturates with batch size exactly as described in the
paper's evaluation.  Admission is bounded by ``max_num_seqs`` and by the
paged KV cache (:class:`~repro.serving.kvcache.KVCacheManager`).

Performance notes (macro-stepping)
----------------------------------

Naively the engine costs one kernel event plus O(batch) Python work per
decode iteration, which dominates the wall-clock time of large benchmark
sweeps.  With ``EngineConfig.macro_stepping`` (the default) the loop instead
computes how many iterations can pass before the simulation state can
change and collapses them into a single kernel event, bulk-updating token
counts, KV allocations (:meth:`KVCacheManager.grow_bulk`) and stats.  The
simulated-time results are reproduced exactly — iteration boundary times are
accumulated with the same sequence of float additions the per-token loop
performs, and absolute-time scheduling (``Environment.timeout_at``) replays
them bit-for-bit.

The remaining kernel cost is the pending-event structure itself; it is
pluggable (``Environment(queue="heap"|"calendar"|"packed"|"auto")``, see
:mod:`repro.sim.queues`) and every backend pops the same total order, so
engine results do not depend on the choice.

Window *math* is additionally vectorized with numpy when the batch (or
window) reaches ``EngineConfig.vector_batch_crossover``: the remaining-token
reduction in :meth:`_plan_window`, the KV-growth targets in
:meth:`_window_growth`, and the iteration-boundary / busy-time accumulation
chains (via ``np.cumsum``, whose sequential ``add.accumulate`` reproduces
the scalar loop's float additions bit-for-bit).  Below the crossover — and
whenever numpy is not installed — the scalar path runs instead; both paths
produce bit-identical results, so the dependency stays optional.

A macro-step window ends at the earliest of:

* the earliest completion among running sequences (state changes there);
* any admission this iteration (prefill extends only the *first* iteration's
  duration, so admission iterations always step per-token);
* KV growth that cannot be guaranteed for the whole window
  (``grow_bulk`` fails ⇒ fall back to per-token stepping, which performs
  preemption with the exact original semantics);
* a running sequence with a *live* stream channel — one whose consumer has
  started reading (:attr:`StreamChannel.live`); live consumers observe
  per-token timing, so the engine keeps emitting one event per iteration.
  Streaming sequences nobody is reading yet macro-step normally: their
  token events are published as one bulk batch per window, each event
  stamped with its exact iteration-boundary time, so TTFT/ITL math is
  unchanged.

When a request is submitted mid-window, the window is split: the loop is
interrupted, catches up to the last boundary already passed, finishes the
in-flight iteration with an exact per-token step, and re-plans — so the
newcomer is admitted at the same iteration boundary the per-token engine
would have used.  ``stop()`` likewise syncs the window before failing
sequences so their token counts and the busy-time accounting match.

Two divergences from the per-token engine are tolerated, neither visible in
results or stats.  First, floating-point *tie-breaking*: if an external
event lands at exactly (bit-for-bit) an interior iteration boundary, the
relative order of that event and the engine's bookkeeping may differ;
continuous-valued workloads never hit this in practice.  Second, post-stop
*queue drain*: a window abandoned by ``stop()`` leaves its already-scheduled
end-of-window timeout in the event heap, so ``env.run()``-to-empty finishes
at the window's end rather than at the next per-token boundary — ``env.now``
after draining a stopped engine is therefore mode-dependent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Set, Tuple

try:  # Vector window math is optional: the scalar path is bit-identical.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from ..obs.trace import TRACE_KEY
from ..sim import Environment, Event, Interrupt
from .kvcache import KVCacheConfig, KVCacheManager
from .request import InferenceRequest, InferenceResult, RequestKind
from .stream import STREAM_CHANNEL_KEY, StreamEvent
from .textgen import SyntheticTextGenerator
from .timing import PerformanceModel

__all__ = ["EngineConfig", "EngineStats", "ContinuousBatchingEngine"]


@dataclass
class EngineConfig:
    """Engine scheduling limits (vLLM-style)."""

    max_num_seqs: int = 256
    #: Cap on prompt tokens prefetched in a single iteration (chunked prefill).
    max_prefill_tokens_per_step: int = 16384
    kv_block_size: int = 16
    vram_utilization: float = 0.9
    #: Generate actual response text (slower, used by examples; benchmarks
    #: usually disable it).
    generate_text: bool = True
    #: Collapse state-preserving runs of decode iterations into a single
    #: kernel event (see the module docstring).  Disable to force the
    #: reference one-event-per-iteration loop; simulated-time results are
    #: identical either way.
    macro_stepping: bool = True
    #: Batch size (or window length) at which window math switches from the
    #: scalar loops to numpy array ops.  Both paths are bit-identical; the
    #: crossover only trades constant factors (array construction overhead
    #: vs per-element interpreter work).  Ignored when numpy is missing.
    vector_batch_crossover: int = 32


@dataclass
class EngineStats:
    """Cumulative engine counters."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    preempted: int = 0
    output_tokens: int = 0
    prompt_tokens: int = 0
    busy_time_s: float = 0.0
    peak_batch_size: int = 0

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "preempted": self.preempted,
            "output_tokens": self.output_tokens,
            "prompt_tokens": self.prompt_tokens,
            "busy_time_s": self.busy_time_s,
            "peak_batch_size": self.peak_batch_size,
        }


class _Sequence:
    """Internal per-request state."""

    __slots__ = (
        "request",
        "event",
        "generated",
        "enqueue_time",
        "admit_time",
        "first_token_time",
        "prefilled",
        "stream_channel",
        "streamed",
        "stream_words",
        "trace",
        "trace_spans",
    )

    def __init__(self, request: InferenceRequest, event: Event, enqueue_time: float):
        self.request = request
        self.event = event
        self.generated = 0
        self.enqueue_time = enqueue_time
        self.admit_time: Optional[float] = None
        self.first_token_time: Optional[float] = None
        self.prefilled = False
        #: Stream channel carried in the request metadata (``stream=True`` only).
        self.stream_channel = (
            request.metadata.get(STREAM_CHANNEL_KEY) if request.stream else None
        )
        #: Observability: TraceContext riding the request metadata (or None),
        #: and this sequence's open engine-layer spans keyed by phase.
        self.trace = request.metadata.get(TRACE_KEY)
        self.trace_spans = None
        #: High-water mark of tokens already streamed, so a preempted sequence
        #: that recomputes from scratch does not re-emit chunks the consumer
        #: has already seen.
        self.streamed = 0
        self.stream_words = None

    @property
    def seq_id(self) -> str:
        return self.request.request_id

    @property
    def target_tokens(self) -> int:
        return max(1, self.request.max_output_tokens)

    @property
    def total_tokens(self) -> int:
        return self.request.prompt_tokens + self.generated


class _Window:
    """An in-flight macro-step: ``len(boundaries)`` decode iterations
    collapsed into one kernel event.

    ``boundaries`` holds the absolute simulated time of every iteration
    boundary in the window; ``done`` counts how many have been applied (a
    window interrupted mid-flight is applied piecewise).
    """

    __slots__ = ("step", "boundaries", "kv_blocked", "done", "interrupted", "closed")

    def __init__(self, step: float, boundaries: List[float], kv_blocked: bool):
        self.step = step
        self.boundaries = boundaries
        self.kv_blocked = kv_blocked
        self.done = 0
        self.interrupted = False
        #: Set by stop(): the window's remaining accounting is settled and the
        #: loop must not touch it again (e.g. an Interrupt queued by a submit
        #: in the same callback as the stop is still in flight).
        self.closed = False


class ContinuousBatchingEngine:
    """A continuous-batching LLM engine bound to a fixed GPU allocation."""

    def __init__(
        self,
        env: Environment,
        perf: PerformanceModel,
        config: Optional[EngineConfig] = None,
        instance_id: str = "instance-0",
        cluster: str = "",
        text_generator: Optional[SyntheticTextGenerator] = None,
    ):
        self.env = env
        self.perf = perf
        self.config = config or EngineConfig()
        self.instance_id = instance_id
        self.cluster = cluster
        self.text_generator = text_generator or SyntheticTextGenerator()
        self.kv = KVCacheManager(
            KVCacheConfig(
                capacity_tokens=perf.kv_capacity_tokens(self.config.vram_utilization),
                block_size=self.config.kv_block_size,
            )
        )
        self.stats = EngineStats()
        self.waiting: Deque[_Sequence] = deque()
        self.running: List[_Sequence] = []
        self._idle: Optional[Event] = None
        self._window: Optional[_Window] = None
        self._stopped = False
        self._draining = False
        self._loop = env.process(self._run())

    # -- public API ----------------------------------------------------------
    def submit(self, request: InferenceRequest) -> Event:
        """Queue a request; the returned event succeeds with an :class:`InferenceResult`."""
        if self._stopped:
            raise RuntimeError("Engine has been stopped")
        event = self.env.event()
        seq = _Sequence(request, event, self.env.now)
        trace = seq.trace
        if trace is not None:
            # `current` is the caller's active span (the gateway's dispatch
            # stage, still suspended) — the whole engine subtree hangs off it.
            root = trace.start_span("engine.request", parent=trace.current,
                                    layer="engine",
                                    attrs={"instance": self.instance_id})
            seq.trace_spans = {
                "request": root,
                "queue": trace.start_span("engine.queue_wait", parent=root,
                                          layer="engine"),
            }
        self.waiting.append(seq)
        self.stats.submitted += 1
        self.stats.prompt_tokens += request.prompt_tokens
        self._notify()
        return event

    def drain(self) -> None:
        """Scale-down notification: finish outstanding work, expect no more.

        The autoscale control plane calls this when it begins drain-before-
        terminate on the owning instance.  Queued and running sequences
        complete normally (``stop()`` is the hard variant); the only engine-
        level effect is that the scale event ends any *in-flight* macro-step
        window the same way an admission does, so token counts and stats are
        exact at the moment of the drain decision.  Later windows are
        planned normally — completions bound them, so ``in_flight`` is
        always exact at event boundaries, which is all the drain monitor
        reads.  Simulated-time results are unchanged either way: window
        splitting is equivalence-preserving.
        """
        if self._stopped or self._draining:
            return
        self._draining = True
        self._notify()

    @property
    def draining(self) -> bool:
        return self._draining

    def stop(self) -> None:
        """Stop accepting requests and fail anything still queued or running."""
        window = self._window
        if window is not None:
            # Bring token counts and timings up to the last iteration boundary
            # already passed so the failed results report the same progress the
            # per-token engine would have.
            self._window = None
            self._sync_window(window)
            if window.done < len(window.boundaries):
                # The iteration in flight at stop time still occupies the GPU
                # until its boundary (the per-token loop accounts it when its
                # pending timeout fires).
                self.stats.busy_time_s += window.step
            window.closed = True
        self._stopped = True
        failed = 0
        for group in (self.waiting, self.running):
            for seq in group:
                if not seq.event.triggered:
                    failed += 1
                    seq.event.succeed(self._make_result(seq, success=False,
                                                        error="engine stopped"))
                if seq.stream_channel is not None:
                    seq.stream_channel.close()
                self.kv.free(seq.seq_id)
        self.stats.failed += failed
        self.waiting.clear()
        self.running.clear()
        self._notify()

    @property
    def current_batch_size(self) -> int:
        return len(self.running)

    @property
    def queue_depth(self) -> int:
        return len(self.waiting)

    @property
    def in_flight(self) -> int:
        return len(self.waiting) + len(self.running)

    @property
    def is_idle(self) -> bool:
        return not self.waiting and not self.running

    # -- engine loop -----------------------------------------------------------
    def _notify(self) -> None:
        idle = self._idle
        if idle is not None and not idle.triggered:
            idle.succeed()
            return
        window = self._window
        if window is not None and not window.interrupted:
            # New work arrived mid-macro-step: split the window so the loop
            # can admit at the next per-token iteration boundary.
            window.interrupted = True
            self._loop.interrupt()

    def _run(self):
        env = self.env
        while True:
            if self._stopped and self.is_idle:
                # Park forever; a stopped engine never wakes up again.
                self._idle = env.event()
                yield self._idle
                continue
            if self.is_idle:
                self._idle = env.event()
                yield self._idle
                self._idle = None
                continue

            prefill_tokens, kv_blocked = self._admit()
            batch = len(self.running)
            if batch == 0:
                # Nothing admitted (e.g. KV exhausted with nothing running);
                # this should not normally happen, but avoid a busy loop.
                self._idle = env.event()
                yield self._idle
                self._idle = None
                continue

            if batch > self.stats.peak_batch_size:
                self.stats.peak_batch_size = batch
            step = self.perf.decode_step_time_s(batch)
            if prefill_tokens:
                step += prefill_tokens / self.perf.prefill_tok_s

            # Prefill extends only this iteration's duration, so any iteration
            # that admitted work must step alone.
            iters = 1 if prefill_tokens else self._plan_window(kv_blocked)
            if iters <= 1:
                yield env.timeout(step)
                self.stats.busy_time_s += step
                self._advance(step)
                continue

            # Macro-step: one kernel event covers ``iters`` iterations.  The
            # boundary times are accumulated with the same float additions the
            # per-token loop performs, so they replay bit-for-bit; np.cumsum
            # (sequential add.accumulate) reproduces exactly that chain.
            if _np is not None and iters >= self.config.vector_batch_crossover:
                acc = _np.empty(iters + 1, dtype=_np.float64)
                acc[0] = env.now
                acc[1:] = step
                boundaries = _np.cumsum(acc)[1:].tolist()
            else:
                boundaries = []
                t = env.now
                for _ in range(iters):
                    t += step
                    boundaries.append(t)
            window = _Window(step, boundaries, kv_blocked)
            self._window = window
            try:
                yield env.timeout_at(boundaries[-1])
            except Interrupt:
                # A submission arrived mid-window: catch up to the boundaries
                # already passed, then finish the in-flight iteration with an
                # exact per-token step so the newcomer is admitted where the
                # per-token engine would have admitted it.  A window stop()
                # already closed (submit-then-stop in one callback) is fully
                # accounted; touching it again would double-count busy time.
                self._window = None
                if not window.closed:
                    self._sync_window(window)
                    if window.done < len(window.boundaries):
                        yield env.timeout_at(window.boundaries[window.done])
                        self.stats.busy_time_s += window.step
                        self._advance(window.step)
                continue
            if self._window is None:
                continue  # stop() drained the window while we slept
            self._window = None
            self._apply_iterations(window, len(window.boundaries))

    def _admit(self) -> Tuple[int, bool]:
        """Move sequences from waiting to running.

        Returns the prefill tokens added and whether admission stalled on a
        failed KV allocation (as opposed to ``max_num_seqs`` or the per-step
        prefill budget).
        """
        prefill_tokens = 0
        kv_blocked = False
        waiting = self.waiting
        running = self.running
        cfg = self.config
        while (
            waiting
            and len(running) < cfg.max_num_seqs
            and prefill_tokens < cfg.max_prefill_tokens_per_step
        ):
            seq = waiting[0]
            reserve = seq.request.prompt_tokens + cfg.kv_block_size
            if not self.kv.allocate(seq.seq_id, reserve):
                kv_blocked = True
                break
            waiting.popleft()
            seq.admit_time = self.env.now
            seq.prefilled = True
            if seq.trace is not None:
                self._trace_admit(seq)
            prefill_tokens += seq.request.prompt_tokens
            running.append(seq)
        return prefill_tokens, kv_blocked

    # -- macro-stepping ---------------------------------------------------------
    def _plan_window(self, kv_blocked: bool) -> int:
        """Number of iterations until the next possible state change.

        A return value above 1 additionally guarantees (by probing the whole
        window's KV growth via :meth:`KVCacheManager.can_grow_bulk`) that no
        KV-pressure preemption can occur inside the window.  The probe does
        not allocate: growth is applied by :meth:`_apply_iterations` only for
        iterations that actually execute, so a window that is interrupted and
        abandoned leaves the free-block pool in the exact per-token state.
        """
        if not self.config.macro_stepping:
            return 1
        running = self.running
        for seq in running:
            channel = seq.stream_channel
            if channel is not None and channel.live:
                # A live consumer observes per-token timing; keep exact
                # events.  Channels nobody reads yet get their window's
                # events in bulk from _apply_iterations instead.
                return 1
        if _np is not None and len(running) >= self.config.vector_batch_crossover:
            remaining = _np.fromiter(
                (seq.target_tokens - seq.generated for seq in running),
                dtype=_np.int64,
                count=len(running),
            )
            iters = int(remaining.min())
        else:
            iters = None
            for seq in running:
                remaining = seq.target_tokens - seq.generated
                if iters is None or remaining < iters:
                    iters = remaining
            if iters is None:
                return 1
        if iters <= 1:
            return 1
        if not self.kv.can_grow_bulk(self._window_growth(iters)):
            # KV pressure possible mid-window: the per-token path reproduces
            # the original preemption semantics exactly.
            return 1
        return iters

    def _window_growth(self, iters: int) -> List[Tuple[str, int]]:
        """Per-sequence KV token targets at the end of an ``iters`` window.

        Sequences that finish exactly at the window end stop growing one
        iteration earlier (the per-token loop checks completion before
        growing), hence the missing one-token lookahead for them.
        """
        running = self.running
        if _np is not None and len(running) >= self.config.vector_batch_crossover:
            count = len(running)
            generated = _np.fromiter(
                (seq.generated for seq in running), dtype=_np.int64, count=count
            )
            targets = _np.fromiter(
                (seq.target_tokens for seq in running), dtype=_np.int64, count=count
            )
            prompts = _np.fromiter(
                (seq.request.prompt_tokens for seq in running),
                dtype=_np.int64,
                count=count,
            )
            ends = (
                prompts + generated + iters + (targets - generated != iters)
            ).tolist()  # integer math: exact, so identical to the scalar loop
            return [(seq.seq_id, ends[i]) for i, seq in enumerate(running)]
        growth = []
        for seq in running:
            lookahead = 0 if seq.target_tokens - seq.generated == iters else 1
            growth.append((seq.seq_id, seq.total_tokens + iters + lookahead))
        return growth

    def _sync_window(self, window: _Window) -> None:
        """Apply every window iteration whose boundary time has passed."""
        now = self.env.now
        boundaries = window.boundaries
        upto = window.done
        total = len(boundaries)
        while upto < total and boundaries[upto] <= now:
            upto += 1
        self._apply_iterations(window, upto)

    def _apply_iterations(self, window: _Window, upto: int) -> None:
        """Bulk-apply window iterations ``window.done + 1 .. upto``.

        Completions are only possible at the final boundary (the window is
        sized to the earliest completion), so interior catch-ups are pure
        token/stat arithmetic.
        """
        done = window.done
        n = upto - done
        if n <= 0:
            return
        running = self.running
        stats = self.stats
        step = window.step
        if _np is not None and n >= self.config.vector_batch_crossover:
            # cumsum accumulates sequentially, so seeding the running total
            # as element 0 replays the per-token additions bit-for-bit.
            acc = _np.empty(n + 1, dtype=_np.float64)
            acc[0] = stats.busy_time_s
            acc[1:] = step
            stats.busy_time_s = float(_np.cumsum(acc)[-1])
        else:
            for _ in range(n):  # same addition order as the per-token loop
                stats.busy_time_s += step
        if window.kv_blocked:
            # The per-token loop re-attempts (and fails) the blocked head-of-
            # line admission at every interior boundary; mirror its failure
            # accounting.  The final boundary re-attempts in the next loop
            # iteration's _admit, so it is excluded here.
            last_interior = len(window.boundaries) - 1
            retries = min(upto, last_interior) - min(done, last_interior)
            if retries > 0:
                self.kv.allocation_failures += retries
        if done == 0:
            first_boundary = window.boundaries[0]
            for seq in running:
                if seq.first_token_time is None:
                    seq.first_token_time = first_boundary
                    self._trace_end(seq, "prefill", t=first_boundary)
        profiler = self.env.profiler
        if profiler is not None:
            profiler.on_window(n, step * n)
        growth = []
        for seq in running:
            before = seq.generated
            seq.generated += n
            if seq.trace is not None:
                self._trace_decode(seq, window.boundaries[done] - step,
                                   window.boundaries[upto - 1], n)
            if seq.stream_channel is not None and seq.generated > seq.streamed:
                self._publish_window_tokens(seq, before, window, done)
            if seq.generated < seq.target_tokens:
                # Same one-token lookahead the per-token loop grows to after
                # iteration ``upto``; sequences finishing here never grow in
                # their final iteration and are freed right below.  Success is
                # guaranteed by the window's can_grow_bulk probe.
                growth.append((seq.seq_id, seq.total_tokens + 1))
        if growth:
            self.kv.grow_bulk(growth)
        stats.output_tokens += n * len(running)
        window.done = upto
        if upto == len(window.boundaries):
            self._complete_finished()

    def _complete_finished(self) -> None:
        """Complete every running sequence that reached its target tokens."""
        running = self.running
        finished = [seq for seq in running if seq.generated >= seq.target_tokens]
        if not finished:
            return
        drop = set(finished)
        self.running = [seq for seq in running if seq not in drop]
        now = self.env.now
        for seq in finished:
            self._finish_sequence(seq, now)

    def _finish_sequence(self, seq: _Sequence, now: float) -> None:
        """Release and succeed one completed sequence (already off ``running``)."""
        self.kv.free(seq.seq_id)
        self.stats.completed += 1
        if seq.stream_channel is not None:
            seq.stream_channel.publish(
                StreamEvent(kind="done", index=seq.generated, time=now,
                            finish_reason="stop")
            )
            seq.stream_channel.close()
        seq.event.succeed(self._make_result(seq, success=True))

    # -- observability (observe-only: no sim-time spends, no RNG draws) -----------
    def _trace_admit(self, seq: _Sequence) -> None:
        """Close the queue-wait span and open the prefill span."""
        trace = seq.trace
        spans = seq.trace_spans
        self._trace_end(seq, "queue")
        root = spans.get("request")
        if root is not None:
            trace.event(root, "engine.admitted")
        spans["prefill"] = trace.start_span("engine.prefill", parent=root,
                                            layer="engine")

    def _trace_end(self, seq: _Sequence, key: str, t: Optional[float] = None) -> None:
        """End one of the sequence's open phase spans, if recording."""
        if seq.trace is None or seq.trace_spans is None:
            return
        span = seq.trace_spans.pop(key, None)
        if span is not None:
            seq.trace.end_span(span, t=t)

    def _trace_decode(self, seq: _Sequence, start: float, end: float,
                      iterations: int) -> None:
        """Record one (macro or per-token) decode window as a complete span."""
        trace = seq.trace
        span = trace.start_span("engine.decode_window",
                                parent=seq.trace_spans.get("request"),
                                layer="engine",
                                attrs={"iterations": iterations}, t=start)
        trace.end_span(span, t=end)

    # -- per-token stepping -------------------------------------------------------
    def _advance(self, step: float = 0.0) -> None:
        """One token generated for every running sequence."""
        now = self.env.now
        running = self.running
        stats = self.stats
        kv = self.kv
        #: Sequences that left the batch during this iteration (preempted,
        #: failed, or finished); an O(1) membership index replacing the
        #: seed's ``seq not in self.running`` scans and in-place removals.
        inactive: Set[_Sequence] = set()
        finished: List[_Sequence] = []
        for seq in running:
            if seq in inactive:
                # Preempted earlier in this same iteration by another
                # sequence's KV growth; it will be re-prefilled later.
                continue
            seq.generated += 1
            stats.output_tokens += 1
            if seq.first_token_time is None:
                # The first token is the prefill's output, not a decode
                # window: close the prefill span and emit no window for it.
                seq.first_token_time = now
                self._trace_end(seq, "prefill", t=now)
            elif seq.trace is not None:
                self._trace_decode(seq, now - step, now, 1)
            if seq.stream_channel is not None and seq.generated > seq.streamed:
                self._publish_token(seq, now)
            if seq.generated >= seq.target_tokens:
                finished.append(seq)
                # Not a preemption candidate: its blocks are freed right below.
                inactive.add(seq)
                continue
            if not kv.grow(seq.seq_id, seq.total_tokens + 1):
                self._handle_kv_pressure(seq, inactive)
        if inactive:
            self.running = [seq for seq in running if seq not in inactive]
        for seq in finished:
            self._finish_sequence(seq, now)

    def _publish_token(self, seq: _Sequence, now: float) -> None:
        """Emit one per-token stream event at the engine's iteration timing."""
        text = ""
        if self.config.generate_text and seq.request.kind != RequestKind.EMBEDDING:
            if seq.stream_words is None:
                seq.stream_words = self.text_generator.stream_pieces(seq.request)
            text = next(seq.stream_words)
        seq.streamed = seq.generated
        seq.stream_channel.publish(
            StreamEvent(kind="token", index=seq.generated - 1, time=now, text=text)
        )

    def _publish_window_tokens(self, seq: _Sequence, before: int,
                               window: _Window, done: int) -> None:
        """Bulk-publish one catch-up's token events for a non-live channel.

        Covers token counts ``before + 1 .. seq.generated`` (skipping any
        already streamed before a preemption), each stamped with the window
        boundary the per-token loop would have published it at, and consumes
        ``stream_words`` in the same order — so a consumer attaching later
        sees an identical event sequence.
        """
        words = None
        if self.config.generate_text and seq.request.kind != RequestKind.EMBEDDING:
            if seq.stream_words is None:
                seq.stream_words = self.text_generator.stream_pieces(seq.request)
            words = seq.stream_words
        boundaries = window.boundaries
        events = []
        for count in range(max(before, seq.streamed) + 1, seq.generated + 1):
            text = next(words) if words is not None else ""
            events.append(
                StreamEvent(kind="token", index=count - 1,
                            time=boundaries[done + count - before - 1], text=text)
            )
        seq.streamed = seq.generated
        seq.stream_channel.publish_bulk(events)

    def _handle_kv_pressure(self, needy: _Sequence, inactive: Set[_Sequence]) -> None:
        """Preempt the most recently admitted other sequence to free blocks."""
        victim = None
        for seq in reversed(self.running):
            if seq is not needy and seq not in inactive:
                victim = seq
                break
        if victim is None:
            # Nothing to preempt: fail the sequence (it cannot make progress).
            inactive.add(needy)
            self.kv.free(needy.seq_id)
            self.stats.failed += 1
            if needy.stream_channel is not None:
                needy.stream_channel.close()
            needy.event.succeed(self._make_result(needy, success=False,
                                                  error="KV cache exhausted"))
            return
        inactive.add(victim)
        self.kv.preempt(victim.seq_id)
        self.stats.preempted += 1
        # The victim restarts from scratch (recompute preemption).
        victim.generated = 0
        victim.prefilled = False
        victim.admit_time = None
        if victim.trace is not None:
            trace = victim.trace
            self._trace_end(victim, "prefill")
            root = victim.trace_spans.get("request")
            if root is not None:
                trace.event(root, "engine.preempted")
            victim.trace_spans["queue"] = trace.start_span(
                "engine.queue_wait", parent=root, layer="engine")
        self.waiting.appendleft(victim)

    def _close_seq_spans(self, seq: _Sequence, error: Optional[str] = None) -> None:
        """End every still-open engine span for a terminating sequence."""
        trace = seq.trace
        if trace is None or seq.trace_spans is None:
            return
        self._trace_end(seq, "queue")
        self._trace_end(seq, "prefill")
        root = seq.trace_spans.pop("request", None)
        if root is not None:
            if error is not None:
                root.status = f"error:{error}"
            root.attrs["output_tokens"] = seq.generated
            trace.end_span(root)

    def _make_result(self, seq: _Sequence, success: bool, error: Optional[str] = None) -> InferenceResult:
        self._close_seq_spans(seq, error=None if success else error)
        request = seq.request
        text = ""
        if success and self.config.generate_text and request.kind != RequestKind.EMBEDDING:
            text = self.text_generator.generate(request, seq.generated)
        metadata = dict(request.metadata)
        # The stream channel is transport plumbing, not response metadata.
        metadata.pop(STREAM_CHANNEL_KEY, None)
        # So is the trace context (it is not picklable response payload).
        metadata.pop(TRACE_KEY, None)
        return InferenceResult(
            request_id=request.request_id,
            model=request.model,
            prompt_tokens=request.prompt_tokens,
            output_tokens=seq.generated,
            text=text,
            success=success,
            error=error,
            arrival_time=request.arrival_time,
            engine_enqueue_time=seq.enqueue_time,
            prefill_start_time=seq.admit_time if seq.admit_time is not None else seq.enqueue_time,
            first_token_time=seq.first_token_time or 0.0,
            completion_time=self.env.now,
            instance_id=self.instance_id,
            cluster=self.cluster,
            metadata=metadata,
        )
