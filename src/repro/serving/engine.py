"""Continuous-batching inference engine (the vLLM-like core).

The engine advances in *iterations*: each iteration generates one token for
every running sequence and (optionally) prefills newly admitted sequences.
Iteration duration comes from the :class:`~repro.serving.timing.PerformanceModel`,
so aggregate throughput saturates with batch size exactly as described in the
paper's evaluation.  Admission is bounded by ``max_num_seqs`` and by the
paged KV cache (:class:`~repro.serving.kvcache.KVCacheManager`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim import Environment, Event
from .kvcache import KVCacheConfig, KVCacheManager
from .request import InferenceRequest, InferenceResult, RequestKind
from .stream import STREAM_CHANNEL_KEY, StreamEvent
from .textgen import SyntheticTextGenerator
from .timing import PerformanceModel

__all__ = ["EngineConfig", "EngineStats", "ContinuousBatchingEngine"]


@dataclass
class EngineConfig:
    """Engine scheduling limits (vLLM-style)."""

    max_num_seqs: int = 256
    #: Cap on prompt tokens prefetched in a single iteration (chunked prefill).
    max_prefill_tokens_per_step: int = 16384
    kv_block_size: int = 16
    vram_utilization: float = 0.9
    #: Generate actual response text (slower, used by examples; benchmarks
    #: usually disable it).
    generate_text: bool = True


@dataclass
class EngineStats:
    """Cumulative engine counters."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    preempted: int = 0
    output_tokens: int = 0
    prompt_tokens: int = 0
    busy_time_s: float = 0.0
    peak_batch_size: int = 0

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "preempted": self.preempted,
            "output_tokens": self.output_tokens,
            "prompt_tokens": self.prompt_tokens,
            "busy_time_s": self.busy_time_s,
            "peak_batch_size": self.peak_batch_size,
        }


class _Sequence:
    """Internal per-request state."""

    __slots__ = (
        "request",
        "event",
        "generated",
        "enqueue_time",
        "admit_time",
        "first_token_time",
        "prefilled",
        "stream_channel",
        "streamed",
        "stream_words",
    )

    def __init__(self, request: InferenceRequest, event: Event, enqueue_time: float):
        self.request = request
        self.event = event
        self.generated = 0
        self.enqueue_time = enqueue_time
        self.admit_time: Optional[float] = None
        self.first_token_time: Optional[float] = None
        self.prefilled = False
        #: Stream channel carried in the request metadata (``stream=True`` only).
        self.stream_channel = (
            request.metadata.get(STREAM_CHANNEL_KEY) if request.stream else None
        )
        #: High-water mark of tokens already streamed, so a preempted sequence
        #: that recomputes from scratch does not re-emit chunks the consumer
        #: has already seen.
        self.streamed = 0
        self.stream_words = None

    @property
    def seq_id(self) -> str:
        return self.request.request_id

    @property
    def target_tokens(self) -> int:
        return max(1, self.request.max_output_tokens)

    @property
    def total_tokens(self) -> int:
        return self.request.prompt_tokens + self.generated


class ContinuousBatchingEngine:
    """A continuous-batching LLM engine bound to a fixed GPU allocation."""

    def __init__(
        self,
        env: Environment,
        perf: PerformanceModel,
        config: Optional[EngineConfig] = None,
        instance_id: str = "instance-0",
        cluster: str = "",
        text_generator: Optional[SyntheticTextGenerator] = None,
    ):
        self.env = env
        self.perf = perf
        self.config = config or EngineConfig()
        self.instance_id = instance_id
        self.cluster = cluster
        self.text_generator = text_generator or SyntheticTextGenerator()
        self.kv = KVCacheManager(
            KVCacheConfig(
                capacity_tokens=perf.kv_capacity_tokens(self.config.vram_utilization),
                block_size=self.config.kv_block_size,
            )
        )
        self.stats = EngineStats()
        self.waiting: List[_Sequence] = []
        self.running: List[_Sequence] = []
        self._idle: Optional[Event] = None
        self._stopped = False
        self._loop = env.process(self._run())

    # -- public API ----------------------------------------------------------
    def submit(self, request: InferenceRequest) -> Event:
        """Queue a request; the returned event succeeds with an :class:`InferenceResult`."""
        if self._stopped:
            raise RuntimeError("Engine has been stopped")
        event = self.env.event()
        seq = _Sequence(request, event, self.env.now)
        self.waiting.append(seq)
        self.stats.submitted += 1
        self.stats.prompt_tokens += request.prompt_tokens
        self._notify()
        return event

    def stop(self) -> None:
        """Stop accepting requests and fail anything still queued or running."""
        self._stopped = True
        self.stats.failed += len(self.waiting) + len(self.running)
        for seq in self.waiting + self.running:
            if not seq.event.triggered:
                seq.event.succeed(self._make_result(seq, success=False,
                                                    error="engine stopped"))
            if seq.stream_channel is not None:
                seq.stream_channel.close()
            self.kv.free(seq.seq_id)
        self.waiting.clear()
        self.running.clear()
        self._notify()

    @property
    def current_batch_size(self) -> int:
        return len(self.running)

    @property
    def queue_depth(self) -> int:
        return len(self.waiting)

    @property
    def in_flight(self) -> int:
        return len(self.waiting) + len(self.running)

    @property
    def is_idle(self) -> bool:
        return not self.waiting and not self.running

    # -- engine loop -----------------------------------------------------------
    def _notify(self) -> None:
        if self._idle is not None and not self._idle.triggered:
            self._idle.succeed()

    def _run(self):
        env = self.env
        while True:
            if self._stopped and self.is_idle:
                # Park forever; a stopped engine never wakes up again.
                self._idle = env.event()
                yield self._idle
                continue
            if self.is_idle:
                self._idle = env.event()
                yield self._idle
                self._idle = None
                continue

            prefill_tokens = self._admit()
            batch = len(self.running)
            if batch == 0:
                # Nothing admitted (e.g. KV exhausted with nothing running);
                # this should not normally happen, but avoid a busy loop.
                self._idle = env.event()
                yield self._idle
                self._idle = None
                continue

            self.stats.peak_batch_size = max(self.stats.peak_batch_size, batch)
            step = self.perf.decode_step_time_s(batch)
            if prefill_tokens:
                step += prefill_tokens / self.perf.prefill_tok_s
            yield env.timeout(step)
            self.stats.busy_time_s += step
            self._advance()

    def _admit(self) -> int:
        """Move sequences from waiting to running; returns prefill tokens added."""
        prefill_tokens = 0
        while (
            self.waiting
            and len(self.running) < self.config.max_num_seqs
            and prefill_tokens < self.config.max_prefill_tokens_per_step
        ):
            seq = self.waiting[0]
            reserve = seq.request.prompt_tokens + self.config.kv_block_size
            if not self.kv.allocate(seq.seq_id, reserve):
                break
            self.waiting.pop(0)
            seq.admit_time = self.env.now
            seq.prefilled = True
            prefill_tokens += seq.request.prompt_tokens
            self.running.append(seq)
        return prefill_tokens

    def _advance(self) -> None:
        """One token generated for every running sequence."""
        now = self.env.now
        finished: List[_Sequence] = []
        for seq in list(self.running):
            if seq not in self.running:
                # Preempted earlier in this same iteration by another
                # sequence's KV growth; it will be re-prefilled later.
                continue
            seq.generated += 1
            self.stats.output_tokens += 1
            if seq.first_token_time is None:
                seq.first_token_time = now
            if seq.stream_channel is not None and seq.generated > seq.streamed:
                self._publish_token(seq, now)
            if seq.generated >= seq.target_tokens:
                finished.append(seq)
                continue
            if not self.kv.grow(seq.seq_id, seq.total_tokens + 1):
                self._handle_kv_pressure(seq)
        for seq in finished:
            self.running.remove(seq)
            self.kv.free(seq.seq_id)
            self.stats.completed += 1
            if seq.stream_channel is not None:
                seq.stream_channel.publish(
                    StreamEvent(kind="done", index=seq.generated, time=now,
                                finish_reason="stop")
                )
                seq.stream_channel.close()
            seq.event.succeed(self._make_result(seq, success=True))

    def _publish_token(self, seq: _Sequence, now: float) -> None:
        """Emit one per-token stream event at the engine's iteration timing."""
        text = ""
        if self.config.generate_text and seq.request.kind != RequestKind.EMBEDDING:
            if seq.stream_words is None:
                seq.stream_words = self.text_generator.stream_pieces(seq.request)
            text = next(seq.stream_words)
        seq.streamed = seq.generated
        seq.stream_channel.publish(
            StreamEvent(kind="token", index=seq.generated - 1, time=now, text=text)
        )

    def _handle_kv_pressure(self, needy: _Sequence) -> None:
        """Preempt the most recently admitted other sequence to free blocks."""
        victims = [s for s in reversed(self.running) if s is not needy]
        if not victims:
            # Nothing to preempt: fail the sequence (it cannot make progress).
            self.running.remove(needy)
            self.kv.free(needy.seq_id)
            self.stats.failed += 1
            if needy.stream_channel is not None:
                needy.stream_channel.close()
            needy.event.succeed(self._make_result(needy, success=False,
                                                  error="KV cache exhausted"))
            return
        victim = victims[0]
        self.running.remove(victim)
        self.kv.preempt(victim.seq_id)
        self.stats.preempted += 1
        # The victim restarts from scratch (recompute preemption).
        victim.generated = 0
        victim.prefilled = False
        victim.admit_time = None
        self.waiting.insert(0, victim)

    def _make_result(self, seq: _Sequence, success: bool, error: Optional[str] = None) -> InferenceResult:
        request = seq.request
        text = ""
        if success and self.config.generate_text and request.kind != RequestKind.EMBEDDING:
            text = self.text_generator.generate(request, seq.generated)
        metadata = dict(request.metadata)
        # The stream channel is transport plumbing, not response metadata.
        metadata.pop(STREAM_CHANNEL_KEY, None)
        return InferenceResult(
            request_id=request.request_id,
            model=request.model,
            prompt_tokens=request.prompt_tokens,
            output_tokens=seq.generated,
            text=text,
            success=success,
            error=error,
            arrival_time=request.arrival_time,
            engine_enqueue_time=seq.enqueue_time,
            prefill_start_time=seq.admit_time if seq.admit_time is not None else seq.enqueue_time,
            first_token_time=seq.first_token_time or 0.0,
            completion_time=self.env.now,
            instance_id=self.instance_id,
            cluster=self.cluster,
            metadata=metadata,
        )
