"""Offline (batch-mode) execution of inference requests.

FIRST's batch mode "executes each batch job as a dedicated HPC job. This job
loads the specified model solely for that task, processing all requests from
the user's input file directly without the mediation of a shared online
server" (§4.4).  The runner therefore skips the API front-end entirely and
drives the continuous-batching engine with every request available up front,
which is why batch mode reaches higher token throughput than interactive
serving.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

from ..sim import Environment
from .engine import ContinuousBatchingEngine, EngineConfig
from .request import InferenceRequest, InferenceResult
from .timing import PerformanceModel

__all__ = ["OfflineRunResult", "OfflineBatchRunner"]


@dataclass
class OfflineRunResult:
    """Outcome of an offline batch run."""

    results: List[InferenceResult]
    load_time_s: float
    processing_time_s: float

    @property
    def duration_s(self) -> float:
        """Total wall time including the cold start."""
        return self.load_time_s + self.processing_time_s

    @property
    def total_output_tokens(self) -> int:
        return sum(r.output_tokens for r in self.results)

    @property
    def overall_output_tok_s(self) -> float:
        """Output tokens per second over the *total* duration (paper's metric)."""
        if self.duration_s <= 0:
            return 0.0
        return self.total_output_tokens / self.duration_s

    @property
    def processing_output_tok_s(self) -> float:
        """Output tokens per second excluding the model load."""
        if self.processing_time_s <= 0:
            return 0.0
        return self.total_output_tokens / self.processing_time_s

    @property
    def num_completed(self) -> int:
        return sum(1 for r in self.results if r.success)


class OfflineBatchRunner:
    """Runs a list of requests through a dedicated engine with no server overhead."""

    def __init__(
        self,
        env: Optional[Environment],
        perf: PerformanceModel,
        engine_config: Optional[EngineConfig] = None,
        include_load_time: bool = True,
        kernel_queue: str = "heap",
    ):
        # ``env=None``: standalone batch runs own their environment and may
        # opt into a different kernel queue backend (see repro.sim.queues).
        if env is not None and kernel_queue != "heap":
            raise ValueError(
                "kernel_queue only applies when OfflineBatchRunner creates its "
                "own environment; pass env=None or configure the queue on env"
            )
        self.env = env or Environment(queue=kernel_queue)
        # Offline mode avoids streaming/serving overhead: apply the
        # calibrated offline throughput factor.
        cfg = perf.config
        boosted = dataclasses.replace(
            cfg, backend_factor=cfg.backend_factor * cfg.offline_factor
        )
        self.perf = PerformanceModel(
            model=perf.model,
            num_gpus=perf.num_gpus,
            gpu_spec=perf.gpu_spec,
            config=boosted,
            node_spec=perf.node_spec,
            num_nodes=perf.num_nodes,
        )
        self.engine_config = engine_config or EngineConfig(generate_text=False)
        self.include_load_time = include_load_time

    def run(self, requests: List[InferenceRequest]):
        """Simulation process: execute all ``requests``; returns :class:`OfflineRunResult`."""
        if not requests:
            return OfflineRunResult(results=[], load_time_s=0.0, processing_time_s=0.0)

        load_time = 0.0
        if self.include_load_time:
            load_time = self.perf.load_time_s()
            yield self.env.timeout(load_time)

        start = self.env.now
        engine = ContinuousBatchingEngine(
            self.env, self.perf, self.engine_config, instance_id="offline-batch"
        )
        events = [engine.submit(req) for req in requests]
        condition = self.env.all_of(events)
        yield condition
        results = [ev.value for ev in events]
        processing = self.env.now - start
        engine.stop()
        return OfflineRunResult(
            results=results, load_time_s=load_time, processing_time_s=processing
        )
