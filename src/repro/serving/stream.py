"""Stream-event channel for end-to-end token streaming.

When a request arrives with ``stream=True`` the gateway opens a
:class:`StreamChannel` and threads it through the compute layer down to the
engine (gateway → ComputeClient payload → relay → endpoint → engine).  The
continuous-batching engine publishes one :class:`StreamEvent` per generated
token — using the *same* iteration timing the performance model produces for
non-streaming requests — so TTFT and inter-token latency become observable
outside the serving engine for the first time.

The channel is a single-producer/single-consumer queue in simulated time.
``delivery_latency_s`` models the per-chunk network hop (the SSE frame
travelling engine → relay → gateway): every published item becomes visible
to the consumer that many simulated seconds later, preserving FIFO order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Optional

from ..sim import Environment, Event

__all__ = ["STREAM_CHANNEL_KEY", "StreamEvent", "StreamChannel"]

#: Key under which a :class:`StreamChannel` rides in ``InferenceRequest.metadata``
#: (and in the FaaS task payload) on its way to the engine.
STREAM_CHANNEL_KEY = "stream_channel"


@dataclass
class StreamEvent:
    """One server-sent event of a streaming response.

    ``kind`` is one of ``"token"`` (a generated token), ``"done"`` (the
    response is complete; ``result``/``finish_reason`` are set) or
    ``"error"`` (the request failed before completing; ``error`` holds the
    typed envelope and ``exception`` the original exception).
    """

    kind: str
    index: int = 0
    #: Simulation time the event was *produced* (engine side for tokens).
    time: float = 0.0
    text: str = ""
    finish_reason: Optional[str] = None
    result: Any = None
    error: Optional[dict] = None
    exception: Optional[BaseException] = None
    metadata: dict = field(default_factory=dict)


class StreamChannel:
    """FIFO channel of :class:`StreamEvent` items in simulated time.

    Producers call :meth:`publish` / :meth:`close`; the consumer repeatedly
    yields :meth:`get`, which resolves to the next item or ``None`` once the
    channel is closed and drained.  Both sides are simulation-safe: a
    pending consumer is woken as soon as an item is delivered.
    """

    def __init__(self, env: Environment, delivery_latency_s: float = 0.0):
        self.env = env
        self.delivery_latency_s = delivery_latency_s
        self._items: Deque[Any] = deque()
        self._waiters: Deque[Event] = deque()
        self._closed = False
        self._consumed = False
        self.published = 0
        self.delivered = 0

    # -- producer side -----------------------------------------------------
    def publish(self, item: Any) -> None:
        """Make ``item`` available to the consumer after the delivery latency."""
        self.published += 1
        if self.delivery_latency_s > 0:
            self.env.process(self._deliver_later(item, close=False))
        else:
            self._push(item)

    def publish_bulk(self, items: list) -> None:
        """Publish several events as one batch.

        The engine uses this under macro-stepping when no live consumer is
        attached (see :attr:`live`): instead of one channel round-trip per
        token, a whole window's events arrive together.  Each event still
        carries its own production ``time``, so TTFT/ITL math downstream is
        unchanged.  With a delivery latency the batch rides a single
        delayed-delivery hop (items become visible ``delivery_latency_s``
        after the *publish*, not after their production times — only
        possible when nobody was consuming live).
        """
        self.published += len(items)
        if self.delivery_latency_s > 0:
            self.env.process(self._deliver_bulk_later(items))
        else:
            for item in items:
                self._push(item)

    def close(self) -> None:
        """Close the channel (idempotent); pending ``get``\\ s resolve to ``None``.

        The close travels through the same delayed-delivery path as items so
        it can never overtake an in-flight event.
        """
        if self.delivery_latency_s > 0:
            self.env.process(self._deliver_later(None, close=True))
        else:
            self._close_now()

    def _deliver_later(self, item: Any, close: bool):
        yield self.env.timeout(self.delivery_latency_s)
        if close:
            self._close_now()
        else:
            self._push(item)

    def _deliver_bulk_later(self, items: list):
        yield self.env.timeout(self.delivery_latency_s)
        for item in items:
            self._push(item)

    def _push(self, item: Any) -> None:
        if self._closed:
            return
        if self._waiters:
            self.delivered += 1
            self._waiters.popleft().succeed(item)
        else:
            self._items.append(item)

    def _close_now(self) -> None:
        if self._closed:
            return
        self._closed = True
        while self._waiters:
            self._waiters.popleft().succeed(None)

    # -- consumer side -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pending(self) -> int:
        return len(self._items)

    @property
    def live(self) -> bool:
        """True once a consumer has ever called :meth:`get`.

        A live channel's consumer observes per-token timing, so the engine
        keeps emitting one kernel event per iteration for it; channels that
        nobody is reading (yet) may receive their events in window-sized
        batches instead.
        """
        return self._consumed

    def drain(self) -> list:
        """Synchronously take every delivered-but-unconsumed item.

        Used at partition boundaries (:mod:`repro.parallel`): a cluster-side
        channel that nobody consumes live accumulates its window-batched
        events here, and the partition drains them into a serializable
        result message instead of attaching a consumer process.  Does not
        mark the channel live and wakes no waiters.
        """
        items = list(self._items)
        self._items.clear()
        return items

    def get(self) -> Event:
        """Event resolving to the next item, or ``None`` when closed and empty."""
        self._consumed = True
        event = self.env.event()
        if self._items:
            self.delivered += 1
            event.succeed(self._items.popleft())
        elif self._closed:
            event.succeed(None)
        else:
            self._waiters.append(event)
        return event
