"""Inference request/result records shared across the serving stack."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["RequestKind", "InferenceRequest", "InferenceResult"]


class RequestKind(str, enum.Enum):
    """OpenAI-compatible endpoint the request arrived on."""

    CHAT_COMPLETION = "chat.completion"
    COMPLETION = "text_completion"
    EMBEDDING = "embedding"


@dataclass
class InferenceRequest:
    """A single inference request as seen by an engine.

    ``prompt_tokens`` and ``max_output_tokens`` drive the timing model;
    ``prompt_text``/``messages`` are carried through so examples can produce
    human-readable responses.
    """

    request_id: str
    model: str
    prompt_tokens: int
    max_output_tokens: int
    kind: RequestKind = RequestKind.CHAT_COMPLETION
    user: str = "anonymous"
    prompt_text: str = ""
    #: Sampling parameters (temperature etc.); accepted and logged, not used
    #: by the timing model.
    params: Dict[str, Any] = field(default_factory=dict)
    stream: bool = False
    arrival_time: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.prompt_tokens < 0:
            raise ValueError("prompt_tokens must be >= 0")
        if self.max_output_tokens <= 0 and self.kind != RequestKind.EMBEDDING:
            raise ValueError("max_output_tokens must be > 0 for generation requests")


@dataclass
class InferenceResult:
    """Engine-side result of a request, with full timing breakdown."""

    request_id: str
    model: str
    prompt_tokens: int
    output_tokens: int
    text: str = ""
    embedding: Optional[list] = None
    success: bool = True
    error: Optional[str] = None

    # timing (simulation seconds)
    arrival_time: float = 0.0
    engine_enqueue_time: float = 0.0
    prefill_start_time: float = 0.0
    first_token_time: float = 0.0
    completion_time: float = 0.0

    # bookkeeping
    instance_id: str = ""
    cluster: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.output_tokens

    @property
    def engine_latency_s(self) -> float:
        """Time from engine enqueue to completion."""
        return self.completion_time - self.engine_enqueue_time

    @property
    def time_to_first_token_s(self) -> Optional[float]:
        if self.first_token_time <= 0:
            return None
        return self.first_token_time - self.engine_enqueue_time

    def to_openai_chunk(self, delta: Optional[dict] = None,
                        finish_reason: Optional[str] = None,
                        include_usage: bool = False) -> dict:
        """Render one OpenAI-style ``chat.completion.chunk`` frame.

        Used by the streaming path: intermediate chunks carry a ``delta``
        with content, the final chunk carries ``finish_reason`` and (when
        ``include_usage``) the token usage block.
        """
        chunk = {
            "id": self.request_id,
            "object": "chat.completion.chunk",
            "model": self.model,
            "choices": [
                {
                    "index": 0,
                    "delta": delta if delta is not None else {},
                    "finish_reason": finish_reason,
                }
            ],
        }
        if include_usage:
            chunk["usage"] = {
                "prompt_tokens": self.prompt_tokens,
                "completion_tokens": self.output_tokens,
                "total_tokens": self.total_tokens,
            }
        return chunk

    def to_openai_dict(self) -> dict:
        """Render as an OpenAI-style response body."""
        if self.embedding is not None:
            return {
                "object": "list",
                "model": self.model,
                "data": [{"object": "embedding", "index": 0, "embedding": self.embedding}],
                "usage": {"prompt_tokens": self.prompt_tokens,
                          "total_tokens": self.prompt_tokens},
            }
        return {
            "id": self.request_id,
            "object": "chat.completion",
            "model": self.model,
            "choices": [
                {
                    "index": 0,
                    "message": {"role": "assistant", "content": self.text},
                    "finish_reason": "stop" if self.success else "error",
                }
            ],
            "usage": {
                "prompt_tokens": self.prompt_tokens,
                "completion_tokens": self.output_tokens,
                "total_tokens": self.total_tokens,
            },
        }
