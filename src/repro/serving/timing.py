"""Serving performance model.

This module maps a (model, GPU allocation) pair to the timing quantities the
continuous-batching engine needs:

* aggregate decode throughput as a function of the running batch size,
* prefill throughput,
* model load (cold-start) time.

The functional form is the standard saturating-throughput model for
continuous batching: small batches are memory-bandwidth-bound (per-sequence
decode speed is high but aggregate throughput low), large batches approach a
compute-bound ceiling.  Constants are calibrated against the paper's
measurements (see :mod:`repro.core.calibration` and DESIGN.md §5):

* Llama 3.3 70B, TP=8 on A100-40GB — ≈3 s median end-to-end latency for a
  ShareGPT request at 1 req/s (Fig. 3) and ≈1700 tok/s aggregate when the
  running batch is ~100 (Fig. 3/4).
* Llama 3.1 8B, TP=4 — ≈3300 tok/s aggregate at saturation (Fig. 5).

Both constraints are satisfied by ``ALPHA ≈ 4500``, ``BETA ≈ 0.627`` and a
batch half-saturation constant of 33 sequences (the ceiling also absorbs the
prefill interference the engine pays when admitting new sequences).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..cluster.gpu import GPUSpec
from ..cluster.node import NodeSpec
from .models import ModelSpec

__all__ = ["PerfModelConfig", "PerformanceModel"]


@dataclass(frozen=True)
class PerfModelConfig:
    """Calibration constants for the serving timing model."""

    #: Scale of the compute-bound decode ceiling (tokens/s); see module docstring.
    alpha: float = 4500.0
    #: Sub-linear exponent of model size in the decode ceiling.
    beta: float = 0.627
    #: Batch size at which aggregate throughput reaches half its ceiling.
    batch_half_saturation: float = 33.0
    #: Prefill is compute-bound and much faster per token than decode.
    prefill_speedup: float = 10.0
    #: Fixed engine-side overhead added to every request (tokenisation,
    #: scheduling, detokenisation) in seconds.
    per_request_overhead_s: float = 0.05
    #: Engine initialisation time after weights are loaded (CUDA graphs,
    #: memory profiling, server start) in seconds.
    engine_init_s: float = 25.0
    #: Relative throughput multiplier of the serving backend (vLLM = 1.0;
    #: the paper cites SGLang reaching up to 3.1x on selected models).
    backend_factor: float = 1.0
    #: Throughput multiplier for offline (batch, no-serving) execution.
    offline_factor: float = 1.1


class PerformanceModel:
    """Timing model for one model instance on a specific GPU allocation."""

    def __init__(
        self,
        model: ModelSpec,
        num_gpus: int,
        gpu_spec: GPUSpec,
        config: Optional[PerfModelConfig] = None,
        node_spec: Optional[NodeSpec] = None,
        num_nodes: int = 1,
    ):
        if num_gpus <= 0:
            raise ValueError("num_gpus must be > 0")
        self.model = model
        self.num_gpus = num_gpus
        self.gpu_spec = gpu_spec
        self.config = config or PerfModelConfig()
        self.node_spec = node_spec
        self.num_nodes = max(1, num_nodes)

    # -- decode ------------------------------------------------------------
    @property
    def decode_ceiling_tok_s(self) -> float:
        """Compute-bound aggregate decode ceiling (tokens/s)."""
        cfg = self.config
        compute = self.num_gpus * self.gpu_spec.compute_factor
        return cfg.alpha * cfg.backend_factor * compute / (self.model.params_b ** cfg.beta)

    def aggregate_decode_tok_s(self, batch_size: int) -> float:
        """Aggregate decode throughput for a running batch of ``batch_size``."""
        if batch_size <= 0:
            return 0.0
        b_half = self.config.batch_half_saturation
        return self.decode_ceiling_tok_s * batch_size / (batch_size + b_half)

    def per_sequence_decode_tok_s(self, batch_size: int) -> float:
        """Decode speed seen by a single sequence in a batch of ``batch_size``."""
        if batch_size <= 0:
            return 0.0
        return self.aggregate_decode_tok_s(batch_size) / batch_size

    def decode_step_time_s(self, batch_size: int) -> float:
        """Wall time of one decode iteration (one token for every running sequence)."""
        if batch_size <= 0:
            return 0.0
        return batch_size / self.aggregate_decode_tok_s(batch_size)

    # -- prefill -----------------------------------------------------------
    @property
    def prefill_tok_s(self) -> float:
        """Prompt-processing throughput (tokens/s)."""
        return self.decode_ceiling_tok_s * self.config.prefill_speedup

    def prefill_time_s(self, prompt_tokens: int) -> float:
        return prompt_tokens / self.prefill_tok_s

    # -- cold start ----------------------------------------------------------
    def load_time_s(self, coordination_overhead_s: float = 0.0) -> float:
        """Model cold-start time: read weights from storage + engine init.

        Scales with the model's parameter count (the paper: an 8B model
        "loads relatively quickly" whereas a 405B model needs to coordinate
        loading across multiple nodes, "significantly increasing the cold
        start time").
        """
        read_gbps = self.node_spec.storage_read_gbps if self.node_spec else 4.0
        # Weight shards are read on every node in parallel; each node reads
        # its share of the weights.
        per_node_gb = self.model.weights_gb / self.num_nodes
        read_time = per_node_gb / read_gbps
        return read_time + self.config.engine_init_s + coordination_overhead_s

    # -- KV cache ------------------------------------------------------------
    def kv_capacity_tokens(self, vram_utilization: float = 0.9) -> int:
        """How many tokens of KV cache fit after the weights are resident."""
        total_vram_gb = self.num_gpus * self.gpu_spec.memory_gb
        available_gb = total_vram_gb * vram_utilization - self.model.weights_gb
        if available_gb <= 0:
            return 0
        return int(available_gb * 1e9 / self.model.kv_bytes_per_token)

    def fits(self, vram_utilization: float = 0.9) -> bool:
        """Whether the weights (plus some KV headroom) fit on this allocation."""
        return self.kv_capacity_tokens(vram_utilization) > 0

    def __repr__(self) -> str:
        return (
            f"<PerformanceModel {self.model.name} on {self.num_gpus}x{self.gpu_spec.name}: "
            f"ceiling={self.decode_ceiling_tok_s:.0f} tok/s>"
        )
