"""Serving-backend registry.

FIRST is backend agnostic: "Our architecture can readily integrate with any
of the inference frameworks discussed in Section 2.2 (e.g., TensorRT-LLM,
TGI, SGLang), provided they expose an OpenAI-compatible API" (§4.1).  Each
backend here maps to a relative throughput factor applied by the timing
model, plus capability flags used when a deployment validates its
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["BackendSpec", "BACKENDS", "get_backend", "register_backend"]


@dataclass(frozen=True)
class BackendSpec:
    """A serving framework supported by the deployment."""

    name: str
    #: Relative generation throughput vs vLLM (1.0).  The paper cites SGLang
    #: at up to 3.1x on selected models and TensorRT-LLM around 4x vanilla
    #: PyTorch; we keep conservative middle-ground factors.
    throughput_factor: float = 1.0
    supports_generation: bool = True
    supports_embeddings: bool = False
    description: str = ""


BACKENDS: Dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> None:
    """Register (or replace) a backend."""
    BACKENDS[spec.name] = spec


def get_backend(name: str) -> BackendSpec:
    try:
        return BACKENDS[name.lower()]
    except KeyError:
        raise KeyError(
            f"Unknown serving backend {name!r}; known backends: {sorted(BACKENDS)}"
        ) from None


for _spec in [
    BackendSpec("vllm", throughput_factor=1.0, supports_generation=True,
                supports_embeddings=False,
                description="PagedAttention + continuous batching (paper's primary backend)"),
    BackendSpec("sglang", throughput_factor=1.6, supports_generation=True,
                description="RadixAttention; faster on structured/prefix-heavy workloads"),
    BackendSpec("tgi", throughput_factor=0.85, supports_generation=True,
                description="HuggingFace Text Generation Inference"),
    BackendSpec("tensorrt-llm", throughput_factor=1.4, supports_generation=True,
                description="NVIDIA TensorRT-LLM (NVIDIA GPUs only)"),
    BackendSpec("infinity", throughput_factor=1.0, supports_generation=False,
                supports_embeddings=True,
                description="Embedding server (FlashAttention-2 based)"),
    BackendSpec("llama.cpp", throughput_factor=0.25, supports_generation=True,
                description="8-bit quantised CPU/commodity serving"),
]:
    register_backend(_spec)
