"""Structured logging stamped with *simulated* time.

Wall-clock timestamps are meaningless inside a discrete-event simulation —
a warning logged "now" happened at ``env.now`` simulated seconds, and two
runs of the same scenario should log identical streams.  :func:`sim_logger`
returns a :class:`SimLogAdapter` bound to an environment: every record gets
a ``sim_time`` attribute plus a ``[t=123.456s]`` prefix, and structured
key/value context passes through ``extra``-style keyword arguments::

    log = sim_logger("repro.faas.relay", env)
    log.warning("task failed", task_id=record.task_id, error=err)
    # repro.faas.relay [t=42.000s] task failed (task_id=task-3 error=...)

The ``repro`` root logger carries a :class:`logging.NullHandler`, so
nothing prints unless the embedding application configures handlers —
simulations and tests stay silent by default (pytest's ``caplog`` still
captures the records).
"""

from __future__ import annotations

import logging
from typing import Any

__all__ = ["sim_logger", "SimLogAdapter"]

logging.getLogger("repro").addHandler(logging.NullHandler())


class SimLogAdapter(logging.LoggerAdapter):
    """Logger adapter stamping every record with the environment's now."""

    def __init__(self, logger: logging.Logger, env):
        super().__init__(logger, {})
        self.env = env

    def process(self, msg: str, kwargs: dict):
        # Split structured context from stdlib logging kwargs.
        passthrough = {}
        fields = {}
        for key, value in kwargs.items():
            if key in ("exc_info", "stack_info", "stacklevel", "extra"):
                passthrough[key] = value
            else:
                fields[key] = value
        now = self.env.now
        extra: dict[str, Any] = dict(passthrough.pop("extra", {}) or {})
        extra["sim_time"] = now
        extra["sim_fields"] = fields
        passthrough["extra"] = extra
        if fields:
            context = " ".join(f"{k}={v}" for k, v in fields.items())
            msg = f"[t={now:.3f}s] {msg} ({context})"
        else:
            msg = f"[t={now:.3f}s] {msg}"
        return msg, passthrough


def sim_logger(name: str, env) -> SimLogAdapter:
    """A ``logging`` adapter for ``name`` stamping records with ``env.now``."""
    return SimLogAdapter(logging.getLogger(name), env)
