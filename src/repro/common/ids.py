"""Deterministic identifier generation.

Real FIRST components use UUIDs; the reproduction prefers deterministic,
readable identifiers so that simulation traces and test assertions are
stable across runs.
"""

from __future__ import annotations

import itertools
import uuid
from typing import Dict

__all__ = ["IdGenerator", "short_uuid"]


class IdGenerator:
    """Produces deterministic ids of the form ``<prefix>-<counter>``.

    A single generator is usually shared per deployment so that ids are
    globally unique within a simulation run.
    """

    def __init__(self):
        self._counters: Dict[str, itertools.count] = {}

    def next(self, prefix: str) -> str:
        """Return the next id for ``prefix`` (e.g. ``task-000041``)."""
        counter = self._counters.setdefault(prefix, itertools.count())
        return f"{prefix}-{next(counter):06d}"

    def peek_count(self, prefix: str) -> int:
        """Number of ids already handed out for ``prefix``."""
        counter = self._counters.get(prefix)
        if counter is None:
            return 0
        # itertools.count does not expose its state; copy via repr.
        return int(repr(counter).split("(")[1].rstrip(")"))


def short_uuid() -> str:
    """A short random identifier for cases where determinism is not needed."""
    return uuid.uuid4().hex[:12]
