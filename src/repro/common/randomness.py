"""Seeded randomness for workload generation and stochastic timing models.

Every stochastic component in the reproduction draws from a
:class:`RandomSource` so that benchmarks and tests are reproducible for a
fixed seed, while independent components can still use independent streams
(via :meth:`RandomSource.spawn`).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence, Union

try:  # The sim kernel has no numpy dependency; only stochastic draws do.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

__all__ = ["RandomSource", "stable_seed"]


def stable_seed(*parts: Union[str, int, float]) -> int:
    """Deterministic 63-bit seed derived from a tuple of key parts.

    Hash-based (SHA-256), so the result depends only on the key values —
    never on process, platform or call order.  Useful for keying the
    integer-``seed`` APIs (workloads, arrival processes) per sweep cell.
    """
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1


class RandomSource:
    """Thin wrapper over :class:`numpy.random.Generator` with spawnable streams."""

    def __init__(self, seed: Optional[int] = 0):
        if np is None:
            raise RuntimeError("RandomSource requires numpy")
        self._seed_seq = np.random.SeedSequence(seed)
        self._rng = np.random.default_rng(self._seed_seq)

    @property
    def rng(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._rng

    def spawn(self) -> "RandomSource":
        """Create an independent child stream (deterministic given the parent)."""
        child = object.__new__(RandomSource)
        child._seed_seq = self._seed_seq.spawn(1)[0]
        child._rng = np.random.default_rng(child._seed_seq)
        return child

    def spawn_named(self, key: str) -> "RandomSource":
        """Create an independent child stream keyed by ``key``.

        Unlike :meth:`spawn` — which advances the parent's spawn counter, so
        the stream a child receives depends on *how many* spawns happened
        before it — the named stream is a pure function of the parent's seed
        and the key string.  A sweep shard keyed by its cell key therefore
        draws the same stream no matter which worker runs it, in what order,
        or how many other shards were spawned first.
        """
        digest = hashlib.sha256(key.encode()).digest()
        words = tuple(int.from_bytes(digest[i:i + 4], "little") for i in range(0, 16, 4))
        child = object.__new__(RandomSource)
        child._seed_seq = np.random.SeedSequence(
            entropy=self._seed_seq.entropy,
            spawn_key=tuple(self._seed_seq.spawn_key) + words,
        )
        child._rng = np.random.default_rng(child._seed_seq)
        return child

    # -- convenience draws ------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def exponential(self, mean: float) -> float:
        """Exponential inter-arrival draw with the given mean."""
        if mean <= 0:
            raise ValueError("mean must be > 0")
        return float(self._rng.exponential(mean))

    def lognormal(self, mean: float, sigma: float) -> float:
        """Lognormal draw parameterised by the *target arithmetic mean*.

        ``mean`` is the desired arithmetic mean of the distribution and
        ``sigma`` the shape parameter of the underlying normal.
        """
        if mean <= 0:
            raise ValueError("mean must be > 0")
        mu = np.log(mean) - 0.5 * sigma**2
        return float(self._rng.lognormal(mu, sigma))

    def integers(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return int(self._rng.integers(low, high + 1))

    def choice(self, options: Sequence) -> object:
        idx = int(self._rng.integers(0, len(options)))
        return options[idx]

    def normal(self, mean: float, std: float) -> float:
        return float(self._rng.normal(mean, std))

    def jitter(self, value: float, fraction: float = 0.05) -> float:
        """Multiplicative jitter of ±``fraction`` around ``value`` (never negative)."""
        factor = 1.0 + self._rng.uniform(-fraction, fraction)
        return max(0.0, value * factor)
