"""Shared utilities: errors, deterministic id generation and RNG helpers."""

from .errors import (
    AuthenticationError,
    AuthorizationError,
    CapacityError,
    ConfigurationError,
    NotFoundError,
    RateLimitError,
    ReproError,
    ValidationError,
)
from .ids import IdGenerator, short_uuid
from .logging import SimLogAdapter, sim_logger
from .randomness import RandomSource, stable_seed

__all__ = [
    "ReproError",
    "AuthenticationError",
    "AuthorizationError",
    "ValidationError",
    "RateLimitError",
    "NotFoundError",
    "CapacityError",
    "ConfigurationError",
    "IdGenerator",
    "short_uuid",
    "RandomSource",
    "stable_seed",
    "SimLogAdapter",
    "sim_logger",
]
