"""Exception hierarchy shared across the reproduction.

The gateway maps these onto HTTP-style status codes (see
:mod:`repro.gateway.responses`), mirroring how the FIRST Inference Gateway
reports authentication, validation, rate-limit and capacity failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AuthenticationError",
    "AuthorizationError",
    "ValidationError",
    "RateLimitError",
    "NotFoundError",
    "CapacityError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the reproduction."""

    #: HTTP-style status code used by the gateway when surfacing the error.
    status_code = 500


class AuthenticationError(ReproError):
    """The caller could not be identified (missing/expired/invalid token)."""

    status_code = 401


class AuthorizationError(ReproError):
    """The caller is identified but not allowed to perform the action."""

    status_code = 403


class ValidationError(ReproError):
    """The request payload is malformed or violates model constraints."""

    status_code = 422


class RateLimitError(ReproError):
    """The caller exceeded a configured rate limit."""

    status_code = 429


class NotFoundError(ReproError):
    """A referenced entity (model, endpoint, batch, job) does not exist."""

    status_code = 404


class CapacityError(ReproError):
    """No resources are available to satisfy the request."""

    status_code = 503


class ConfigurationError(ReproError):
    """A deployment or endpoint configuration is inconsistent."""

    status_code = 500
