"""Discrete-event simulation kernel used by every substrate in the reproduction.

This is a small, deterministic, SimPy-style engine written from scratch:

* :class:`Environment` — the simulated clock and event queue.
* :class:`Event`, :class:`Timeout`, :class:`Process` — the scheduling primitives.
* :class:`Resource`, :class:`PriorityResource`, :class:`Container` — contended
  capacities (GPU slots, worker threads, relay channels, memory).
* :class:`Store`, :class:`FilterStore`, :class:`PriorityStore` — message queues.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(3.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
3.0
"""

from .environment import EmptySchedule, Environment, StopSimulation
from .queues import (
    AdaptiveEventQueue,
    CalendarEventQueue,
    EventQueue,
    HeapEventQueue,
    PackedCalendarEventQueue,
    make_event_queue,
    use_compiled_stepper,
)
from .events import (
    NORMAL,
    PENDING,
    URGENT,
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from .resources import (
    Container,
    ContainerGet,
    ContainerPut,
    PriorityRequest,
    PriorityResource,
    Release,
    Request,
    Resource,
)
from .stores import FilterStore, PriorityItem, PriorityStore, Store, StoreGet, StorePut

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "EventQueue",
    "HeapEventQueue",
    "CalendarEventQueue",
    "PackedCalendarEventQueue",
    "AdaptiveEventQueue",
    "make_event_queue",
    "use_compiled_stepper",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "PENDING",
    "URGENT",
    "NORMAL",
    "Resource",
    "PriorityResource",
    "Request",
    "PriorityRequest",
    "Release",
    "Container",
    "ContainerPut",
    "ContainerGet",
    "Store",
    "FilterStore",
    "PriorityStore",
    "PriorityItem",
    "StoreGet",
    "StorePut",
]
