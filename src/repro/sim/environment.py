"""The discrete-event simulation environment (clock + event queue)."""

from __future__ import annotations

import os as _os
from collections import deque
from itertools import count
from typing import Any, Deque, Generator, Iterable, Optional

from .events import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Event,
    Process,
    Timeout,
)
from .queues import EventQueue, make_event_queue

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no more events are queued."""


class StopSimulation(Exception):
    """Internal exception used to stop :meth:`Environment.run` at an event."""

    @classmethod
    def callback(cls, event: Event) -> None:
        if event._ok:
            raise cls(event._value)
        raise event._value


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float in seconds.  Events are processed in order of
    ``(time, priority, insertion order)`` which makes runs fully
    deterministic for a fixed seed.

    ``queue`` selects the pending-event structure (see
    :mod:`repro.sim.queues`): ``"heap"`` (default binary heap),
    ``"calendar"`` (Brown-style calendar queue, amortised O(1) on
    clustered schedules), ``"packed"`` (calendar geometry over packed
    ``array`` columns — no per-entry tuples) or ``"auto"`` (heap that
    migrates to packed at serving-scale pending counts).  All backends
    share the same total order, so simulation results are bit-identical
    regardless of the choice.
    """

    def __init__(self, initial_time: float = 0.0, queue: str = "heap",
                 sanitize: bool = False):
        self._now = float(initial_time)
        self._pending: EventQueue = make_event_queue(queue, self._now)
        #: Fast lane for zero-delay URGENT events (process starts, interrupts).
        #: They always run before every same-time NORMAL event, and among
        #: themselves in insertion order, so a plain FIFO reproduces the
        #: pending queue's ordering without any tuple construction or sift
        #: cost.
        self._urgent: Deque[Event] = deque()
        self._eid = count()
        self._active_proc: Optional[Process] = None
        # Bound once: schedule/schedule_at/step are the kernel's hottest
        # call sites and the extra attribute hop is measurable there.
        self._push = self._pending.push
        self._pop = self._pending.pop
        self._pop2 = self._pending.pop2
        #: Optional :class:`repro.obs.KernelProfiler`.  ``None`` (the default)
        #: keeps the kernel entirely unobserved: ``step`` stays the plain
        #: class method and hot paths only ever pay an ``is None`` check.
        self.profiler = None
        #: Optional :class:`repro.analysis.DetSan`.  Attached only on request
        #: (``sanitize=True`` or ``REPRO_DETSAN=1``) via the same shadow-step
        #: pattern as the profiler, so the plain kernel pays nothing.
        self.sanitizer = None
        if sanitize or _os.environ.get("REPRO_DETSAN", "") not in ("", "0"):
            from ..analysis.detsan import DetSan

            DetSan().attach(self)

    # -- properties ------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    @property
    def queue_size(self) -> int:
        """Number of events currently scheduled."""
        return len(self._pending) + len(self._urgent)

    # -- event creation --------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def timeout_at(self, time: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires at the *absolute* time ``time``.

        Unlike ``timeout(time - now)``, the event fires at exactly ``time``
        with no floating-point round trip, which lets callers reproduce a
        previously computed event time bit-for-bit.
        """
        return Timeout(self, time - self._now, value, at=time)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Schedule ``event`` to be processed after ``delay`` seconds."""
        if priority == URGENT and delay == 0.0:
            # Same-time URGENT events outrank every NORMAL event queued for
            # this instant, and time cannot move backwards, so they can skip
            # the queue entirely (no (time, priority, eid, event) tuple churn).
            self._urgent.append(event)
            return
        self._push(self._now + delay, priority, next(self._eid), event)

    def schedule_at(self, event: Event, time: float, priority: int = NORMAL) -> None:
        """Schedule ``event`` at the absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"Cannot schedule at {time} (now is {self._now})")
        self._push(time, priority, next(self._eid), event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._urgent:
            return self._now
        entry = self._pending.peek()
        return entry[0] if entry is not None else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events remain.
        """
        if self._urgent:
            event = self._urgent.popleft()
        else:
            try:
                # pop2 returns only (time, event) — packed backends skip
                # materialising the full (time, priority, eid, event) tuple.
                self._now, event = self._pop2()
            except IndexError:
                raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            # Event was already processed (can happen when an event is both
            # interrupted and scheduled); nothing to do.
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failed event aborts the simulation.
            raise event._value

    # -- bounded-horizon stepping (parallel partitions) ------------------
    def run_until_horizon(self, horizon: float, inclusive: bool = False) -> float:
        """Process pending events up to a time barrier, then stop.

        The conservative-window parallel scheme (:mod:`repro.parallel`)
        advances each partition's environment with this instead of
        :meth:`run`: events strictly before ``horizon`` are committed
        (``inclusive=True`` also commits events *at* ``horizon`` — the
        null-message micro-window for zero-lookahead edges), and the first
        uncommitted event stays in the queue untouched, so boundary
        messages arriving at or after the barrier can still be scheduled
        causally.

        Returns :meth:`peek` after stopping: the time of the first
        uncommitted event, or ``inf`` when the partition has gone idle.
        ``inclusive=True`` requires a finite ``horizon`` (an unbounded
        inclusive window is just :meth:`run`).
        """
        if inclusive:
            while self.peek() <= horizon:
                self.step()
        else:
            while self.peek() < horizon:
                self.step()
        return self.peek()

    def export_pending(self):
        """Drain the pending queue into portable ``(time, priority, eid, event)``
        entries, in exact pop order.

        Together with :meth:`import_pending` this is the kernel's
        event-migration hook: a partition can be checkpointed, shipped to
        another process, or moved onto a different queue backend without
        perturbing the ``(time, priority, eid)`` total order.  Zero-delay
        URGENT events never survive a barrier (they are consumed within the
        step that scheduled them), so exporting with a non-empty urgent
        lane is a caller bug and raises.
        """
        if self._urgent:
            raise RuntimeError(
                "cannot export pending events while zero-delay URGENT events "
                "are queued (export only at a window barrier)")
        entries = []
        pop = self._pending.pop
        while True:
            try:
                entries.append(pop())
            except IndexError:
                return entries

    def import_pending(self, entries, queue: Optional[str] = None) -> None:
        """Re-insert entries from :meth:`export_pending`.

        ``queue`` optionally rebuilds the pending structure on a different
        backend first (all backends share the same total order, so the
        migration is bit-exact).  Event ids are preserved and the id
        counter resumes past the highest imported id, so events scheduled
        after an import sort exactly as they would have in the exporting
        environment.
        """
        if queue is not None:
            self._pending = make_event_queue(queue, self._now)
            self._push = self._pending.push
            self._pop = self._pending.pop
            self._pop2 = self._pending.pop2
        push = self._push
        top = -1
        for time, priority, eid, event in entries:
            push(time, priority, eid, event)
            if eid > top:
                top = eid
        current = next(self._eid)
        self._eid = count(max(current, top + 1))

    # -- profiling -------------------------------------------------------
    def attach_profiler(self, profiler) -> None:
        """Attach a kernel profiler (e.g. :class:`repro.obs.KernelProfiler`).

        Profiling swaps in an instrumented ``step`` as an *instance*
        attribute, shadowing the class method; with no profiler attached the
        kernel therefore runs the unmodified hot path at zero overhead.
        """
        self.profiler = profiler
        self.__dict__["step"] = self._profiled_step
        attach = getattr(profiler, "attach", None)
        if attach is not None:
            attach(self)

    def detach_profiler(self) -> None:
        """Remove the attached profiler and restore the plain ``step``."""
        profiler, self.profiler = self.profiler, None
        self.__dict__.pop("step", None)
        detach = getattr(profiler, "detach", None)
        if detach is not None:
            detach(self)

    def _profiled_step(self) -> None:
        # Keep in sync with :meth:`step` — this is a copy of its body plus
        # the profiler hook, so the unprofiled path pays nothing.
        profiler = self.profiler
        if self._urgent:
            event = self._urgent.popleft()
        else:
            try:
                self._now, event = self._pop2()
            except IndexError:
                raise EmptySchedule() from None

        if profiler is not None:
            profiler.on_event(self._now, event, len(self._pending) + len(self._urgent))

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time) or an :class:`Event` (run until the
        event triggers; its value is returned).
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at <= self._now:
                raise ValueError(
                    f"until (={at}) must be greater than the current time ({self._now})"
                )
            until = Event(self)
            until._ok = True
            until._value = None
            # Absolute scheduling: ``now + (at - now)`` can round an ulp away
            # from ``at``, and the stop time must be bit-exact (it is compared
            # against ``timeout_at``/``schedule_at`` times elsewhere).
            self.schedule_at(until, at, priority=NORMAL)

        if until is not None:
            if until.callbacks is None:
                # Already processed: report exactly like StopSimulation.callback
                # would have — value for a success, re-raise for a failure.
                if until._ok:
                    return until._value
                raise until._value
            until.callbacks.append(StopSimulation.callback)

        try:
            while True:
                self.step()
        except StopSimulation as exc:
            return exc.args[0] if exc.args else None
        except EmptySchedule:
            if until is not None and not until.triggered:
                raise RuntimeError(
                    f"No scheduled events left but \"until\" event was not triggered: {until!r}"
                ) from None
        return None
