"""The discrete-event simulation environment (clock + event queue)."""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Any, Deque, Generator, Iterable, List, Optional, Tuple

from .events import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Event,
    Process,
    Timeout,
)

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no more events are queued."""


class StopSimulation(Exception):
    """Internal exception used to stop :meth:`Environment.run` at an event."""

    @classmethod
    def callback(cls, event: Event) -> None:
        if event._ok:
            raise cls(event._value)
        raise event._value


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float in seconds.  Events are processed in order of
    ``(time, priority, insertion order)`` which makes runs fully
    deterministic for a fixed seed.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        #: Fast lane for zero-delay URGENT events (process starts, interrupts).
        #: They always run before every same-time NORMAL event, and among
        #: themselves in insertion order, so a plain FIFO reproduces the heap
        #: ordering without any tuple construction or sift cost.
        self._urgent: Deque[Event] = deque()
        self._eid = count()
        self._active_proc: Optional[Process] = None

    # -- properties ------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    @property
    def queue_size(self) -> int:
        """Number of events currently scheduled."""
        return len(self._queue) + len(self._urgent)

    # -- event creation --------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def timeout_at(self, time: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires at the *absolute* time ``time``.

        Unlike ``timeout(time - now)``, the event fires at exactly ``time``
        with no floating-point round trip, which lets callers reproduce a
        previously computed event time bit-for-bit.
        """
        return Timeout(self, time - self._now, value, at=time)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Schedule ``event`` to be processed after ``delay`` seconds."""
        if priority == URGENT and delay == 0.0:
            # Same-time URGENT events outrank every NORMAL event queued for
            # this instant, and time cannot move backwards, so they can skip
            # the heap entirely (no (time, priority, eid, event) tuple churn).
            self._urgent.append(event)
            return
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def schedule_at(self, event: Event, time: float, priority: int = NORMAL) -> None:
        """Schedule ``event`` at the absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"Cannot schedule at {time} (now is {self._now})")
        heapq.heappush(self._queue, (time, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._urgent:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events remain.
        """
        if self._urgent:
            event = self._urgent.popleft()
        else:
            try:
                self._now, _, _, event = heapq.heappop(self._queue)
            except IndexError:
                raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            # Event was already processed (can happen when an event is both
            # interrupted and scheduled); nothing to do.
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failed event aborts the simulation.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time) or an :class:`Event` (run until the
        event triggers; its value is returned).
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at <= self._now:
                raise ValueError(
                    f"until (={at}) must be greater than the current time ({self._now})"
                )
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, delay=at - self._now, priority=NORMAL)

        if until is not None:
            if until.callbacks is None:
                return until._value if until._ok else None
            until.callbacks.append(StopSimulation.callback)

        try:
            while True:
                self.step()
        except StopSimulation as exc:
            return exc.args[0] if exc.args else None
        except EmptySchedule:
            if until is not None and not until.triggered:
                raise RuntimeError(
                    f"No scheduled events left but \"until\" event was not triggered: {until!r}"
                ) from None
        return None
