"""Store primitives: FIFO, filtered and priority item queues.

Stores model message queues in the reproduction: the Globus-Compute-like
relay's task queue, per-endpoint work queues, the gateway's request backlog,
and the batch-job queues.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .events import Event

__all__ = ["StorePut", "StoreGet", "Store", "FilterStore", "PriorityItem", "PriorityStore"]


class StorePut(Event):
    """Event for putting an item into a :class:`Store`."""

    def __init__(self, store: "Store", item: Any):
        super().__init__(store._env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Event for taking an item out of a :class:`Store`."""

    def __init__(self, store: "Store"):
        super().__init__(store._env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """A FIFO store of arbitrary items with optional bounded capacity."""

    def __init__(self, env, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self._env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    @property
    def env(self):
        return self._env

    @property
    def capacity(self) -> float:
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Put ``item`` into the store (waits if the store is full)."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Take the next item out of the store (waits if empty)."""
        return StoreGet(self)

    # -- internals -------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            idx = 0
            while idx < len(self._put_queue):
                event = self._put_queue[idx]
                if self._do_put(event):
                    self._put_queue.pop(idx)
                    progressed = True
                else:
                    idx += 1
                    break
            idx = 0
            while idx < len(self._get_queue):
                event = self._get_queue[idx]
                if self._do_get(event):
                    self._get_queue.pop(idx)
                    progressed = True
                else:
                    idx += 1
                    if not isinstance(self, FilterStore):
                        break


class FilterStoreGet(StoreGet):
    """Get event that only matches items satisfying a filter function."""

    def __init__(self, store: "FilterStore", filter: Callable[[Any], bool]):
        self.filter = filter
        super().__init__(store)


class FilterStore(Store):
    """A store whose consumers can request items matching a predicate."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        return FilterStoreGet(self, filter)

    def _do_get(self, event: StoreGet) -> bool:
        filt = getattr(event, "filter", lambda item: True)
        for i, item in enumerate(self.items):
            if filt(item):
                self.items.pop(i)
                event.succeed(item)
                return True
        return False


class PriorityItem:
    """Wrapper pairing an item with a priority (lower = served first)."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: float, item: Any):
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, PriorityItem)
            and self.priority == other.priority
            and self.item == other.item
        )

    def __repr__(self) -> str:
        return f"PriorityItem(priority={self.priority!r}, item={self.item!r})"


class PriorityStore(Store):
    """A store that always yields the lowest-priority-value item first."""

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            item = event.item
            # Insert keeping the list sorted (stable for equal priorities).
            lo, hi = 0, len(self.items)
            while lo < hi:
                mid = (lo + hi) // 2
                if item < self.items[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            self.items.insert(lo, item)
            event.succeed()
            return True
        return False
