"""Store primitives: FIFO, filtered and priority item queues.

Stores model message queues in the reproduction: the Globus-Compute-like
relay's task queue, per-endpoint work queues, the gateway's request backlog,
and the batch-job queues.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Any, Callable, Deque, List

from .events import Event

__all__ = ["StorePut", "StoreGet", "Store", "FilterStore", "PriorityItem", "PriorityStore"]


class StorePut(Event):
    """Event for putting an item into a :class:`Store`."""

    def __init__(self, store: "Store", item: Any):
        super().__init__(store._env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Event for taking an item out of a :class:`Store`."""

    def __init__(self, store: "Store"):
        super().__init__(store._env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """A FIFO store of arbitrary items with optional bounded capacity.

    ``items`` and the pending put/get queues are deques so the FIFO hot path
    (append at the tail, serve from the head) is O(1) instead of the O(n)
    ``list.pop(0)`` a list would pay per item.
    """

    def __init__(self, env, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self._env = env
        self._capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    @property
    def env(self):
        return self._env

    @property
    def capacity(self) -> float:
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Put ``item`` into the store (waits if the store is full)."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Take the next item out of the store (waits if empty)."""
        return StoreGet(self)

    # -- internals -------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.popleft())
            return True
        return False

    def _service_put_queue(self) -> bool:
        """Serve queued puts from the head until the first one blocks."""
        progressed = False
        queue = self._put_queue
        while queue and self._do_put(queue[0]):
            queue.popleft()
            progressed = True
        return progressed

    def _service_get_queue(self) -> bool:
        """Serve queued gets from the head until the first one blocks."""
        progressed = False
        queue = self._get_queue
        while queue and self._do_get(queue[0]):
            queue.popleft()
            progressed = True
        return progressed

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = self._service_put_queue()
            if self._service_get_queue():
                progressed = True


class FilterStoreGet(StoreGet):
    """Get event that only matches items satisfying a filter function."""

    def __init__(self, store: "FilterStore", filter: Callable[[Any], bool]):
        self.filter = filter
        super().__init__(store)


class FilterStore(Store):
    """A store whose consumers can request items matching a predicate."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        return FilterStoreGet(self, filter)

    def _do_get(self, event: StoreGet) -> bool:
        filt = getattr(event, "filter", lambda item: True)
        for i, item in enumerate(self.items):
            if filt(item):
                del self.items[i]
                event.succeed(item)
                return True
        return False

    def _service_get_queue(self) -> bool:
        """Unlike the FIFO store, a blocked filtered get must not stall the
        consumers behind it; every waiter is offered the current items once,
        with blocked waiters retained in their original order."""
        progressed = False
        queue = self._get_queue
        for _ in range(len(queue)):
            event = queue.popleft()
            if self._do_get(event):
                progressed = True
            else:
                queue.append(event)
        return progressed


class PriorityItem:
    """Wrapper pairing an item with a priority (lower = served first)."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: float, item: Any):
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, PriorityItem)
            and self.priority == other.priority
            and self.item == other.item
        )

    def __repr__(self) -> str:
        return f"PriorityItem(priority={self.priority!r}, item={self.item!r})"


class PriorityStore(Store):
    """A store that always yields the lowest-priority-value item first.

    ``items`` stays a plain sorted list: the binary-search insert needs O(1)
    random access, which a deque's O(n) middle indexing would ruin.
    """

    def __init__(self, env, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self.items: List[Any] = []

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            # insort_right keeps insertion order stable for equal priorities.
            insort(self.items, event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False
