"""Optional cffi-compiled inner loop for the packed event queue.

The packed calendar queue's far-future overflow lane keeps parallel
``(time, key)`` columns — ``key`` packs ``(priority, eid)`` into one
int64 — in sorted order, and every overflow insertion starts with a
binary search for the placement position.  This module compiles that
search to C with :mod:`cffi` when the user opts in, and stays entirely
out of the way otherwise:

* the build is **lazy** — no compiler or cffi import happens until
  :func:`build_insert_pos` is first called;
* activation is **opt-in** via the ``REPRO_COMPILED_STEPPER`` environment
  variable (or :func:`repro.sim.queues.use_compiled_stepper`), because the
  sweep plane spawns worker *processes* and an always-on build would
  recompile once per worker;
* every failure path (no cffi, no C compiler, sandboxed tmpdir) degrades
  silently to the pure-Python bisect, which is bit-identical by contract.

The C routine returns the first index ``i`` with
``(times[i], keys[i]) > (time, key)`` lexicographically — exactly what the
pure-Python ``bisect_right``-plus-tie-walk computes — so the two paths are
interchangeable without affecting pop order.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

__all__ = ["ENV_FLAG", "requested", "build_insert_pos"]

#: Environment variable that opts the process into compiling the C stepper.
ENV_FLAG = "REPRO_COMPILED_STEPPER"

_C_SOURCE = r"""
long repro_packed_insert_pos(double *times, long long *keys, long n,
                             double time, long long key)
{
    /* First index i with (times[i], keys[i]) > (time, key), lexicographic.
       Mirrors bisect_right over the packed parallel columns; NaN never
       occurs (event times are finite or +inf, and inf==inf falls through
       to the integer key compare). */
    long lo = 0, hi = n;
    while (lo < hi) {
        long mid = (lo + hi) >> 1;
        if (times[mid] > time || (times[mid] == time && keys[mid] > key))
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}
"""

_cached: Optional[Callable] = None
_attempted = False


def requested() -> bool:
    """True when the ``REPRO_COMPILED_STEPPER`` env var asks for the C path."""
    return os.environ.get(ENV_FLAG, "").strip().lower() in ("1", "on", "true", "yes")


def build_insert_pos() -> Optional[Callable]:
    """Compile (once) and return the C insert-position kernel, or ``None``.

    Returns a callable ``insert_pos(times, keys, time, key) -> int`` over
    ``array('d')``/``array('q')`` columns, or ``None`` when cffi or a C
    toolchain is unavailable.  The result (including failure) is cached so
    repeated calls never recompile.
    """
    global _cached, _attempted
    if _attempted:
        return _cached
    _attempted = True
    try:
        import cffi
    except ImportError:
        return None
    import importlib.util
    import tempfile
    try:
        ffi = cffi.FFI()
        ffi.cdef(
            "long repro_packed_insert_pos(double *, long long *, long, "
            "double, long long);"
        )
        ffi.set_source("_repro_packed_stepper", _C_SOURCE)
        tmpdir = tempfile.mkdtemp(prefix="repro-cstepper-")
        lib_path = ffi.compile(tmpdir=tmpdir, verbose=False)
        spec = importlib.util.spec_from_file_location(
            "_repro_packed_stepper", lib_path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # type: ignore[union-attr]
    except Exception:
        # No compiler / read-only tmp / linker quirk: the pure-Python path
        # is always available and bit-identical, so fail quietly.
        return None

    cfunc = module.lib.repro_packed_insert_pos
    from_buffer = module.ffi.from_buffer

    def insert_pos(times, keys, time, key):
        n = len(times)
        if n == 0:
            return 0
        return cfunc(
            from_buffer("double[]", times),
            from_buffer("long long[]", keys),
            n, time, key,
        )

    _cached = insert_pos
    return insert_pos
