"""Shared-resource primitives: resources, priority resources and containers.

These model contended capacities in the FIRST reproduction: GPU slots on a
node, gateway worker threads, the single-threaded vLLM API front-end, relay
dispatch channels, and so on.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Deque, List

from .events import Event

__all__ = [
    "Request",
    "Release",
    "Resource",
    "PriorityRequest",
    "PriorityResource",
    "Container",
    "ContainerPut",
    "ContainerGet",
]


class Request(Event):
    """Request for one unit of a :class:`Resource` (usable as a context manager)."""

    def __init__(self, resource: "Resource"):
        super().__init__(resource._env)
        self.resource = resource
        self.proc = resource._env.active_process
        self.time_requested = resource._env.now
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (or withdraw the pending request)."""
        self.resource.release(self)


class Release(Event):
    """Event representing the release of a resource slot (triggers immediately)."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource._env)
        self.resource = resource
        self.request = request
        self.succeed()


class Resource:
    """A resource with a fixed integer ``capacity`` and a FIFO wait queue.

    The wait queue is a deque: granting the next waiter is O(1), while
    withdrawing a pending request (cancellation) remains an O(n) removal
    with unchanged semantics.
    """

    def __init__(self, env, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self._env = env
        self._capacity = int(capacity)
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def env(self):
        return self._env

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self.queue)

    # -- public API ------------------------------------------------------
    def request(self) -> Request:
        """Request a slot.  Yields when a slot is granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release a previously granted slot (or withdraw a pending request)."""
        if request in self.users:
            self.users.remove(request)
            self._trigger_waiters()
        elif request in self.queue:
            self.queue.remove(request)
        return Release(self, request)

    def resize(self, capacity: int) -> None:
        """Change the capacity (used for auto-scaling models)."""
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self._capacity = int(capacity)
        self._trigger_waiters()

    # -- internals -------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _trigger_waiters(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            request = self.queue.popleft()
            self.users.append(request)
            request.succeed()


class PriorityRequest(Request):
    """Request with a priority (lower value = more important) and FIFO tie-break."""

    def __init__(self, resource: "PriorityResource", priority: int = 0):
        self.priority = priority
        self.key = (priority, resource._env.now, next(resource._ticket))
        super().__init__(resource)


class PriorityResource(Resource):
    """Resource whose wait queue is ordered by request priority.

    The queue is a list kept sorted by insertion (``bisect.insort``), which
    replaces the seed's full re-sort on every request and wake-up.
    """

    def __init__(self, env, capacity: int = 1):
        super().__init__(env, capacity)
        from itertools import count as _count

        self._ticket = _count()
        self.queue: List[Request] = []

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            insort(self.queue, request, key=lambda r: r.key)  # type: ignore[attr-defined]

    def _trigger_waiters(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            request = self.queue.pop(0)
            self.users.append(request)
            request.succeed()


class ContainerPut(Event):
    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be > 0")
        super().__init__(container._env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be > 0")
        super().__init__(container._env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A continuous-quantity resource (e.g. GPU memory in GB, queue depth)."""

    def __init__(self, env, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self._env = env
        self._capacity = capacity
        self._level = init
        self._put_queue: Deque[ContainerPut] = deque()
        self._get_queue: Deque[ContainerGet] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Put ``amount`` into the container (waits if it would overflow)."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Take ``amount`` from the container (waits until available)."""
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue:
                put = self._put_queue[0]
                if self._level + put.amount <= self._capacity:
                    self._put_queue.popleft()
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_queue:
                get = self._get_queue[0]
                if self._level >= get.amount:
                    self._get_queue.popleft()
                    self._level -= get.amount
                    get.succeed()
                    progressed = True
