"""Core event primitives for the discrete-event simulation kernel.

The kernel is a from-scratch, SimPy-compatible-in-spirit engine used to model
every time-dependent component of the FIRST reproduction (cluster schedulers,
inference engines, the Globus-Compute-like relay, the gateway worker pool and
so on).  Events are the unit of scheduling: a process yields events and is
resumed when they are triggered.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
]

#: Sentinel used for the value of an event that has not yet been triggered.
PENDING = object()

#: Scheduling priority for events that must run before same-time events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class Interrupt(Exception):
    """Raised inside a :class:`Process` when it is interrupted.

    The ``cause`` attribute carries the object passed to
    :meth:`Process.interrupt`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An event that may happen at some point in (simulated) time.

    An event has three states: not triggered, triggered (scheduled but not
    yet processed) and processed.  Callbacks appended to :attr:`callbacks`
    are invoked with the event as the only argument when the event is
    processed by the environment.

    The kernel classes declare ``__slots__``: large simulations allocate
    millions of events, and dropping the per-instance ``__dict__`` cuts both
    allocation time and memory.  Subclasses outside the kernel that do not
    declare ``__slots__`` transparently regain a ``__dict__`` for their own
    attributes.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):  # noqa: F821 - forward ref
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been triggered (has a value)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event was triggered successfully."""
        if not self.triggered:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value of the event, or the exception if it failed."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failed event's exception has been handled."""
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event's exception as handled."""
        self._defused = True

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (callback form)."""
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition -----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_event, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} object at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay.

    ``at`` schedules the timeout at an *absolute* simulated time instead of a
    relative delay.  This matters for exact reproducibility: with floats,
    ``now + (t - now)`` is not always ``t``, so a caller that knows the exact
    target time (e.g. the engine's macro-stepper replaying per-iteration
    boundary times) passes it through unchanged.
    """

    __slots__ = ("_delay", "_at")

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 at: Optional[float] = None):  # noqa: F821
        if at is None and delay < 0:
            raise ValueError(f"Negative delay {delay}")
        super().__init__(env)
        self._ok = True
        self._value = value
        if at is None:
            self._delay = delay
            self._at = env.now + delay  # the exact time schedule() uses
            env.schedule(self, delay=delay)
        else:
            # An absolute-time timeout has no meaningful delay: storing the
            # round-tripped ``at - now`` here would misreport the one thing
            # ``timeout_at`` exists to preserve, the exact firing time.
            self._delay = None
            self._at = at
            env.schedule_at(self, at)

    @property
    def delay(self) -> Optional[float]:
        """The relative delay this timeout was created with.

        ``None`` for absolute-time timeouts (``Environment.timeout_at``);
        use :attr:`at` for the firing time, which is exact in both cases.
        """
        return self._delay

    @property
    def at(self) -> float:
        """The absolute simulated time this timeout fires at (bit-exact)."""
        return self._at

    def __repr__(self) -> str:
        if self._delay is None:
            return f"<Timeout(at={self._at}) object at {id(self):#x}>"
        return f"<Timeout({self._delay}) object at {id(self):#x}>"


class Initialize(Event):
    """Internal event used to start a new :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):  # noqa: F821
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class _InterruptEvent(Event):
    """Internal urgent event that throws :class:`Interrupt` into a process."""

    __slots__ = ()

    def __init__(self, process: "Process", cause: Any):
        super().__init__(process.env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks = [process._resume]
        self.env.schedule(self, priority=URGENT)


class Process(Event):
    """A process: a generator driven by the events it yields.

    The process itself is an event that triggers when the generator returns
    (with the returned value) or raises (with the exception).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator):  # noqa: F821
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process, raising :class:`Interrupt` inside it."""
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("A process is not allowed to interrupt itself")
        _InterruptEvent(self, cause)

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Resume the generator with the value (or exception) of ``event``."""
        env = self.env
        env._active_proc = self

        # Remove our callback from the event we were actually waiting on if
        # we are being resumed by an interrupt instead.  The common resume
        # path (target is the triggering event) skips this entirely.
        target = self._target
        if target is not None and target is not event:
            callbacks = target.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self._target = None

        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.args[0] if exc.args else None
                env.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                self._ok = False
                self._value = RuntimeError(
                    f"Process yielded a non-event object: {next_event!r}"
                )
                env.schedule(self)
                break

            if next_event.callbacks is not None:
                # Event has not been processed yet: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Event was already processed: continue immediately with its value.
            event = next_event

        env._active_proc = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process({name}) object at {id(self):#x}>"


class ConditionValue:
    """Ordered mapping of events to values produced by a :class:`Condition`."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return iter(self.events)

    def values(self):
        return (e._value for e in self.events)

    def items(self):
        return ((e, e._value) for e in self.events)

    def todict(self) -> dict:
        return {e: e._value for e in self.events}


class Condition(Event):
    """A composite event that triggers when an evaluation function says so."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env, evaluate, events: Iterable[Event]):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("Cannot mix events from different environments")

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and not self.triggered:
            self.succeed(ConditionValue([]))

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None:
                value.events.append(event)

    def _build_value(self) -> ConditionValue:
        value = ConditionValue([])
        self._populate_value(value)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._build_value())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_event(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that triggers once all of its events have triggered."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers as soon as any of its events has triggered."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env, Condition.any_event, events)
