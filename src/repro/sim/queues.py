"""Pluggable pending-event structures for the simulation kernel.

Every event the :class:`~repro.sim.Environment` schedules (outside the
zero-delay URGENT fast lane) goes through one of these queues.  The contract
is a strict total order over ``(time, priority, eid)`` — ``eid`` is the
environment's monotonically increasing insertion counter, so no two entries
ever compare equal — which means *any* correct implementation pops the exact
same sequence and simulation results are bit-identical across backends.

Four implementations are provided:

* :class:`HeapEventQueue` — the original binary heap (``heapq``).  O(log n)
  push/pop, no tuning, the default.
* :class:`CalendarEventQueue` — a Brown-style calendar queue [Brown 1988,
  "Calendar Queues: A Fast O(1) Priority Queue Implementation for the
  Simulation Event Set Problem"].  Events within the current "year" are
  bucketed into days by firing time; far-future events (beyond the year)
  wait in a sorted overflow list until the year rolls forward.  The number
  of days and the day width auto-resize on occupancy so the typical bucket
  holds O(1) events, making push/pop amortised O(1) when event times are
  reasonably clustered — the NORMAL-timeout churn profile of the serving
  benchmarks.
* :class:`PackedCalendarEventQueue` — the serving-scale variant: same
  calendar geometry, but day buckets are append-only and bulk-sorted
  *lazily* — one descending C ``list.sort`` the first time the sweep
  serves a day, then O(1) end-pops — so each entry pays one amortised
  bulk-sort comparison instead of a per-push ``insort`` or a per-pop heap
  sift.  The far-future overflow lane is packed parallel
  ``array('d')``/``array('q')`` time/key columns (a key folds
  ``(priority, eid)`` into one int64) with a payload side table and
  searchsorted insertion, optionally served by a cffi-compiled probe
  (see :mod:`repro.sim._cstepper`); the pure-Python bisect fallback is
  bit-identical.  ~1.6x the heap at 100k pending
  (``benchmarks/BENCH_kernel.json``).
* :class:`AdaptiveEventQueue` — what ``"auto"`` resolves to: starts as the
  tuning-free heap and migrates (once) to the packed calendar when the
  pending count crosses serving scale, so small control scripts keep the
  heap's zero overhead and million-event runs get the packed layout.

Select a backend with
``Environment(queue="heap"|"calendar"|"packed"|"auto")`` or, at the
deployment layer, ``DeploymentConfig(kernel_queue=...)``.
"""

from __future__ import annotations

import heapq
from array import array
from bisect import bisect_left, bisect_right, insort
from math import inf, nextafter
from typing import Any, List, Optional, Tuple

from . import _cstepper

__all__ = [
    "QUEUE_KINDS",
    "AUTO_PACKED_THRESHOLD",
    "EventQueue",
    "HeapEventQueue",
    "CalendarEventQueue",
    "PackedCalendarEventQueue",
    "AdaptiveEventQueue",
    "make_event_queue",
    "use_compiled_stepper",
]

#: One pending entry: ``(time, priority, eid, event)``.
Entry = Tuple[float, int, int, Any]

#: Recognised ``Environment(queue=...)`` / ``make_event_queue`` names.
QUEUE_KINDS = ("heap", "calendar", "packed", "auto")

#: Pending-entry count at which ``"auto"`` migrates from the heap to the
#: packed calendar.  Below this the heap's constant factors win (and the
#: calendar's resize machinery is pure overhead); above it the packed
#: columns amortise — the 100k-pending stress rows in
#: ``benchmarks/BENCH_kernel.json`` record the gap.
AUTO_PACKED_THRESHOLD = 4096


class EventQueue:
    """Contract shared by all pending-event structures.

    Implementations must pop entries in ascending ``(time, priority, eid)``
    order.  ``pop`` raises :class:`IndexError` when empty (mirroring
    ``heapq.heappop``); ``peek`` returns ``None`` instead.

    ``pop2`` is the kernel's step fast path: it returns only
    ``(time, event)`` — the two fields :meth:`Environment.step` actually
    uses — so packed backends can skip materialising the full 4-tuple.
    """

    __slots__ = ()

    def push(self, time: float, priority: int, eid: int, event: Any) -> None:
        raise NotImplementedError

    def pop(self) -> Entry:
        raise NotImplementedError

    def pop2(self) -> Tuple[float, Any]:
        entry = self.pop()
        return entry[0], entry[3]

    def peek(self) -> Optional[Entry]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HeapEventQueue(EventQueue):
    """The classic binary-heap event set (``heapq``): O(log n), tuning-free."""

    __slots__ = ("_heap",)

    def __init__(self, initial_time: float = 0.0):
        self._heap: List[Entry] = []

    def push(self, time: float, priority: int, eid: int, event: Any) -> None:
        heapq.heappush(self._heap, (time, priority, eid, event))

    def pop(self) -> Entry:
        return heapq.heappop(self._heap)

    def pop2(self) -> Tuple[float, Any]:
        entry = heapq.heappop(self._heap)
        return entry[0], entry[3]

    def peek(self) -> Optional[Entry]:
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


def _width_from_gaps(times: List[float], fallback: float,
                     factor: float = 2.0) -> float:
    """Day width ~ ``factor`` x the mean gap between the (sorted) head times.

    Drops ties and non-finite gaps: an inf event time must not produce an
    inf day width, or the year would swallow the overflow list.
    """
    gaps = [b - a for a, b in zip(times, times[1:]) if b > a and b - a < inf]
    if not gaps:
        return fallback  # ties/empty/inf-only: keep the current estimate
    width = factor * sum(gaps) / len(gaps)
    return width if width > 0.0 else fallback


class CalendarEventQueue(EventQueue):
    """A calendar queue: buckets ("days") covering a rolling "year".

    Entries whose time falls inside the current year go into the day bucket
    ``floor((time - year_start) / day_width) % ...`` — here without the
    modulo wrap of the classic formulation: each day maps to exactly one
    bucket and the year advances as a whole, with everything beyond
    ``year_end`` waiting in a single sorted overflow list.  That keeps the
    invariants simple enough to prove the bit-identical-ordering contract:

    * day buckets partition ``[year_start, year_end)`` into ascending,
      non-overlapping intervals, so the first non-empty bucket holds the
      global minimum;
    * each bucket (and the overflow list) is kept sorted by the full
      ``(time, priority, eid)`` key via ``insort``, so ties break exactly
      like the heap's tuple comparison;
    * overflow entries all fire at or after ``year_end``, i.e. strictly
      after every bucketed entry.

    The calendar resizes on occupancy — double the day count when entries
    outnumber days 2:1, halve when they fall below 1:2 — re-estimating the
    day width from the mean gap between upcoming events so a day keeps
    holding O(1) entries as the schedule's density drifts.
    """

    __slots__ = (
        "_buckets", "_num_days", "_width", "_year_start", "_year_end",
        "_cursor", "_overflow", "_size", "_grow_at", "_shrink_at",
    )

    MIN_DAYS = 16
    MAX_DAYS = 1 << 20

    def __init__(self, initial_time: float = 0.0, num_days: int = MIN_DAYS,
                 day_width: float = 1.0):
        self._overflow: List[Entry] = []
        self._size = 0
        self._reset_calendar(num_days, day_width, float(initial_time))

    # -- geometry --------------------------------------------------------
    def _reset_calendar(self, num_days: int, width: float, year_start: float) -> None:
        self._buckets: List[List[Entry]] = [[] for _ in range(num_days)]
        self._num_days = num_days
        self._width = width
        self._year_start = year_start
        self._year_end = year_start + num_days * width
        self._cursor = 0
        # Occupancy thresholds, precomputed so the hot paths compare ints.
        self._grow_at = 2 * num_days if num_days < self.MAX_DAYS else (1 << 62)
        self._shrink_at = num_days // 2 if num_days > self.MIN_DAYS else -1

    def _day_of(self, time: float) -> int:
        day = int((time - self._year_start) / self._width)
        # Clamp both ends: float roundoff at the year boundary can land
        # exactly on num_days, and a rebuild/year-roll anchors year_start at
        # the *next pending* event, so a later push may fire before it.
        # Clamped entries extend the first/last day's interval; insort still
        # orders them correctly relative to their bucket mates.
        if day < 0:
            return 0
        return day if day < self._num_days else self._num_days - 1

    # -- contract --------------------------------------------------------
    def push(self, time: float, priority: int, eid: int, event: Any) -> None:
        entry = (time, priority, eid, event)
        if time >= self._year_end:
            insort(self._overflow, entry)
        else:
            # Inlined _day_of: this is the kernel's hottest push path.
            day = int((time - self._year_start) / self._width)
            if day >= self._num_days:
                day = self._num_days - 1
            elif day < 0:
                day = 0
            if day < self._cursor:
                # A push into an already-swept day (the cursor skips empty
                # days eagerly); rewind so the sweep revisits it.
                self._cursor = day
            insort(self._buckets[day], entry)
        self._size += 1
        if self._size > self._grow_at:
            self._rebuild(self._num_days * 2)

    def pop(self) -> Entry:
        bucket = self._first_bucket()
        if bucket is None:
            raise IndexError("pop from an empty CalendarEventQueue")
        entry = bucket.pop(0)
        self._size -= 1
        if self._size < self._shrink_at:
            self._rebuild(self._num_days // 2)
        return entry

    def peek(self) -> Optional[Entry]:
        bucket = self._first_bucket()
        return bucket[0] if bucket is not None else None

    def __len__(self) -> int:
        return self._size

    # -- internals -------------------------------------------------------
    def _first_bucket(self) -> Optional[List[Entry]]:
        """The bucket holding the minimum entry, rolling the year as needed."""
        while True:
            buckets = self._buckets
            num_days = self._num_days
            cursor = self._cursor
            while cursor < num_days:
                bucket = buckets[cursor]
                if bucket:
                    self._cursor = cursor
                    return bucket
                cursor += 1
            self._cursor = num_days
            if not self._overflow:
                return None
            if self._overflow[0][0] == inf:
                # Everything left is an inf tie (nothing can fire later, so
                # the year cannot advance past it).  The overflow list is
                # itself sorted by the full key and new inf pushes insort
                # into it, so serve it directly as the final bucket.
                return self._overflow
            self._advance_year()

    def _advance_year(self) -> None:
        """All days are empty: jump the year to the next overflow entry."""
        year_start = self._overflow[0][0]  # finite: inf is handled by the caller
        year_end = year_start + self._num_days * self._width
        if year_end <= year_start:
            # At extreme magnitudes the whole year is below one ulp of the
            # next event time (e.g. timeout_at(1e18) with day width 1.0) and
            # the sum rounds back to year_start.  Force the minimal strict
            # advance so the leading entries always leave the overflow list;
            # the queue degrades to sorted-list behaviour instead of
            # spinning forever.
            year_end = nextafter(year_start, inf)
        self._year_start = year_start
        self._year_end = year_end
        self._cursor = 0
        # (year_end,) compares below any real entry at that time, so this
        # splits the overflow into [fires this year | fires later].
        split = bisect_left(self._overflow, (year_end,))
        due, self._overflow = self._overflow[:split], self._overflow[split:]
        buckets = self._buckets
        for entry in due:  # sorted, and _day_of is monotonic: appends stay sorted
            buckets[self._day_of(entry[0])].append(entry)

    def _rebuild(self, num_days: int) -> None:
        """Re-bucket everything into ``num_days`` days of re-estimated width.

        Bucket concatenation is globally sorted (the partition argument from
        the class docstring) and all overflow entries fire later still, so
        the rebuilt calendar preserves the total order with plain appends.
        """
        # Estimate the new width *before* flattening: the head sample is
        # read straight off the already-sorted leading buckets, touching
        # O(sample) entries instead of materialising all N twice.
        width = self._estimate_width()
        entries = [entry for bucket in self._buckets for entry in bucket]
        entries.extend(self._overflow)
        year_start = entries[0][0] if entries else self._year_start
        if year_start == inf:
            # Never anchor the year at inf (day arithmetic would overflow on
            # the next finite push); keep the previous finite anchor and let
            # the inf entries wait in the overflow list.
            year_start = self._year_start
        self._reset_calendar(num_days, width, year_start)
        self._overflow = []
        year_end = self._year_end
        buckets = self._buckets
        overflow = self._overflow
        for entry in entries:
            if entry[0] < year_end:
                buckets[self._day_of(entry[0])].append(entry)
            else:
                overflow.append(entry)

    def _head_times(self, sample: int) -> List[float]:
        """Times of (up to) the next ``sample`` entries, in pop order.

        Buckets before the cursor are empty by invariant and the bucket
        concatenation from the cursor onwards is globally sorted, so the
        walk stops after touching ``sample`` entries — it never flattens
        the full pending set.
        """
        times: List[float] = []
        for day in range(self._cursor, self._num_days):
            for entry in self._buckets[day]:
                times.append(entry[0])
                if len(times) >= sample:
                    return times
        for entry in self._overflow:
            times.append(entry[0])
            if len(times) >= sample:
                break
        return times

    def _estimate_width(self, sample: int = 64) -> float:
        """Day width ~ 2x the mean gap between the next ``sample`` events.

        Sampling the *head* of the schedule keeps far-future outliers (which
        belong in the overflow list anyway) from inflating the width, and
        reading it from the already-sorted leading buckets keeps the
        estimator O(sample) in entries touched regardless of queue size.
        """
        return _width_from_gaps(self._head_times(sample), self._width)


# ---------------------------------------------------------------------------
# packed calendar
# ---------------------------------------------------------------------------

#: Bits reserved for the eid in a packed int64 key; the priority occupies
#: the bits above.  ``(priority << 56) | eid`` is monotone in
#: ``(priority, eid)`` as long as both fit, so comparing packed keys is
#: exactly the tuple tie-break.
_EID_BITS = 56
_EID_MASK = (1 << _EID_BITS) - 1


def _insert_pos_py(times, keys, time: float, key: int) -> int:
    """First index ``i`` with ``(times[i], keys[i]) > (time, key)``.

    ``bisect_right`` lands after every equal-time entry; the walk-left
    restores the key tie-break.  Ties are short by construction (same-time
    entries differ in eid, and the overflow columns mostly hold distinct
    far-future times), so the walk is a couple of comparisons, not a scan.
    """
    pos = bisect_right(times, time)
    while pos and times[pos - 1] == time and keys[pos - 1] > key:
        pos -= 1
    return pos


#: The active insert kernel for packed buckets.  Swapped for the
#: cffi-compiled version by :func:`use_compiled_stepper` (or at import when
#: the ``REPRO_COMPILED_STEPPER`` env var is set); both compute the same
#: position, so the choice never affects pop order.
_INSERT_POS = _insert_pos_py


def use_compiled_stepper(enable: bool = True) -> bool:
    """Select the packed queue's insert kernel; returns ``True`` if compiled.

    ``enable=True`` lazily builds the cffi stepper (one compile per
    process, cached) and activates it for queues constructed *afterwards*;
    if cffi or a C toolchain is missing the pure-Python bisect stays active
    and ``False`` is returned.  ``enable=False`` reverts to pure Python.
    """
    global _INSERT_POS
    if enable:
        compiled = _cstepper.build_insert_pos()
        if compiled is not None:
            _INSERT_POS = compiled
            return True
    _INSERT_POS = _insert_pos_py
    return False


class PackedCalendarEventQueue(EventQueue):
    """Calendar queue tuned for serving scale: lazy-sorted days, packed overflow.

    Shares :class:`CalendarEventQueue`'s geometry and ordering proof (day
    buckets partition the year into ascending intervals; overflow fires
    strictly later; inf ties are served from the sorted overflow), with two
    structural changes aimed at the 100k-pending serving profile:

    * **Days are append-only and lazily sorted.**  A push appends one
      plain ``(time, priority, eid, event)`` record and maintains *no*
      order.  The first time the sweep cursor serves a day, the bucket is
      sorted **descending** once (``list.sort`` runs the whole comparison
      loop in C, and the record fields it compares are native floats and
      small ints) and then popped from the end, so service is O(1) per
      event with no memmove.  Each entry pays one amortised bulk-sort
      comparison between arrival and service, replacing the heap's
      O(log n) sift and the tuple calendar's per-push ``insort``.
      Pushes that land in the day *currently being serviced* binary-insert
      into its sorted run instead of appending (an append would force a
      full re-sort on the next pop; with a pending window narrower than
      one day that is every pop, and the queue degrades ~3x below the
      heap at small sizes — the small-set regime then behaves like a
      sorted-array queue, which is exactly the right structure there).
    * **Far-future overflow is packed parallel columns.**  Entries beyond
      the current year wait in ``array('d')``/``array('q')`` time/key
      columns — a key folds ``(priority, eid)`` into one int64 via
      ``(priority << 56) | eid``, monotone in the tuple tie-break — plus
      a side list of payloads; insertion is a searchsorted-style binary
      probe (:func:`_insert_pos_py`, or the cffi-compiled kernel after
      :func:`use_compiled_stepper`) followed by a flat memmove of C
      doubles/int64s — no tuple allocation and no PyObject comparisons on
      the far-future lane.

    Two packed-layout variants were benchmarked before settling here: day
    buckets as parallel arrays with searchsorted insertion throughout ran
    at 0.8-1.0x the heap (``array`` re-boxes every element it yields, so
    per-op column reads cost more in Python glue than the tuples they
    avoid), and packing keys on *every* push cost ~90ns/op (the packed
    key exceeds 2**56, so each one allocates a fresh multi-digit PyLong).
    The lazy bulk sort over plain records is what clears the bar (see
    ``benchmarks/BENCH_kernel.json``): it moves the ordering work from
    per-entry Python-level probes into one C ``list.sort`` per day, and
    keys are packed only at the overflow columns, which the steady-state
    serving profile rarely touches.

    The calendar also runs denser than the tuple backend — days grow at
    :data:`GROWTH` entries/day and the width estimator targets
    ~:data:`WIDTH_GAPS` entries/day — because bulk-sorting a fuller
    bucket amortises better than sweeping many near-empty days, and the
    wider year (~2x the grow threshold's horizon) keeps steady-state
    pushes out of the overflow columns' O(n) insert path.

    Priorities must fit the packed key — ``0 <= priority < 128`` (the
    kernel only uses URGENT=0/NORMAL=1) and ``eid < 2**56`` (the
    environment's insertion counter cannot realistically exceed it) — and
    the bound is enforced on every push so an entry cannot slip into a day
    bucket unpacked and later fail at a rebuild's overflow spill.
    """

    __slots__ = (
        "_buckets", "_sorted_day", "_num_days", "_width", "_year_start",
        "_year_end", "_cursor", "_ovf_times", "_ovf_keys", "_ovf_events",
        "_size", "_grow_at", "_shrink_at", "_insert_pos",
    )

    MIN_DAYS = 16
    MAX_DAYS = 1 << 20
    #: Entries-per-day occupancy that triggers a grow rebuild (the tuple
    #: calendar grows at 2): denser days amortise the bulk sort better.
    GROWTH = 4
    #: Width estimator target in mean head gaps per day.  Keeping
    #: ``WIDTH_GAPS >= 2 * GROWTH`` makes the year span ~2x the horizon
    #: implied by the grow threshold, so steady-state pushes land in day
    #: buckets rather than flooding the overflow columns.
    WIDTH_GAPS = 8.0

    def __init__(self, initial_time: float = 0.0, num_days: int = MIN_DAYS,
                 day_width: float = 1.0):
        self._ovf_times = array("d")
        self._ovf_keys = array("q")
        self._ovf_events: List[Any] = []
        self._size = 0
        self._insert_pos = _INSERT_POS
        self._reset_calendar(num_days, day_width, float(initial_time))

    # -- geometry --------------------------------------------------------
    def _reset_calendar(self, num_days: int, width: float, year_start: float) -> None:
        self._buckets: List[List[Entry]] = [[] for _ in range(num_days)]
        self._sorted_day = -1
        self._num_days = num_days
        self._width = width
        self._year_start = year_start
        self._year_end = year_start + num_days * width
        self._cursor = 0
        self._grow_at = (
            self.GROWTH * num_days if num_days < self.MAX_DAYS else (1 << 62)
        )
        self._shrink_at = (
            (self.GROWTH * num_days) // 4 if num_days > self.MIN_DAYS else -1
        )

    # -- contract --------------------------------------------------------
    def push(self, time: float, priority: int, eid: int, event: Any) -> None:
        if (priority >> 7) or (eid >> _EID_BITS):
            # Negative values arithmetic-shift to -1 (truthy), so this one
            # guard also rejects priority < 0 / eid < 0.
            raise ValueError(
                f"packed queue requires 0 <= priority < 128 and eid < 2**56 "
                f"(got priority={priority}, eid={eid})"
            )
        if time < self._year_end:
            day = int((time - self._year_start) / self._width)
            if day >= self._num_days:
                day = self._num_days - 1
            elif day < 0:
                day = 0
            if day < self._cursor:
                self._cursor = day
            bucket = self._buckets[day]
            if day == self._sorted_day:
                # Pushing into the day being serviced.  An append would
                # break its descending order and force an O(k log k)
                # re-sort on the very next pop — with a narrow pending
                # window that is *every* pop, the dominant cost at small
                # sizes.  A binary insert keeps the order for ~log2(k)
                # comparisons plus one C-level memmove.  (Checked against
                # _sorted_day, not the cursor: a backwards push can rewind
                # the cursor below the still-sorted day.)
                entry = (time, priority, eid, event)
                if not bucket or entry < bucket[-1]:
                    # New minimum (or empty day): descending append is O(1).
                    bucket.append(entry)
                else:
                    lo, hi = 0, len(bucket)
                    while lo < hi:
                        mid = (lo + hi) >> 1
                        if bucket[mid] < entry:  # descending: first smaller
                            hi = mid
                        else:
                            lo = mid + 1
                    bucket.insert(lo, entry)
            else:
                bucket.append((time, priority, eid, event))
        else:
            # Only the far-future lane packs the key: the packed value
            # exceeds 2**56 so building it allocates a multi-digit PyLong,
            # which would cost ~90ns on every bucketed push for nothing.
            key = (priority << _EID_BITS) | eid
            ovf_times = self._ovf_times
            pos = self._insert_pos(ovf_times, self._ovf_keys, time, key)
            ovf_times.insert(pos, time)
            self._ovf_keys.insert(pos, key)
            self._ovf_events.insert(pos, event)
        self._size += 1
        if self._size > self._grow_at:
            self._rebuild(self._num_days * 2)

    def pop(self) -> Entry:
        day = self._min_day()
        if day is None:
            raise IndexError("pop from an empty PackedCalendarEventQueue")
        if day < 0:
            time = self._ovf_times.pop(0)
            key = self._ovf_keys.pop(0)
            event = self._ovf_events.pop(0)
            entry = (time, key >> _EID_BITS, key & _EID_MASK, event)
        else:
            entry = self._buckets[day].pop()
        self._size -= 1
        if self._size < self._shrink_at:
            self._rebuild(self._num_days // 2)
        return entry

    def pop2(self) -> Tuple[float, Any]:
        # Environment.step's inner loop: the day sweep is inlined (no
        # _min_day call frame) and only (time, event) are materialised.
        # Fast path first: repeated pops from the day already sorted and
        # under the cursor skip the sweep entirely.
        cursor = self._cursor
        if cursor == self._sorted_day:
            bucket = self._buckets[cursor]
            if bucket:
                entry = bucket.pop()
                size = self._size - 1
                self._size = size
                if size < self._shrink_at:
                    self._rebuild(self._num_days // 2)
                return entry[0], entry[3]
        while True:
            buckets = self._buckets
            num_days = self._num_days
            cursor = self._cursor
            while cursor < num_days:
                bucket = buckets[cursor]
                if bucket:
                    self._cursor = cursor
                    break
                cursor += 1
            else:
                self._cursor = num_days
                if not self._ovf_times:
                    raise IndexError(
                        "pop from an empty PackedCalendarEventQueue"
                    )
                if self._ovf_times[0] == inf:
                    time = self._ovf_times.pop(0)
                    self._ovf_keys.pop(0)
                    event = self._ovf_events.pop(0)
                    self._size -= 1
                    if self._size < self._shrink_at:
                        self._rebuild(self._num_days // 2)
                    return time, event
                self._advance_year()
                continue
            if cursor != self._sorted_day:
                if len(bucket) > 1:
                    # One bulk C sort per day generation; descending so
                    # every service afterwards is an O(1) end-pop.
                    bucket.sort(reverse=True)
                self._sorted_day = cursor
            entry = bucket.pop()
            self._size -= 1
            if self._size < self._shrink_at:
                self._rebuild(self._num_days // 2)
            return entry[0], entry[3]

    def peek(self) -> Optional[Entry]:
        day = self._min_day()
        if day is None:
            return None
        if day < 0:
            key = self._ovf_keys[0]
            return (
                self._ovf_times[0],
                key >> _EID_BITS,
                key & _EID_MASK,
                self._ovf_events[0],
            )
        return self._buckets[day][-1]

    def __len__(self) -> int:
        return self._size

    # -- internals -------------------------------------------------------
    def _min_day(self) -> Optional[int]:
        """Index of the day holding the minimum entry (sorted descending,
        minimum at the end), ``-1`` when the minimum is an inf tie served
        from the overflow columns, or ``None`` when empty.  Rolls the year
        as needed."""
        while True:
            buckets = self._buckets
            num_days = self._num_days
            cursor = self._cursor
            while cursor < num_days:
                bucket = buckets[cursor]
                if bucket:
                    self._cursor = cursor
                    if cursor != self._sorted_day:
                        if len(bucket) > 1:
                            bucket.sort(reverse=True)
                        self._sorted_day = cursor
                    return cursor
                cursor += 1
            self._cursor = num_days
            if not self._ovf_times:
                return None
            if self._ovf_times[0] == inf:
                return -1
            self._advance_year()

    def _advance_year(self) -> None:
        """All days are empty: jump the year to the next overflow entry."""
        ovf_times = self._ovf_times
        year_start = ovf_times[0]  # finite: inf is handled by the caller
        year_end = year_start + self._num_days * self._width
        if year_end <= year_start:
            # Same ulp-scale guard as CalendarEventQueue._advance_year.
            year_end = nextafter(year_start, inf)
        self._year_start = year_start
        self._year_end = year_end
        self._cursor = 0
        self._sorted_day = -1
        # First index with time >= year_end: splits [fires this year | later].
        split = bisect_left(ovf_times, year_end)
        due_times = ovf_times[:split]
        due_keys = self._ovf_keys[:split]
        due_events = self._ovf_events[:split]
        del ovf_times[:split]
        del self._ovf_keys[:split]
        del self._ovf_events[:split]
        width = self._width
        start = year_start
        last = self._num_days - 1
        buckets = self._buckets
        for i in range(len(due_times)):
            time = due_times[i]
            day = int((time - start) / width)
            if day > last:
                day = last
            elif day < 0:
                day = 0
            key = due_keys[i]
            buckets[day].append(
                (time, key >> _EID_BITS, key & _EID_MASK, due_events[i])
            )

    def _rebuild(self, num_days: int) -> None:
        """Re-bucket everything into ``num_days`` days of re-estimated width.

        Same ordering argument as :meth:`CalendarEventQueue._rebuild`,
        except bucket contents carry no order here (they are re-sorted
        lazily at service), so only the overflow columns need sorting.
        """
        width = self._estimate_width()  # O(sample): reads the leading buckets
        entries = [entry for bucket in self._buckets for entry in bucket]
        ovf_times = self._ovf_times
        # Buckets are unsorted between services, so the year anchor is a
        # computed minimum, not the first record.  Every bucketed time is
        # below year_end and every overflow time at or above it, so the
        # bucket minimum (when any) is the global one.
        if entries:
            year_start = min(entry[0] for entry in entries)
        elif ovf_times:
            year_start = ovf_times[0]
        else:
            year_start = self._year_start
        if year_start == inf:
            # Same inf-anchor guard as the tuple calendar.
            year_start = self._year_start
        ovf_keys = self._ovf_keys
        ovf_events = self._ovf_events
        for i in range(len(ovf_times)):
            key = ovf_keys[i]
            entries.append(
                (ovf_times[i], key >> _EID_BITS, key & _EID_MASK, ovf_events[i])
            )
        self._reset_calendar(num_days, width, year_start)
        self._ovf_times = array("d")
        self._ovf_keys = array("q")
        self._ovf_events = []
        year_end = self._year_end
        start = self._year_start
        day_width = self._width
        last = num_days - 1
        buckets = self._buckets
        spill: List[Entry] = []
        for entry in entries:
            time = entry[0]
            if time < year_end:
                day = int((time - start) / day_width)
                if day > last:
                    day = last
                elif day < 0:
                    day = 0
                buckets[day].append(entry)
            else:
                spill.append(entry)
        if spill:
            # (time, priority, eid) triples are unique, so the record sort
            # never compares payloads, and packing the sorted triples
            # yields columns in exactly searchsorted order.
            spill.sort()
            ovf_times = self._ovf_times
            ovf_keys = self._ovf_keys
            ovf_events = self._ovf_events
            for time, priority, eid, event in spill:
                ovf_times.append(time)
                ovf_keys.append((priority << _EID_BITS) | eid)
                ovf_events.append(event)

    def _head_times(self, sample: int) -> List[float]:
        """Times of (up to ~) the next ``sample`` entries, sorted ascending.

        Day buckets are unsorted between services, but the partition
        invariant still bounds every entry of day *i* below every entry of
        day *i+1*, so collecting bucket-by-bucket and sorting once yields
        the true head.  Work is O(sample log sample) on O(sample + one
        bucket) entries touched — never the full pending set.
        """
        times: List[float] = []
        for day in range(self._cursor, self._num_days):
            bucket = self._buckets[day]
            if bucket:
                times.extend(entry[0] for entry in bucket)
                if len(times) >= sample:
                    break
        times.sort()
        del times[sample:]
        if len(times) < sample:
            times.extend(self._ovf_times[: sample - len(times)])
        return times

    def _estimate_width(self, sample: int = 64) -> float:
        """See :meth:`CalendarEventQueue._estimate_width` — same estimator,
        with the denser :data:`WIDTH_GAPS` target (see the class docstring
        for why the packed year runs wider)."""
        return _width_from_gaps(
            self._head_times(sample), self._width, factor=self.WIDTH_GAPS
        )


class AdaptiveEventQueue(EventQueue):
    """The ``"auto"`` backend: a heap that turns packed at serving scale.

    Starts as :class:`HeapEventQueue` (zero tuning, best constants on small
    pending sets) and migrates — once, irreversibly — to
    :class:`PackedCalendarEventQueue` when the pending count first exceeds
    ``AUTO_PACKED_THRESHOLD``.  The migration sorts the heap (same total
    order the heap would have popped) and replays it into the packed
    calendar, so the pop sequence across the switch is unchanged and runs
    stay bit-identical to every other backend.

    No migration back: pending counts oscillate around any threshold, and
    the packed queue already degrades gracefully when the set shrinks
    (occupancy rebuilds walk it back down to MIN_DAYS).
    """

    __slots__ = ("_backend", "_migrated", "_threshold")

    def __init__(self, initial_time: float = 0.0,
                 threshold: int = AUTO_PACKED_THRESHOLD):
        self._backend: EventQueue = HeapEventQueue(initial_time)
        self._migrated = False
        self._threshold = threshold

    @property
    def backend(self) -> EventQueue:
        """The currently active underlying queue (heap, then packed)."""
        return self._backend

    def push(self, time: float, priority: int, eid: int, event: Any) -> None:
        backend = self._backend
        backend.push(time, priority, eid, event)
        if not self._migrated and len(backend) > self._threshold:
            self._migrate()

    def _migrate(self) -> None:
        entries = sorted(self._backend._heap)  # type: ignore[attr-defined]
        packed = PackedCalendarEventQueue()
        for time, priority, eid, event in entries:
            packed.push(time, priority, eid, event)
        self._backend = packed
        self._migrated = True

    def pop(self) -> Entry:
        return self._backend.pop()

    def pop2(self) -> Tuple[float, Any]:
        return self._backend.pop2()

    def peek(self) -> Optional[Entry]:
        return self._backend.peek()

    def __len__(self) -> int:
        return len(self._backend)


def make_event_queue(kind: str = "heap", initial_time: float = 0.0) -> EventQueue:
    """Build the pending-event structure named ``kind``.

    ``"auto"`` builds the adaptive queue (heap below
    :data:`AUTO_PACKED_THRESHOLD` pending entries, packed calendar above).
    Unknown names raise :class:`ValueError`.
    """
    if kind == "heap":
        return HeapEventQueue(initial_time)
    if kind == "calendar":
        return CalendarEventQueue(initial_time)
    if kind == "packed":
        return PackedCalendarEventQueue(initial_time)
    if kind == "auto":
        return AdaptiveEventQueue(initial_time)
    raise ValueError(
        f"Unknown event queue kind {kind!r} (expected one of {', '.join(QUEUE_KINDS)})"
    )


# Opt-in activation of the compiled stepper at import time (one compile per
# process, cached).  Kept env-var-gated because sweep workers are separate
# processes: an unconditional build would recompile in every worker.
if _cstepper.requested():  # pragma: no cover - exercised via subprocess test
    use_compiled_stepper(True)
