"""Pluggable pending-event structures for the simulation kernel.

Every event the :class:`~repro.sim.Environment` schedules (outside the
zero-delay URGENT fast lane) goes through one of these queues.  The contract
is a strict total order over ``(time, priority, eid)`` — ``eid`` is the
environment's monotonically increasing insertion counter, so no two entries
ever compare equal — which means *any* correct implementation pops the exact
same sequence and simulation results are bit-identical across backends.

Two implementations are provided:

* :class:`HeapEventQueue` — the original binary heap (``heapq``).  O(log n)
  push/pop, no tuning, the default.
* :class:`CalendarEventQueue` — a Brown-style calendar queue [Brown 1988,
  "Calendar Queues: A Fast O(1) Priority Queue Implementation for the
  Simulation Event Set Problem"].  Events within the current "year" are
  bucketed into days by firing time; far-future events (beyond the year)
  wait in a sorted overflow list until the year rolls forward.  The number
  of days and the day width auto-resize on occupancy so the typical bucket
  holds O(1) events, making push/pop amortised O(1) when event times are
  reasonably clustered — the NORMAL-timeout churn profile of the serving
  benchmarks.

Select a backend with ``Environment(queue="heap"|"calendar"|"auto")`` or, at
the deployment layer, ``DeploymentConfig(kernel_queue=...)``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from math import inf, nextafter
from typing import Any, List, Optional, Tuple

__all__ = [
    "QUEUE_KINDS",
    "EventQueue",
    "HeapEventQueue",
    "CalendarEventQueue",
    "make_event_queue",
]

#: One pending entry: ``(time, priority, eid, event)``.
Entry = Tuple[float, int, int, Any]

#: Recognised ``Environment(queue=...)`` / ``make_event_queue`` names.
QUEUE_KINDS = ("heap", "calendar", "auto")

#: What ``"auto"`` resolves to.  The calendar queue matches the heap on the
#: fig3-style serving benchmarks (see ``benchmarks/BENCH_kernel.json``) and
#: wins on NORMAL-timeout-heavy schedules, but the heap has no tuning
#: parameters at all, so it stays the kernel's pick until the calendar queue
#: shows a robust win across *all* committed scenarios.
AUTO_KIND = "heap"


class EventQueue:
    """Contract shared by all pending-event structures.

    Implementations must pop entries in ascending ``(time, priority, eid)``
    order.  ``pop`` raises :class:`IndexError` when empty (mirroring
    ``heapq.heappop``); ``peek`` returns ``None`` instead.
    """

    __slots__ = ()

    def push(self, time: float, priority: int, eid: int, event: Any) -> None:
        raise NotImplementedError

    def pop(self) -> Entry:
        raise NotImplementedError

    def peek(self) -> Optional[Entry]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HeapEventQueue(EventQueue):
    """The classic binary-heap event set (``heapq``): O(log n), tuning-free."""

    __slots__ = ("_heap",)

    def __init__(self, initial_time: float = 0.0):
        self._heap: List[Entry] = []

    def push(self, time: float, priority: int, eid: int, event: Any) -> None:
        heapq.heappush(self._heap, (time, priority, eid, event))

    def pop(self) -> Entry:
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Entry]:
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


class CalendarEventQueue(EventQueue):
    """A calendar queue: buckets ("days") covering a rolling "year".

    Entries whose time falls inside the current year go into the day bucket
    ``floor((time - year_start) / day_width) % ...`` — here without the
    modulo wrap of the classic formulation: each day maps to exactly one
    bucket and the year advances as a whole, with everything beyond
    ``year_end`` waiting in a single sorted overflow list.  That keeps the
    invariants simple enough to prove the bit-identical-ordering contract:

    * day buckets partition ``[year_start, year_end)`` into ascending,
      non-overlapping intervals, so the first non-empty bucket holds the
      global minimum;
    * each bucket (and the overflow list) is kept sorted by the full
      ``(time, priority, eid)`` key via ``insort``, so ties break exactly
      like the heap's tuple comparison;
    * overflow entries all fire at or after ``year_end``, i.e. strictly
      after every bucketed entry.

    The calendar resizes on occupancy — double the day count when entries
    outnumber days 2:1, halve when they fall below 1:2 — re-estimating the
    day width from the mean gap between upcoming events so a day keeps
    holding O(1) entries as the schedule's density drifts.
    """

    __slots__ = (
        "_buckets", "_num_days", "_width", "_year_start", "_year_end",
        "_cursor", "_overflow", "_size", "_grow_at", "_shrink_at",
    )

    MIN_DAYS = 16
    MAX_DAYS = 1 << 20

    def __init__(self, initial_time: float = 0.0, num_days: int = MIN_DAYS,
                 day_width: float = 1.0):
        self._overflow: List[Entry] = []
        self._size = 0
        self._reset_calendar(num_days, day_width, float(initial_time))

    # -- geometry --------------------------------------------------------
    def _reset_calendar(self, num_days: int, width: float, year_start: float) -> None:
        self._buckets: List[List[Entry]] = [[] for _ in range(num_days)]
        self._num_days = num_days
        self._width = width
        self._year_start = year_start
        self._year_end = year_start + num_days * width
        self._cursor = 0
        # Occupancy thresholds, precomputed so the hot paths compare ints.
        self._grow_at = 2 * num_days if num_days < self.MAX_DAYS else (1 << 62)
        self._shrink_at = num_days // 2 if num_days > self.MIN_DAYS else -1

    def _day_of(self, time: float) -> int:
        day = int((time - self._year_start) / self._width)
        # Clamp both ends: float roundoff at the year boundary can land
        # exactly on num_days, and a rebuild/year-roll anchors year_start at
        # the *next pending* event, so a later push may fire before it.
        # Clamped entries extend the first/last day's interval; insort still
        # orders them correctly relative to their bucket mates.
        if day < 0:
            return 0
        return day if day < self._num_days else self._num_days - 1

    # -- contract --------------------------------------------------------
    def push(self, time: float, priority: int, eid: int, event: Any) -> None:
        entry = (time, priority, eid, event)
        if time >= self._year_end:
            insort(self._overflow, entry)
        else:
            # Inlined _day_of: this is the kernel's hottest push path.
            day = int((time - self._year_start) / self._width)
            if day >= self._num_days:
                day = self._num_days - 1
            elif day < 0:
                day = 0
            if day < self._cursor:
                # A push into an already-swept day (the cursor skips empty
                # days eagerly); rewind so the sweep revisits it.
                self._cursor = day
            insort(self._buckets[day], entry)
        self._size += 1
        if self._size > self._grow_at:
            self._rebuild(self._num_days * 2)

    def pop(self) -> Entry:
        bucket = self._first_bucket()
        if bucket is None:
            raise IndexError("pop from an empty CalendarEventQueue")
        entry = bucket.pop(0)
        self._size -= 1
        if self._size < self._shrink_at:
            self._rebuild(self._num_days // 2)
        return entry

    def peek(self) -> Optional[Entry]:
        bucket = self._first_bucket()
        return bucket[0] if bucket is not None else None

    def __len__(self) -> int:
        return self._size

    # -- internals -------------------------------------------------------
    def _first_bucket(self) -> Optional[List[Entry]]:
        """The bucket holding the minimum entry, rolling the year as needed."""
        while True:
            buckets = self._buckets
            num_days = self._num_days
            cursor = self._cursor
            while cursor < num_days:
                bucket = buckets[cursor]
                if bucket:
                    self._cursor = cursor
                    return bucket
                cursor += 1
            self._cursor = num_days
            if not self._overflow:
                return None
            if self._overflow[0][0] == inf:
                # Everything left is an inf tie (nothing can fire later, so
                # the year cannot advance past it).  The overflow list is
                # itself sorted by the full key and new inf pushes insort
                # into it, so serve it directly as the final bucket.
                return self._overflow
            self._advance_year()

    def _advance_year(self) -> None:
        """All days are empty: jump the year to the next overflow entry."""
        year_start = self._overflow[0][0]  # finite: inf is handled by the caller
        year_end = year_start + self._num_days * self._width
        if year_end <= year_start:
            # At extreme magnitudes the whole year is below one ulp of the
            # next event time (e.g. timeout_at(1e18) with day width 1.0) and
            # the sum rounds back to year_start.  Force the minimal strict
            # advance so the leading entries always leave the overflow list;
            # the queue degrades to sorted-list behaviour instead of
            # spinning forever.
            year_end = nextafter(year_start, inf)
        self._year_start = year_start
        self._year_end = year_end
        self._cursor = 0
        # (year_end,) compares below any real entry at that time, so this
        # splits the overflow into [fires this year | fires later].
        split = bisect_left(self._overflow, (year_end,))
        due, self._overflow = self._overflow[:split], self._overflow[split:]
        buckets = self._buckets
        for entry in due:  # sorted, and _day_of is monotonic: appends stay sorted
            buckets[self._day_of(entry[0])].append(entry)

    def _rebuild(self, num_days: int) -> None:
        """Re-bucket everything into ``num_days`` days of re-estimated width.

        Bucket concatenation is globally sorted (the partition argument from
        the class docstring) and all overflow entries fire later still, so
        the rebuilt calendar preserves the total order with plain appends.
        """
        entries = [entry for bucket in self._buckets for entry in bucket]
        entries.extend(self._overflow)
        width = self._estimate_width(entries)
        year_start = entries[0][0] if entries else self._year_start
        if year_start == inf:
            # Never anchor the year at inf (day arithmetic would overflow on
            # the next finite push); keep the previous finite anchor and let
            # the inf entries wait in the overflow list.
            year_start = self._year_start
        self._reset_calendar(num_days, width, year_start)
        self._overflow = []
        year_end = self._year_end
        buckets = self._buckets
        overflow = self._overflow
        for entry in entries:
            if entry[0] < year_end:
                buckets[self._day_of(entry[0])].append(entry)
            else:
                overflow.append(entry)

    def _estimate_width(self, entries: List[Entry], sample: int = 64) -> float:
        """Day width ~ 2x the mean gap between the next ``sample`` events.

        Sampling the *head* of the schedule keeps far-future outliers (which
        belong in the overflow list anyway) from inflating the width.
        """
        times = [entry[0] for entry in entries[:sample]]
        # Drop ties and non-finite gaps (an inf event time must not produce
        # an inf day width — the year would swallow the overflow list).
        gaps = [b - a for a, b in zip(times, times[1:]) if b > a and b - a < inf]
        if not gaps:
            return self._width  # ties/empty/inf-only: keep the current estimate
        width = 2.0 * sum(gaps) / len(gaps)
        return width if width > 0.0 else self._width


def make_event_queue(kind: str = "heap", initial_time: float = 0.0) -> EventQueue:
    """Build the pending-event structure named ``kind``.

    ``"auto"`` lets the kernel pick (currently the heap — see
    :data:`AUTO_KIND`).  Unknown names raise :class:`ValueError`.
    """
    if kind == "auto":
        kind = AUTO_KIND
    if kind == "heap":
        return HeapEventQueue(initial_time)
    if kind == "calendar":
        return CalendarEventQueue(initial_time)
    raise ValueError(
        f"Unknown event queue kind {kind!r} (expected one of {', '.join(QUEUE_KINDS)})"
    )
