"""The web chat interface backend (§4.7).

A FastAPI-behind-Nginx service in the real deployment; here, a thin layer
that authenticates the user through the same Globus-Auth-like flow, persists
chat sessions, lets users pick among *running* models, supports multi-model
comparison, and forwards every turn (full history included) to the Inference
Gateway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..common import IdGenerator, NotFoundError, ValidationError
from ..core.client import FIRSTClient
from ..serving import InferenceRequest, RequestKind
from ..sim import Environment, Event
from .sessions import ChatSession, SessionStore

__all__ = ["WebUIConfig", "WebUIServer"]


@dataclass
class WebUIConfig:
    """Behaviour of the WebUI backend."""

    #: Extra per-turn processing in the WebUI backend (render, persist, stream).
    backend_overhead_s: float = 0.08
    #: Default generation length of a chat turn.
    default_turn_output_tokens: int = 150
    system_prompt_tokens: int = 30


class WebUIServer:
    """Chat front-end bound to one FIRST deployment."""

    def __init__(self, deployment, config: Optional[WebUIConfig] = None):
        self.deployment = deployment
        self.env: Environment = deployment.env
        self.config = config or WebUIConfig()
        self.sessions = SessionStore()
        self._ids = IdGenerator()
        self._clients: Dict[str, FIRSTClient] = {}
        self.turns_served = 0

    # -- authentication / model listing ---------------------------------------------
    def _client_for(self, user: str) -> FIRSTClient:
        if user not in self._clients:
            self._clients[user] = self.deployment.client(user)
        return self._clients[user]

    def available_models(self) -> List[str]:
        """Models currently *running* (the dropdown menu only shows hot models)."""
        return sorted(
            {j["model"] for j in self.deployment.gateway.jobs() if j["state"] == "running"}
        )

    def all_models(self) -> List[str]:
        return sorted(m["id"] for m in self.deployment.gateway.list_models()["data"])

    # -- session management ---------------------------------------------------------------
    def new_session(self, user: str, model: str) -> ChatSession:
        if model not in self.all_models():
            raise ValidationError(f"Model {model} is not hosted by the service")
        session = self.sessions.create(
            self._ids.next("session"), user=user, model=model, created_at=self.env.now
        )
        session.system_prompt_tokens = self.config.system_prompt_tokens
        return session

    # -- chat turns --------------------------------------------------------------------------
    def chat_turn(self, session_id: str, user_message: str,
                  output_tokens: Optional[int] = None,
                  user_message_tokens: Optional[int] = None) -> Event:
        """Send one chat turn; returns an event with the assistant's reply text."""
        done = self.env.event()
        self.env.process(self._chat_turn(session_id, user_message, output_tokens,
                                         user_message_tokens, done))
        return done

    def chat_turn_blocking(self, session_id: str, user_message: str,
                           output_tokens: Optional[int] = None) -> str:
        ev = self.chat_turn(session_id, user_message, output_tokens)
        return self.env.run(until=ev)

    def _chat_turn(self, session_id: str, user_message: str,
                   output_tokens: Optional[int], user_message_tokens: Optional[int],
                   done: Event):
        try:
            session = self.sessions.get(session_id)
        except KeyError as exc:
            done.fail(NotFoundError(str(exc)))
            done.defuse()
            return
        client = self._client_for(session.user)
        session.add_user_message(user_message, tokens=user_message_tokens)

        if self.config.backend_overhead_s > 0:
            yield self.env.timeout(self.config.backend_overhead_s)

        request = InferenceRequest(
            request_id=self._ids.next("webui-req"),
            model=session.model,
            prompt_tokens=session.history_tokens,
            max_output_tokens=output_tokens or self.config.default_turn_output_tokens,
            kind=RequestKind.CHAT_COMPLETION,
            user=session.user,
            prompt_text=user_message,
            stream=True,
            metadata={"session": session.session_id, "turn": session.turns},
        )
        try:
            result = yield client.submit(request)
        except Exception as exc:  # noqa: BLE001 - surface to the UI layer
            if not done.triggered:
                done.fail(exc)
                done.defuse()
            return
        reply = result.text or f"[{session.model}] (response of {result.output_tokens} tokens)"
        session.add_assistant_message(reply, tokens=result.output_tokens)
        self.turns_served += 1
        if not done.triggered:
            done.succeed(reply)

    # -- multi-model comparison (the multi-column layout) ---------------------------------------
    def compare(self, user: str, models: List[str], user_message: str,
                output_tokens: Optional[int] = None) -> Dict[str, str]:
        """Send the same prompt to several models side by side (blocking)."""
        sessions = [self.new_session(user, model) for model in models]
        events = [self.chat_turn(s.session_id, user_message, output_tokens) for s in sessions]
        self.env.run(until=self.env.all_of(events))
        return {s.model: ev.value for s, ev in zip(sessions, events)}
