"""Web chat interface (Open-WebUI-like) and its concurrency benchmark (§4.7, Table 1)."""

from .benchmark import WebUIBenchResult, WebUIConcurrencyBenchmark
from .server import WebUIConfig, WebUIServer
from .sessions import ChatMessage, ChatSession, SessionStore

__all__ = [
    "ChatMessage",
    "ChatSession",
    "SessionStore",
    "WebUIServer",
    "WebUIConfig",
    "WebUIBenchResult",
    "WebUIConcurrencyBenchmark",
]
