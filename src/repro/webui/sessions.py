"""Chat-session model for the web interface (§4.7).

The Open-WebUI-based interface keeps per-user chat histories in its own
backend database and forwards every turn (with the full conversation so far)
to the Gateway API.  Because histories accumulate, later turns carry longer
prompts — which is the mechanism behind the throughput differences between
short and long WebUI benchmark runs (Table 1): a longer run reaches deeper
turns, whose growing prefill cost lowers completed-requests-per-second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..serving import estimate_tokens

__all__ = ["ChatMessage", "ChatSession", "SessionStore"]


@dataclass
class ChatMessage:
    role: str
    content: str
    tokens: int

    @classmethod
    def from_text(cls, role: str, content: str) -> "ChatMessage":
        return cls(role=role, content=content, tokens=estimate_tokens(content))


@dataclass
class ChatSession:
    """One user's conversation with one model."""

    session_id: str
    user: str
    model: str
    system_prompt_tokens: int = 30
    messages: List[ChatMessage] = field(default_factory=list)
    created_at: float = 0.0

    @property
    def turns(self) -> int:
        return sum(1 for m in self.messages if m.role == "user")

    @property
    def history_tokens(self) -> int:
        """Prompt tokens contributed by the accumulated history."""
        return self.system_prompt_tokens + sum(m.tokens for m in self.messages)

    def add_user_message(self, content: str, tokens: Optional[int] = None) -> ChatMessage:
        message = ChatMessage(role="user", content=content,
                              tokens=tokens or estimate_tokens(content))
        self.messages.append(message)
        return message

    def add_assistant_message(self, content: str, tokens: int) -> ChatMessage:
        message = ChatMessage(role="assistant", content=content, tokens=tokens)
        self.messages.append(message)
        return message

    def as_openai_messages(self) -> List[dict]:
        return [{"role": m.role, "content": m.content} for m in self.messages]


class SessionStore:
    """The WebUI backend's PostgreSQL-backed session persistence."""

    def __init__(self):
        self._sessions: Dict[str, ChatSession] = {}

    def create(self, session_id: str, user: str, model: str, created_at: float = 0.0) -> ChatSession:
        if session_id in self._sessions:
            raise ValueError(f"Session {session_id} already exists")
        session = ChatSession(session_id=session_id, user=user, model=model,
                              created_at=created_at)
        self._sessions[session_id] = session
        return session

    def get(self, session_id: str) -> ChatSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"Unknown session: {session_id}") from None

    def sessions_for(self, user: str) -> List[ChatSession]:
        return [s for s in self._sessions.values() if s.user == user]

    def __len__(self) -> int:
        return len(self._sessions)
