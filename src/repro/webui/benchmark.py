"""WebUI concurrency benchmark (Table 1 of the paper).

"Benchmarks were performed using simulated concurrent WebUI sessions
targeting three models ... both token and request throughput scale nearly
linearly from 50 to 500 concurrent sessions, with diminishing returns beyond
this point ... Shorter runs (60 sec) consistently yielded higher throughput
than longer runs (120 sec)."

Sessions here are closed-loop: each session sends a turn, waits for the
response, then immediately sends the next turn.  Chat histories grow turn by
turn, so longer runs spend more of their time on long-prompt turns — the
mechanism behind the 60 s vs 120 s gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common import RandomSource
from .server import WebUIServer

__all__ = ["WebUIBenchResult", "WebUIConcurrencyBenchmark"]


@dataclass
class WebUIBenchResult:
    """One (model, concurrency, duration) cell of Table 1."""

    model: str
    concurrency: int
    duration_s: float
    completed_requests: int
    output_tokens: int

    @property
    def request_throughput(self) -> float:
        return self.completed_requests / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def token_throughput(self) -> float:
        return self.output_tokens / self.duration_s if self.duration_s > 0 else 0.0

    def row(self) -> str:
        return (
            f"{self.model:<36s} conc={self.concurrency:<4d} {self.duration_s:>5.0f}s  "
            f"TP/s={self.token_throughput:>8.2f}  Req/s={self.request_throughput:>6.2f}"
        )

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "concurrency": self.concurrency,
            "duration_s": self.duration_s,
            "tokens_per_s": round(self.token_throughput, 2),
            "requests_per_s": round(self.request_throughput, 2),
        }


class WebUIConcurrencyBenchmark:
    """Drives N concurrent closed-loop chat sessions for a fixed duration."""

    def __init__(self, webui: WebUIServer, user: str = "benchmark@anl.gov",
                 mean_user_message_tokens: float = 45.0,
                 turn_output_tokens: int = 140, seed: int = 5):
        self.webui = webui
        self.env = webui.env
        self.user = user
        self.mean_user_message_tokens = mean_user_message_tokens
        self.turn_output_tokens = turn_output_tokens
        self.seed = seed

    def run(self, model: str, concurrency: int, duration_s: float) -> WebUIBenchResult:
        """Run one benchmark cell (blocking: advances the simulation)."""
        random = RandomSource(seed=self.seed)
        counters = {"completed": 0, "tokens": 0}
        start = self.env.now
        deadline = start + duration_s
        stoppers = []

        def session_loop(env, session_id):
            while env.now < deadline:
                msg_tokens = max(5, int(random.lognormal(self.mean_user_message_tokens, 0.5)))
                ev = self.webui.chat_turn(
                    session_id,
                    user_message="please continue the analysis",
                    output_tokens=self.turn_output_tokens,
                    user_message_tokens=msg_tokens,
                )
                try:
                    yield ev
                except Exception:  # noqa: BLE001 - a failed turn ends the session
                    return
                if env.now <= deadline:
                    counters["completed"] += 1
                    counters["tokens"] += self.turn_output_tokens

        for i in range(concurrency):
            session = self.webui.new_session(self.user, model)
            stoppers.append(self.env.process(session_loop(self.env, session.session_id)))

        # Advance to the deadline, then let in-flight turns finish (they do not
        # count toward the window, mirroring a fixed-duration load test).
        self.env.run(until=deadline)
        return WebUIBenchResult(
            model=model,
            concurrency=concurrency,
            duration_s=duration_s,
            completed_requests=counters["completed"],
            output_tokens=counters["tokens"],
        )
