"""Performance metrics used throughout the reproduction's evaluation."""

from .collector import MetricsCollector, RequestRecord
from .summary import BenchmarkSummary, percentile, summarize

__all__ = [
    "RequestRecord",
    "MetricsCollector",
    "BenchmarkSummary",
    "summarize",
    "percentile",
]
