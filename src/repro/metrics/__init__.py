"""Performance metrics used throughout the reproduction's evaluation."""

from .collector import MetricsCollector, RequestRecord
from .mergeable import DEFAULT_REL_ERR, LogBucketHistogram, MergeableSummary
from .summary import BenchmarkSummary, percentile, summarize

__all__ = [
    "RequestRecord",
    "MetricsCollector",
    "BenchmarkSummary",
    "summarize",
    "percentile",
    "LogBucketHistogram",
    "MergeableSummary",
    "DEFAULT_REL_ERR",
]
