"""Per-request records and the metrics collector."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RequestRecord", "MetricsCollector"]


@dataclass
class RequestRecord:
    """Client-side view of one request (what the benchmark tool measures)."""

    request_id: str
    model: str
    send_time: float
    completion_time: Optional[float] = None
    prompt_tokens: int = 0
    output_tokens: int = 0
    success: bool = False
    error: Optional[str] = None
    first_token_time: Optional[float] = None
    #: Per-token arrival times for streaming requests (gateway-observed).
    token_times: Optional[List[float]] = None
    metadata: Dict = field(default_factory=dict)

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end latency: send to complete response (the paper's metric)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.send_time

    @property
    def time_to_first_token_s(self) -> Optional[float]:
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.send_time

    @property
    def inter_token_latencies_s(self) -> List[float]:
        """Gaps between consecutive token arrivals (ITL; streaming only)."""
        if not self.token_times or len(self.token_times) < 2:
            return []
        times = self.token_times
        return [b - a for a, b in zip(times, times[1:])]


class MetricsCollector:
    """Accumulates request records during a benchmark or service run."""

    def __init__(self):
        self.records: List[RequestRecord] = []

    def record(self, record: RequestRecord) -> None:
        self.records.append(record)

    def extend(self, records: List[RequestRecord]) -> None:
        self.records.extend(records)

    @property
    def successful(self) -> List[RequestRecord]:
        return [r for r in self.records if r.success]

    @property
    def failed(self) -> List[RequestRecord]:
        return [r for r in self.records if not r.success]

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
