"""Mergeable metrics for sharded simulation runs.

A sweep shards its work across worker processes; every shard returns a
:class:`MergeableSummary` and the parent reduces them to one summary.  The
reduction must be *associative and commutative up to a canonical order* so
merged results are bit-identical no matter how many workers ran the sweep
or in which order shards completed:

* counters (requests, successes, token totals) are integer sums;
* latency/TTFT/ITL distributions are :class:`LogBucketHistogram`\\ s —
  fixed logarithmic buckets whose counts add, so any merge order yields the
  same bucket table and therefore the same quantile estimates;
* float accumulators (latency sums, durations) are exact per shard; the
  sweep runner merges shards in cell order (not completion order), which
  pins the float-addition order and keeps merged sums bit-identical across
  worker counts.

Quantile guarantee: for any value ``v`` with ``v > min_value``, the bucket
midpoint the histogram reports is within ``rel_err`` *relative* error of
``v``.  Consequently ``quantile(q)`` is within ``rel_err`` of the exact
inverted-CDF quantile of the pooled raw samples (the q-th order statistic),
independent of how the samples were sharded.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .collector import MetricsCollector, RequestRecord
from .summary import BenchmarkSummary

__all__ = ["LogBucketHistogram", "MergeableSummary", "DEFAULT_REL_ERR"]

#: Default relative-error bound of the log-bucket histograms (1%).
DEFAULT_REL_ERR = 0.01


class LogBucketHistogram:
    """Fixed-log-bucket histogram with a guaranteed relative-error bound.

    Values are mapped to buckets of geometrically increasing width
    (DDSketch-style): with ``gamma = (1 + rel_err) / (1 - rel_err)``, value
    ``v`` lands in bucket ``ceil(log_gamma(v))`` and is reported back as the
    bucket midpoint ``2 * gamma^i / (gamma + 1)``, which is within
    ``rel_err`` relative error of every value in the bucket.  Values at or
    below ``min_value`` (including zero) share an exact zero bucket.

    The bucket table is a plain ``{index: count}`` dict, so merging two
    histograms is a commutative, associative count addition — shard results
    reduce to the same table regardless of merge order.
    """

    __slots__ = ("rel_err", "min_value", "zero_count", "buckets", "_gamma", "_log_gamma")

    def __init__(self, rel_err: float = DEFAULT_REL_ERR, min_value: float = 1e-9,
                 buckets: Optional[Dict[int, int]] = None, zero_count: int = 0):
        if not 0.0 < rel_err < 1.0:
            raise ValueError("rel_err must be in (0, 1)")
        if min_value <= 0:
            raise ValueError("min_value must be > 0")
        self.rel_err = rel_err
        self.min_value = min_value
        self.zero_count = zero_count
        self.buckets: Dict[int, int] = dict(buckets) if buckets else {}
        self._gamma = (1.0 + rel_err) / (1.0 - rel_err)
        self._log_gamma = math.log(self._gamma)

    # -- accumulation ------------------------------------------------------
    def add(self, value: float) -> None:
        if value != value or value < 0:
            raise ValueError(f"histogram values must be finite and >= 0, got {value!r}")
        if value <= self.min_value:
            self.zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # -- reduction ---------------------------------------------------------
    def merge(self, other: "LogBucketHistogram") -> "LogBucketHistogram":
        """Return a new histogram holding both operands' counts."""
        if (other.rel_err, other.min_value) != (self.rel_err, self.min_value):
            raise ValueError(
                f"cannot merge histograms with different bucket layouts: "
                f"(rel_err={self.rel_err}, min_value={self.min_value}) vs "
                f"(rel_err={other.rel_err}, min_value={other.min_value})"
            )
        merged = LogBucketHistogram(self.rel_err, self.min_value,
                                    buckets=self.buckets,
                                    zero_count=self.zero_count + other.zero_count)
        for index, count in other.buckets.items():
            merged.buckets[index] = merged.buckets.get(index, 0) + count
        return merged

    # -- queries -----------------------------------------------------------
    @property
    def count(self) -> int:
        return self.zero_count + sum(self.buckets.values())

    def bucket_value(self, index: int) -> float:
        """Midpoint estimate for bucket ``index`` (relative error <= rel_err)."""
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """Inverted-CDF quantile estimate (0 <= q <= 1); 0.0 when empty.

        Selects the bucket holding the ``ceil(q * count)``-th smallest value
        (the exact inverted-CDF order statistic) and returns its midpoint,
        which is within ``rel_err`` relative error of that sample.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        total = self.count
        if total == 0:
            return 0.0
        target = max(1, math.ceil(q * total))
        if target <= self.zero_count:
            return 0.0
        cumulative = self.zero_count
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                return self.bucket_value(index)
        return self.bucket_value(max(self.buckets))

    def percentile(self, p: float) -> float:
        return self.quantile(p / 100.0)

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "rel_err": self.rel_err,
            "min_value": self.min_value,
            "zero_count": self.zero_count,
            "buckets": {str(i): c for i, c in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogBucketHistogram":
        return cls(rel_err=data["rel_err"], min_value=data["min_value"],
                   zero_count=data["zero_count"],
                   buckets={int(i): c for i, c in data["buckets"].items()})

    def __eq__(self, other) -> bool:
        if not isinstance(other, LogBucketHistogram):
            return NotImplemented
        return (self.rel_err, self.min_value, self.zero_count, self.buckets) == \
               (other.rel_err, other.min_value, other.zero_count, other.buckets)

    def __repr__(self) -> str:
        return (f"LogBucketHistogram(rel_err={self.rel_err}, count={self.count}, "
                f"buckets={len(self.buckets)})")

    # Pickle support without __dict__ (slots + derived constants).
    def __getstate__(self):
        return (self.rel_err, self.min_value, self.zero_count, self.buckets)

    def __setstate__(self, state):
        rel_err, min_value, zero_count, buckets = state
        self.__init__(rel_err, min_value, buckets=buckets, zero_count=zero_count)


@dataclass
class MergeableSummary:
    """Shard-reducible benchmark metrics.

    One shard's counters plus log-bucket latency/TTFT/ITL histograms.
    ``merge`` adds counters and bucket tables and keeps the *maximum*
    duration — merged shards are modelled as having run concurrently, so
    merged throughput is ``totals / max(duration)``.
    """

    label: str = ""
    num_requests: int = 0
    num_successful: int = 0
    total_output_tokens: int = 0
    total_prompt_tokens: int = 0
    #: Span of the longest merged shard (shards run concurrently).
    duration_s: float = 0.0
    #: Exact sums supporting exact means alongside approximate quantiles.
    latency_sum_s: float = 0.0
    latency: LogBucketHistogram = field(default_factory=LogBucketHistogram)
    ttft: LogBucketHistogram = field(default_factory=LogBucketHistogram)
    itl: LogBucketHistogram = field(default_factory=LogBucketHistogram)
    #: Extra additive counters (int/float) carried through merges.
    counters: Dict[str, float] = field(default_factory=dict)
    #: How many shard summaries were reduced into this one.
    num_shards: int = 1

    # -- construction ------------------------------------------------------
    @classmethod
    def from_records(cls, collector_or_records, label: str = "",
                     duration_s: Optional[float] = None,
                     rel_err: float = DEFAULT_REL_ERR) -> "MergeableSummary":
        """Build one shard's summary from request records (cf. ``summarize``)."""
        if isinstance(collector_or_records, MetricsCollector):
            records: List[RequestRecord] = list(collector_or_records.records)
        else:
            records = list(collector_or_records)
        successful = [r for r in records if r.success and r.completion_time is not None]
        if duration_s is None:
            if successful:
                start = min(r.send_time for r in records)
                end = max(r.completion_time for r in successful)
                duration_s = max(1e-9, end - start)
            else:
                duration_s = 0.0
        summary = cls(
            label=label,
            num_requests=len(records),
            num_successful=len(successful),
            total_output_tokens=sum(r.output_tokens for r in successful),
            total_prompt_tokens=sum(r.prompt_tokens for r in successful),
            duration_s=duration_s,
            latency=LogBucketHistogram(rel_err),
            ttft=LogBucketHistogram(rel_err),
            itl=LogBucketHistogram(rel_err),
        )
        for record in successful:
            summary.latency_sum_s += record.latency_s
            summary.latency.add(record.latency_s)
            if record.time_to_first_token_s is not None:
                summary.ttft.add(record.time_to_first_token_s)
            for gap in record.inter_token_latencies_s:
                summary.itl.add(gap)
        return summary

    # -- reduction ---------------------------------------------------------
    def merge(self, other: "MergeableSummary") -> "MergeableSummary":
        """Reduce two shard summaries into one (associative)."""
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        return MergeableSummary(
            label=self.label or other.label,
            num_requests=self.num_requests + other.num_requests,
            num_successful=self.num_successful + other.num_successful,
            total_output_tokens=self.total_output_tokens + other.total_output_tokens,
            total_prompt_tokens=self.total_prompt_tokens + other.total_prompt_tokens,
            duration_s=max(self.duration_s, other.duration_s),
            latency_sum_s=self.latency_sum_s + other.latency_sum_s,
            latency=self.latency.merge(other.latency),
            ttft=self.ttft.merge(other.ttft),
            itl=self.itl.merge(other.itl),
            counters=counters,
            num_shards=self.num_shards + other.num_shards,
        )

    @staticmethod
    def merge_all(summaries: Sequence["MergeableSummary"],
                  label: Optional[str] = None) -> "MergeableSummary":
        """Left-fold ``summaries`` in the given (canonical) order."""
        if not summaries:
            return MergeableSummary(label=label or "")
        merged = summaries[0]
        for summary in summaries[1:]:
            merged = merged.merge(summary)
        if label is not None:
            merged.label = label
        return merged

    # -- queries -----------------------------------------------------------
    @property
    def request_throughput(self) -> float:
        return self.num_successful / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def output_token_throughput(self) -> float:
        return self.total_output_tokens / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def mean_latency_s(self) -> float:
        return self.latency_sum_s / self.num_successful if self.num_successful else 0.0

    def to_benchmark_summary(self) -> BenchmarkSummary:
        """Project to the paper-vocabulary summary (quantiles are histogram
        estimates within the histogram's ``rel_err``; the mean is exact)."""
        return BenchmarkSummary(
            label=self.label,
            num_requests=self.num_requests,
            num_successful=self.num_successful,
            duration_s=self.duration_s,
            request_throughput=self.request_throughput,
            output_token_throughput=self.output_token_throughput,
            median_latency_s=self.latency.quantile(0.5),
            mean_latency_s=self.mean_latency_s,
            p99_latency_s=self.latency.quantile(0.99),
            median_ttft_s=self.ttft.quantile(0.5) if self.ttft.count else None,
            median_itl_s=self.itl.quantile(0.5) if self.itl.count else None,
            total_output_tokens=self.total_output_tokens,
            total_prompt_tokens=self.total_prompt_tokens,
            extras={"merged_shards": self.num_shards,
                    "quantile_rel_err": self.latency.rel_err,
                    **{k: round(v, 6) if isinstance(v, float) else v
                       for k, v in sorted(self.counters.items())}},
        )

    # -- serialisation / identity -----------------------------------------
    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "num_requests": self.num_requests,
            "num_successful": self.num_successful,
            "total_output_tokens": self.total_output_tokens,
            "total_prompt_tokens": self.total_prompt_tokens,
            "duration_s": self.duration_s,
            "latency_sum_s": self.latency_sum_s,
            "latency": self.latency.to_dict(),
            "ttft": self.ttft.to_dict(),
            "itl": self.itl.to_dict(),
            "counters": dict(sorted(self.counters.items())),
            "num_shards": self.num_shards,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MergeableSummary":
        return cls(
            label=data["label"],
            num_requests=data["num_requests"],
            num_successful=data["num_successful"],
            total_output_tokens=data["total_output_tokens"],
            total_prompt_tokens=data["total_prompt_tokens"],
            duration_s=data["duration_s"],
            latency_sum_s=data["latency_sum_s"],
            latency=LogBucketHistogram.from_dict(data["latency"]),
            ttft=LogBucketHistogram.from_dict(data["ttft"]),
            itl=LogBucketHistogram.from_dict(data["itl"]),
            counters=dict(data["counters"]),
            num_shards=data["num_shards"],
        )

    def fingerprint(self) -> str:
        """SHA-256 over the full-precision canonical *measurement* state.

        The label is excluded — fingerprints compare what was measured, not
        what it was called, so e.g. a heap-queue and a calendar-queue cell of
        the same scenario fingerprint equal iff their simulated results are
        bit-identical.  Floats serialise via their shortest round-trip form,
        so two summaries fingerprint equal iff bit-identical — the check the
        sweep benchmarks run across worker counts.
        """
        state = self.to_dict()
        del state["label"]
        canonical = json.dumps(state, sort_keys=True, default=repr,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def row(self) -> str:
        return self.to_benchmark_summary().row()
