"""Benchmark summaries: the four metrics the paper reports (§5.1).

* Request throughput (req/s)
* Output token throughput (tok/s)
* Median end-to-end latency (s)
* Benchmark duration (s)

plus additional percentiles useful for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

try:  # Summaries fall back to pure-Python percentile math without numpy.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from .collector import MetricsCollector, RequestRecord

__all__ = ["percentile", "BenchmarkSummary", "summarize"]


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile helper that tolerates empty input (returns 0.0).

    Matches ``np.percentile``'s default linear interpolation; the pure-Python
    branch exists for numpy-free deployments of the sim core.
    """
    if not values:
        return 0.0
    if np is not None:
        return float(np.percentile(np.asarray(values, dtype=float), q))
    data = sorted(float(v) for v in values)
    rank = (len(data) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    return data[lo] + (data[hi] - data[lo]) * (rank - lo)


@dataclass
class BenchmarkSummary:
    """Summary of one benchmark run, in the paper's vocabulary."""

    label: str
    num_requests: int
    num_successful: int
    duration_s: float
    request_throughput: float
    output_token_throughput: float
    median_latency_s: float
    mean_latency_s: float
    p99_latency_s: float
    median_ttft_s: Optional[float] = None
    #: Median inter-token latency (streaming runs only).
    median_itl_s: Optional[float] = None
    total_output_tokens: int = 0
    total_prompt_tokens: int = 0
    extras: Dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "num_requests": self.num_requests,
            "num_successful": self.num_successful,
            "duration_s": round(self.duration_s, 2),
            "request_throughput_req_s": round(self.request_throughput, 2),
            "output_token_throughput_tok_s": round(self.output_token_throughput, 1),
            "median_latency_s": round(self.median_latency_s, 2),
            "mean_latency_s": round(self.mean_latency_s, 2),
            "p99_latency_s": round(self.p99_latency_s, 2),
            "median_ttft_s": None if self.median_ttft_s is None else round(self.median_ttft_s, 2),
            "median_itl_s": None if self.median_itl_s is None else round(self.median_itl_s, 4),
            "total_output_tokens": self.total_output_tokens,
            "total_prompt_tokens": self.total_prompt_tokens,
            **self.extras,
        }

    def row(self) -> str:
        """One printable table row (used by the benchmark harnesses)."""
        return (
            f"{self.label:<28s} {self.request_throughput:>7.2f} req/s "
            f"{self.output_token_throughput:>8.1f} tok/s "
            f"median={self.median_latency_s:>7.2f}s duration={self.duration_s:>8.1f}s"
        )


def summarize(
    collector_or_records,
    label: str = "",
    duration_s: Optional[float] = None,
) -> BenchmarkSummary:
    """Summarise a set of request records.

    ``duration_s`` defaults to the span from the first send to the last
    completion, which matches how the vLLM benchmark-serving script reports
    benchmark duration.
    """
    if isinstance(collector_or_records, MetricsCollector):
        records: List[RequestRecord] = list(collector_or_records.records)
    else:
        records = list(collector_or_records)

    successful = [r for r in records if r.success and r.completion_time is not None]
    latencies = [r.latency_s for r in successful]
    ttfts = [r.time_to_first_token_s for r in successful if r.time_to_first_token_s is not None]
    itls = [itl for r in successful for itl in r.inter_token_latencies_s]
    output_tokens = sum(r.output_tokens for r in successful)
    prompt_tokens = sum(r.prompt_tokens for r in successful)

    if duration_s is None:
        if successful:
            start = min(r.send_time for r in records) if records else 0.0
            end = max(r.completion_time for r in successful)
            duration_s = max(1e-9, end - start)
        else:
            duration_s = 0.0

    request_throughput = len(successful) / duration_s if duration_s > 0 else 0.0
    token_throughput = output_tokens / duration_s if duration_s > 0 else 0.0

    return BenchmarkSummary(
        label=label,
        num_requests=len(records),
        num_successful=len(successful),
        duration_s=duration_s,
        request_throughput=request_throughput,
        output_token_throughput=token_throughput,
        median_latency_s=percentile(latencies, 50),
        mean_latency_s=sum(latencies) / len(latencies) if latencies else 0.0,
        p99_latency_s=percentile(latencies, 99),
        median_ttft_s=percentile(ttfts, 50) if ttfts else None,
        median_itl_s=percentile(itls, 50) if itls else None,
        total_output_tokens=output_tokens,
        total_prompt_tokens=prompt_tokens,
    )
