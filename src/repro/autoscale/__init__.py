"""Autoscaling control plane.

A standalone subsystem that closes the loop between observed demand and
per-model replica counts:

* :class:`MetricsFeed` samples a model's instance pool (queue depth, busy
  fraction, KV pressure, cold-start estimate) and, when attached, the
  gateway's recent TTFT/ITL/latency medians;
* :class:`ScalingPolicy` implementations map samples to replica targets —
  :class:`QueueDepthPolicy` (the legacy endpoint heuristic, extracted),
  :class:`TargetUtilizationPolicy` (PID-style with cooldown/hysteresis),
  :class:`ScheduledPolicy` (cron-like capacity plans),
  :class:`PredictivePolicy` (EWMA/Holt arrival forecast that pre-warms one
  cold start ahead of ramps) and :class:`FederationScalingPolicy`
  (cross-cluster capacity shifting over the placement plane's shared
  :class:`~repro.placement.TopologyView`);
* :class:`ReplicaPool` actuates targets (launch / drain-before-terminate)
  against the endpoint's instance pool;
* :class:`AutoscaleController` runs the periodic control loops.

Configured per model through :class:`AutoscaleConfig` on
``ModelDeploymentSpec`` / ``ModelHostingConfig``.
"""

from .config import AutoscaleConfig
from .controller import AutoscaleController
from .metrics import MetricsFeed, MetricsSample
from .policy import (
    POLICIES,
    FederationScalingPolicy,
    PredictivePolicy,
    QueueDepthPolicy,
    ScalingDecision,
    ScalingPolicy,
    ScheduledPolicy,
    TargetUtilizationPolicy,
    make_policy,
    register_policy,
)
from .pool import ReplicaPool

__all__ = [
    "AutoscaleConfig",
    "AutoscaleController",
    "MetricsFeed",
    "MetricsSample",
    "ReplicaPool",
    "ScalingDecision",
    "ScalingPolicy",
    "QueueDepthPolicy",
    "TargetUtilizationPolicy",
    "ScheduledPolicy",
    "PredictivePolicy",
    "FederationScalingPolicy",
    "POLICIES",
    "register_policy",
    "make_policy",
]
