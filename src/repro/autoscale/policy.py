"""Pluggable scaling policies.

Every policy maps a :class:`~repro.autoscale.metrics.MetricsSample` to a
desired *total* replica count (ready + starting).  Two entry points:

* :meth:`ScalingPolicy.reactive` — demand-driven, called synchronously the
  moment a task starts waiting, so a cold pool still boots its first
  instance without waiting for a controller tick.  The base implementation
  only bootstraps; :class:`QueueDepthPolicy` reproduces the legacy
  endpoint heuristic here exactly.
* :meth:`ScalingPolicy.decide` — periodic, called by the
  :class:`~repro.autoscale.controller.AutoscaleController` every interval;
  this is where scale-down, utilization targets, capacity plans and
  forecast-driven pre-warming live.

Policies are registered by name in :data:`POLICIES`; deployments select one
via ``AutoscaleConfig.policy``.  :func:`register_policy` lets downstream
code plug in custom implementations without touching this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from ..common import ConfigurationError
from .config import AutoscaleConfig
from .metrics import MetricsSample

__all__ = [
    "ScalingDecision",
    "ScalingPolicy",
    "QueueDepthPolicy",
    "TargetUtilizationPolicy",
    "ScheduledPolicy",
    "PredictivePolicy",
    "FederationScalingPolicy",
    "POLICIES",
    "register_policy",
    "make_policy",
]


@dataclass
class ScalingDecision:
    """Outcome of one periodic policy evaluation."""

    target: int
    reason: str = ""


class ScalingPolicy:
    """Base class: bootstrap-only reactive path, no periodic action."""

    name = "base"

    def reactive(self, sample: MetricsSample) -> int:
        """Desired total replicas when demand arrives (urgent path)."""
        if sample.total_instances == 0 and sample.waiting_tasks > 0:
            return 1
        return sample.total_instances

    def decide(self, sample: MetricsSample) -> ScalingDecision:
        """Desired total replicas at a controller tick."""
        raise NotImplementedError

    @staticmethod
    def _absolute(sample: MetricsSample, needed: int) -> int:
        """Express an absolute desired instance count in the actuator's frame.

        The actuator diffs targets against ``sample.total_instances``, which
        double-counts a loading instance (legacy accounting); comparing an
        absolute count against it directly would mis-drain during launches.
        """
        return sample.total_instances + (needed - sample.provisioned)


class QueueDepthPolicy(ScalingPolicy):
    """The legacy endpoint heuristic, extracted and generalised.

    Scale up one instance whenever more than ``queue_per_instance`` tasks
    wait per ready instance; optionally (periodic path only) drain one
    instance when the pool has been quiet for ``scale_down_hold_s``.
    """

    name = "queue_depth"

    def __init__(self, queue_per_instance: int = 8, scale_down: bool = False,
                 scale_down_hold_s: float = 60.0):
        if queue_per_instance <= 0:
            raise ValueError("queue_per_instance must be > 0")
        self.queue_per_instance = queue_per_instance
        self.scale_down = scale_down
        self.scale_down_hold_s = scale_down_hold_s
        self._quiet_since: Optional[float] = None

    def reactive(self, sample: MetricsSample) -> int:
        total = sample.total_instances
        if total == 0:
            return 1 if sample.waiting_tasks > 0 else 0
        if sample.ready_instances == 0:
            return total  # first instance still starting; don't pile on yet
        saturated = (
            sample.waiting_tasks
            > sample.ready_instances * self.queue_per_instance
        )
        return total + 1 if saturated else total

    def decide(self, sample: MetricsSample) -> ScalingDecision:
        target = self.reactive(sample)
        if target > sample.total_instances:
            self._quiet_since = None
            return ScalingDecision(target, "queue depth over threshold")
        if not self.scale_down:
            return ScalingDecision(target)
        # Quiet enough that one fewer instance would absorb every in-flight
        # task?  Require it to hold for the full hold window first.
        fits_on_fewer = (
            sample.ready_instances > 1
            and sample.waiting_tasks == 0
            and sample.in_flight_tasks
            <= (sample.ready_instances - 1) * sample.slots_per_instance
        )
        if not fits_on_fewer:
            self._quiet_since = None
            return ScalingDecision(target)
        if self._quiet_since is None:
            self._quiet_since = sample.time
        if sample.time - self._quiet_since >= self.scale_down_hold_s:
            self._quiet_since = None
            return ScalingDecision(target - 1, "quiet pool, draining one")
        return ScalingDecision(target)


class TargetUtilizationPolicy(ScalingPolicy):
    """PID-style control towards a busy-fraction setpoint.

    Proportional control is ratio-based (desired ≈ ready * busy / target,
    the Kubernetes-HPA form) with an optional integral term; a deadband
    around the setpoint plus independent up/down cooldowns provide the
    hysteresis that keeps the loop from flapping on noisy workloads.
    """

    name = "target_utilization"

    def __init__(self, target: float = 0.7, deadband: float = 0.15,
                 ki: float = 0.0, cooldown_up_s: float = 30.0,
                 cooldown_down_s: float = 120.0):
        if not 0.0 < target <= 1.0:
            raise ValueError("target must be in (0, 1]")
        self.target = target
        self.deadband = deadband
        self.ki = ki
        self.cooldown_up_s = cooldown_up_s
        self.cooldown_down_s = cooldown_down_s
        self._integral = 0.0
        self._last_time: Optional[float] = None
        self._last_action_time = -float("inf")

    def decide(self, sample: MetricsSample) -> ScalingDecision:
        total = sample.total_instances
        ready = sample.ready_instances
        now = sample.time
        dt = 0.0 if self._last_time is None else now - self._last_time
        self._last_time = now

        if ready == 0:
            # Nothing observable yet: bootstrap on demand, otherwise hold.
            return ScalingDecision(max(total, self.reactive(sample)))

        busy = sample.busy_fraction
        if self.ki > 0.0 and dt > 0.0:
            # Anti-windup clamp: the integral may nudge by at most one
            # instance's worth of utilisation in either direction.
            self._integral += self.ki * (busy - self.target) * dt
            self._integral = max(-1.0, min(1.0, self._integral))
        desired_f = ready * (busy / self.target) + self._integral

        low = ready * (1.0 - self.deadband)
        high = ready * (1.0 + self.deadband)
        if desired_f > high and now - self._last_action_time >= self.cooldown_up_s:
            self._last_action_time = now
            self._integral = 0.0
            return ScalingDecision(
                max(total + 1, math.ceil(desired_f)),
                f"busy {busy:.2f} above target {self.target:.2f}",
            )
        if (desired_f < low and total > 1
                and now - self._last_action_time >= self.cooldown_down_s):
            self._last_action_time = now
            self._integral = 0.0
            return ScalingDecision(
                max(1, min(total - 1, math.ceil(desired_f))),
                f"busy {busy:.2f} below target {self.target:.2f}",
            )
        return ScalingDecision(total)


class ScheduledPolicy(ScalingPolicy):
    """Cron-like capacity plan: replicas follow a periodic schedule.

    ``epoch_s`` anchors the plan's t=0 (e.g. the moment traffic starts or
    local midnight); offsets are taken modulo ``period_s`` from there.
    """

    name = "scheduled"

    def __init__(self, schedule, period_s: float = 86400.0, epoch_s: float = 0.0):
        if not schedule:
            raise ValueError("ScheduledPolicy needs a non-empty schedule")
        if period_s <= 0:
            raise ValueError("period_s must be > 0")
        self.schedule = sorted((float(t), int(n)) for t, n in schedule)
        if self.schedule[0][0] > 0.0:
            # Before the first entry the plan wraps from the last one.
            self.schedule.insert(0, (0.0, self.schedule[-1][1]))
        self.period_s = period_s
        self.epoch_s = epoch_s

    def planned_at(self, time: float) -> int:
        offset = (time - self.epoch_s) % self.period_s
        planned = self.schedule[0][1]
        for start, replicas in self.schedule:
            if start <= offset:
                planned = replicas
            else:
                break
        return planned

    def decide(self, sample: MetricsSample) -> ScalingDecision:
        planned = self.planned_at(sample.time)
        if planned != sample.provisioned:
            return ScalingDecision(self._absolute(sample, planned), "capacity plan")
        return ScalingDecision(sample.total_instances)


class PredictivePolicy(ScalingPolicy):
    """Holt (EWMA level + trend) forecast of the arrival rate.

    The forecast horizon defaults to the pool's observed cold-start time, so
    capacity for a ramp is requested one cold start *before* the ramp
    arrives — amortising exactly the cost ``bench_cold_start.py`` measures.
    Scale-down follows the same forecast but only after the lower estimate
    has held for ``scale_down_hold_s``.

    Optional **seasonality**: ``seasonal_periods`` adds bucketed additive
    seasonal indices (Holt-Winters style) per cycle — e.g. ``(86400,
    604800)`` models a daily *and* a weekly rhythm.  The Holt level/trend
    then track the *deseasonalized* rate, and forecasts add back the
    seasonal component **at the forecast target time** — so the policy
    pre-warms ahead of a recurring peak even when the instantaneous trend
    is still flat.
    """

    name = "predictive"

    def __init__(self, alpha: float = 0.35, beta: float = 0.15,
                 lead_s: Optional[float] = None,
                 instance_rps: Optional[float] = None,
                 headroom: float = 0.15,
                 queue_per_instance: int = 8,
                 scale_down_hold_s: float = 60.0,
                 seasonal_periods: Optional[Sequence[float]] = None,
                 seasonal_gamma: float = 0.3,
                 seasonal_buckets=24):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        if seasonal_periods and any(p <= 0 for p in seasonal_periods):
            raise ValueError("seasonal_periods must be > 0")
        if not 0.0 <= seasonal_gamma <= 1.0:
            raise ValueError("seasonal_gamma must be in [0, 1]")
        self.alpha = alpha
        self.beta = beta
        self.lead_s = lead_s
        self.instance_rps = instance_rps
        self.headroom = headroom
        self.queue_per_instance = queue_per_instance
        self.scale_down_hold_s = scale_down_hold_s
        self.seasonal_periods = tuple(seasonal_periods or ())
        self.seasonal_gamma = seasonal_gamma
        # An int broadcasts to every period; a sequence gives each period
        # its own resolution (a weekly term usually needs finer buckets
        # than 24, or whole days of pattern share one index).
        if isinstance(seasonal_buckets, int):
            buckets = (seasonal_buckets,) * len(self.seasonal_periods)
        else:
            buckets = tuple(seasonal_buckets)
            if len(buckets) != len(self.seasonal_periods):
                raise ValueError(
                    "seasonal_buckets must match seasonal_periods in length")
        if (isinstance(seasonal_buckets, int) and seasonal_buckets < 1) \
                or any(b < 1 for b in buckets):
            raise ValueError("seasonal_buckets must be >= 1")
        #: Normalized per-period bucket counts.
        self.seasonal_buckets = buckets
        #: Additive seasonal indices: one bucket array per period.
        self._seasonal = [[0.0] * count for count in buckets]
        self._level: Optional[float] = None
        self._trend = 0.0
        self._last_time: Optional[float] = None
        self._rps_estimate = 1.0
        self._low_since: Optional[float] = None

    # -- forecasting ---------------------------------------------------------
    def _bucket(self, index: int, t: float) -> int:
        period = self.seasonal_periods[index]
        count = self.seasonal_buckets[index]
        return int((t % period) / period * count) % count

    def seasonal_at(self, t: float) -> float:
        """Total additive seasonal component at absolute time ``t``."""
        return sum(self._seasonal[index][self._bucket(index, t)]
                   for index in range(len(self.seasonal_periods)))

    def _observe(self, sample: MetricsSample) -> float:
        """Holt update with the (deseasonalized) arrival rate; returns dt."""
        seasonal = self.seasonal_at(sample.time)
        rate = sample.arrival_rate_rps - seasonal
        dt = 0.0 if self._last_time is None else sample.time - self._last_time
        self._last_time = sample.time
        if self._level is None:
            self._level = rate
        else:
            previous = self._level
            self._level = self.alpha * rate + (1.0 - self.alpha) * (self._level + self._trend)
            self._trend = self.beta * (self._level - previous) + (1.0 - self.beta) * self._trend
        # Each period's index absorbs the residual the level and the *other*
        # periods leave unexplained (multi-seasonal Holt-Winters, additive).
        for index in range(len(self.seasonal_periods)):
            bucket = self._bucket(index, sample.time)
            others = seasonal - self._seasonal[index][bucket]
            residual = sample.arrival_rate_rps - self._level - others
            self._seasonal[index][bucket] = (
                (1.0 - self.seasonal_gamma) * self._seasonal[index][bucket]
                + self.seasonal_gamma * residual)
        return dt

    def forecast_rate(self, lead_s: float, dt: float) -> float:
        """Arrival-rate forecast ``lead_s`` ahead (per-sample trend units).

        With seasonal periods configured, the seasonal component is
        evaluated at the *target* time — this is what lets the policy see a
        daily or weekly peak coming while the current trend is flat.
        """
        if self._level is None:
            return 0.0
        steps = lead_s / dt if dt > 0 else 0.0
        seasonal = self.seasonal_at((self._last_time or 0.0) + lead_s) \
            if self.seasonal_periods else 0.0
        return max(0.0, self._level + self._trend * steps + seasonal)

    def _per_instance_rps(self, sample: MetricsSample) -> float:
        if self.instance_rps is not None:
            return self.instance_rps
        # Online estimate: a saturated pool's completion rate per ready
        # instance is a lower bound on sustainable per-instance throughput.
        if sample.ready_instances > 0 and sample.waiting_tasks > 0:
            observed = sample.completion_rate_rps / sample.ready_instances
            self._rps_estimate = max(self._rps_estimate, observed)
        return self._rps_estimate

    # -- decisions ------------------------------------------------------------
    def decide(self, sample: MetricsSample) -> ScalingDecision:
        dt = self._observe(sample)
        total = sample.total_instances
        current = sample.provisioned
        if current == 0 and sample.waiting_tasks == 0 and sample.arrival_rate_rps == 0.0:
            return ScalingDecision(total)

        lead = self.lead_s if self.lead_s is not None else sample.cold_start_estimate_s
        forecast = self.forecast_rate(lead, dt)
        rps = self._per_instance_rps(sample)
        needed = math.ceil(forecast * (1.0 + self.headroom) / max(rps, 1e-9))
        needed = max(needed, 1 if (sample.waiting_tasks or sample.in_flight_tasks
                                   or forecast > 0) else 0)
        # Backlog guard: a forecast can lag a flash crowd, so never plan
        # below what the queue-depth heuristic would demand right now.
        if (sample.ready_instances > 0 and sample.waiting_tasks
                > sample.ready_instances * self.queue_per_instance):
            needed = max(needed, current + 1)

        if needed > current:
            self._low_since = None
            return ScalingDecision(
                self._absolute(sample, needed),
                f"forecast {forecast:.2f} req/s over {lead:.0f}s lead",
            )
        if needed < current:
            if self._low_since is None:
                self._low_since = sample.time
            if sample.time - self._low_since >= self.scale_down_hold_s:
                self._low_since = None
                return ScalingDecision(
                    self._absolute(sample, needed),
                    f"forecast {forecast:.2f} req/s allows scale-down",
                )
            return ScalingDecision(total)
        self._low_since = None
        return ScalingDecision(total)


class FederationScalingPolicy(QueueDepthPolicy):
    """Cross-cluster scaling over the shared placement-plane view.

    Locally the policy *is* a :class:`QueueDepthPolicy` (reactive scale-up
    at ``queue_per_instance`` waiting tasks per ready instance, hold-based
    quiet scale-down — both inherited).
    Once bound to a :class:`~repro.placement.TopologyView` (the view calls
    :meth:`bind_topology` when the owning endpoint joins the federation) it
    additionally *shifts* replica targets across clusters on sustained queue
    imbalance:

    * **recipient (pre-warm)** — a sibling cluster's queue per ready
      instance has exceeded the local scale-up threshold for
      ``imbalance_hold_s`` while this cluster has no spare ready capacity
      to absorb the overflow: launch one replica *before* the router sheds
      traffic here, hiding the cold start behind the sibling's backlog;
    * **donor (give-back)** — this cluster has been fully idle for
      ``scale_down_hold_s`` while no sibling needs it hot
      (every sibling's pressure is below ``queue_per_instance /
      imbalance_ratio``): drain one replica (drain-before-terminate via the
      standard actuator path), returning the shifted capacity.

    Without a bound view the policy degrades to plain queue-depth behaviour
    with hold-based quiet scale-down, so it is safe as a per-model default
    on single-cluster deployments.
    """

    name = "federated"

    def __init__(self, queue_per_instance: int = 8,
                 scale_down_hold_s: float = 60.0,
                 imbalance_ratio: float = 2.0,
                 imbalance_hold_s: float = 45.0):
        super().__init__(queue_per_instance=queue_per_instance, scale_down=True,
                         scale_down_hold_s=scale_down_hold_s)
        if imbalance_ratio < 1.0:
            raise ValueError("imbalance_ratio must be >= 1")
        self.imbalance_ratio = imbalance_ratio
        self.imbalance_hold_s = imbalance_hold_s
        self.view = None
        self.endpoint_id: Optional[str] = None
        self.cluster: Optional[str] = None
        self.model: Optional[str] = None
        self._receive_since: Optional[float] = None
        self._idle_since: Optional[float] = None
        #: Audit counters for benchmarks/tests.
        self.shifts_in = 0
        self.shifts_out = 0

    def bind_topology(self, view, endpoint_id: str, cluster: str, model: str) -> None:
        """Attach the shared fleet view (called by ``TopologyView``)."""
        self.view = view
        self.endpoint_id = endpoint_id
        self.cluster = cluster
        self.model = model

    def unbind_topology(self) -> None:
        """Detach from the fleet view (the endpoint left the federation):
        no more cross-cluster shifting, plain queue-depth behaviour stays."""
        self.view = None
        self.endpoint_id = None
        self.cluster = None
        self.model = None
        self._receive_since = None
        self._idle_since = None

    # -- local heuristics -----------------------------------------------------
    def _sibling_signals(self):
        if self.view is None or self.model is None:
            return []
        return [
            sig for entry, sig in self.view.candidates(self.model)
            if sig is not None and entry.endpoint_id != self.endpoint_id
        ]

    @staticmethod
    def _pressure(sig) -> float:
        """A sibling's queue pressure, tolerant of cold pools."""
        if sig.ready_instances <= 0:
            return float(sig.waiting_tasks)
        return sig.queue_per_ready

    # -- decisions -------------------------------------------------------------
    def decide(self, sample: MetricsSample) -> ScalingDecision:
        now = sample.time
        total = sample.total_instances

        # Local saturation wins: behave exactly like the queue-depth heuristic.
        target = self.reactive(sample)
        if target > total:
            self._receive_since = self._idle_since = self._quiet_since = None
            return ScalingDecision(target, "queue depth over threshold")

        siblings = self._sibling_signals()
        hot = max((self._pressure(s) for s in siblings), default=0.0)
        my_pressure = (
            sample.waiting_tasks / sample.ready_instances
            if sample.ready_instances > 0 else float(sample.waiting_tasks)
        )

        # Recipient (pre-warm): a sibling is drowning while this cluster has
        # no spare ready capacity for the overflow — bring a replica up
        # *before* the router starts shedding here, so the cold start hides
        # behind the sibling's backlog instead of adding to a request's wait.
        spare_slots = (
            sample.ready_instances * sample.slots_per_instance
            - sample.in_flight_tasks - sample.waiting_tasks
        )
        receiving = (
            siblings
            and hot > self.queue_per_instance
            and hot >= self.imbalance_ratio * max(my_pressure, 1.0)
            and spare_slots < sample.slots_per_instance
            and sample.starting_instances == 0
        )
        if receiving:
            if self._receive_since is None:
                self._receive_since = now
            if now - self._receive_since >= self.imbalance_hold_s:
                self._receive_since = None
                self.shifts_in += 1
                return ScalingDecision(
                    total + 1, "queue imbalance: shifting capacity to this cluster"
                )
            return ScalingDecision(total)
        self._receive_since = None

        # Donor (give-back): fully idle here and no sibling hot enough to
        # shed this way — return the shifted capacity (down to the clamp's
        # floor, possibly zero for a spill cluster).
        sibling_needs_me = hot > self.queue_per_instance / self.imbalance_ratio
        fully_idle = (
            sample.ready_instances > 0
            and sample.waiting_tasks == 0
            and sample.in_flight_tasks == 0
        )
        if siblings and fully_idle and not sibling_needs_me:
            if self._idle_since is None:
                self._idle_since = now
            if now - self._idle_since >= self.scale_down_hold_s:
                self._idle_since = None
                self.shifts_out += 1
                return ScalingDecision(
                    total - 1, "fleet calm: returning shifted capacity"
                )
            return ScalingDecision(total)
        self._idle_since = None

        # Plain quiet scale-down: light load that fits on one fewer instance
        # drains the excess — inherited verbatim from QueueDepthPolicy.
        return super().decide(sample)


#: Policy-name registry: ``AutoscaleConfig.policy`` → factory taking
#: ``(config, defaults)`` where ``defaults`` carries hosting-derived values.
POLICIES: Dict[str, Callable[[AutoscaleConfig, dict], ScalingPolicy]] = {}


def register_policy(name: str,
                    factory: Callable[[AutoscaleConfig, dict], ScalingPolicy]) -> None:
    """Register a custom policy factory under ``name``."""
    POLICIES[name] = factory


register_policy("queue_depth", lambda cfg, d: QueueDepthPolicy(
    queue_per_instance=cfg.queue_per_instance or d.get("queue_per_instance", 8),
    scale_down=cfg.scale_down,
    scale_down_hold_s=cfg.scale_down_hold_s,
))
register_policy("target_utilization", lambda cfg, d: TargetUtilizationPolicy(
    target=cfg.target_utilization,
    deadband=cfg.deadband,
    ki=cfg.ki,
    cooldown_up_s=cfg.cooldown_up_s,
    cooldown_down_s=cfg.cooldown_down_s,
))
register_policy("scheduled", lambda cfg, d: ScheduledPolicy(
    schedule=cfg.schedule,
    period_s=cfg.schedule_period_s,
    epoch_s=cfg.schedule_epoch_s,
))
register_policy("federated", lambda cfg, d: FederationScalingPolicy(
    queue_per_instance=cfg.queue_per_instance or d.get("queue_per_instance", 8),
    scale_down_hold_s=cfg.scale_down_hold_s,
    imbalance_ratio=cfg.imbalance_ratio,
    imbalance_hold_s=cfg.imbalance_hold_s,
))
register_policy("predictive", lambda cfg, d: PredictivePolicy(
    alpha=cfg.ewma_alpha,
    beta=cfg.trend_beta,
    lead_s=cfg.prewarm_lead_s,
    instance_rps=cfg.instance_rps,
    headroom=cfg.headroom,
    queue_per_instance=cfg.queue_per_instance or d.get("queue_per_instance", 8),
    scale_down_hold_s=cfg.scale_down_hold_s,
    seasonal_periods=cfg.seasonal_periods,
    seasonal_gamma=cfg.seasonal_gamma,
    seasonal_buckets=cfg.seasonal_buckets,
))


def make_policy(config: AutoscaleConfig, **defaults) -> ScalingPolicy:
    """Instantiate the policy named by ``config.policy``."""
    try:
        factory = POLICIES[config.policy]
    except KeyError:
        raise ConfigurationError(
            f"Unknown autoscale policy {config.policy!r}; "
            f"expected one of {sorted(POLICIES)}"
        ) from None
    return factory(config, defaults)
