"""The autoscaling controller: one process on the simulation kernel.

The controller is deliberately thin — sampling cadence and lifecycle only.
All intelligence lives in the policies and all actuation in the replica
pools, so a deployment can mix policies per model under one controller and
tests can drive :meth:`ReplicaPool.tick` directly without a process.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim import Environment
from .pool import ReplicaPool

__all__ = ["AutoscaleController"]


class AutoscaleController:
    """Drives registered :class:`ReplicaPool`\\ s at their configured intervals."""

    def __init__(self, env: Environment):
        self.env = env
        self.pools: List[ReplicaPool] = []
        self._stopped = False
        self.ticks = 0

    def add(self, pool: ReplicaPool, interval_s: float) -> ReplicaPool:
        """Register a pool and start its periodic control loop."""
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.pools.append(pool)
        self.env.process(self._loop(pool, interval_s))
        return pool

    def _loop(self, pool: ReplicaPool, interval_s: float):
        while True:
            yield self.env.timeout(interval_s)
            if self._stopped:
                return
            pool.tick()
            self.ticks += 1

    def stop(self) -> None:
        """Stop all control loops at their next tick (shutdown path)."""
        self._stopped = True

    def pool_for(self, model: str) -> ReplicaPool:
        for pool in self.pools:
            if pool.model == model:
                return pool
        raise KeyError(f"No autoscaled pool for model {model}")

    def snapshot(self) -> Dict[str, dict]:
        """Per-model scale-event summaries."""
        return {pool.model: pool.snapshot() for pool in self.pools}
