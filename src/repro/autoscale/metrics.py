"""The control loop's sensor: periodic samples of one model's replica pool.

A :class:`MetricsFeed` reads a duck-typed *source* (the endpoint's per-model
instance pool) and, when attached, the gateway's metrics layer, and distils
both into a :class:`MetricsSample` — the only input a
:class:`~repro.autoscale.policy.ScalingPolicy` sees.  Keeping policies
sample-driven makes them trivially testable (feed them handcrafted samples)
and keeps the autoscale package free of dependencies on the FaaS layer.

The source protocol (all plain attributes/properties)::

    model                   str
    ready_count             instances accepting work
    draining_count          instances finishing in-flight work before retirement
    instance_count          instances created (ready + loading + draining)
    launching_count         launches in flight (job queued/starting or model loading)
    provisioned_count       deduplicated non-draining instance count
    waiting_tasks           tasks queued at the pool
    in_flight_tasks         tasks holding an instance slot
    slots_per_instance      max parallel tasks per instance
    kv_utilization          max KV-cache utilisation across ready instances
    cold_start_estimate_s   observed (or default) submit-to-ready time
    arrivals_total          monotonically increasing task-arrival counter
    completions_total       monotonically increasing task-completion counter
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Environment

__all__ = ["MetricsSample", "MetricsFeed"]


@dataclass
class MetricsSample:
    """One observation of a model's pool, taken at ``time``."""

    time: float
    model: str
    ready_instances: int
    starting_instances: int
    draining_instances: int
    waiting_tasks: int
    in_flight_tasks: int
    slots_per_instance: int
    arrival_rate_rps: float
    completion_rate_rps: float
    kv_utilization: float
    cold_start_estimate_s: float
    #: Gateway-observed medians over a recent window (streaming runs feed
    #: TTFT/ITL; every run feeds latency).  ``None`` when no gateway metrics
    #: layer is attached or nothing was recorded yet.
    latency_p50_s: Optional[float] = None
    ttft_p50_s: Optional[float] = None
    itl_p50_s: Optional[float] = None
    #: Deduplicated instance count (ready + loading + launches without an
    #: instance object yet), draining excluded.  ``total_instances``
    #: deliberately double-counts a loading instance (legacy queue-depth
    #: semantics); policies that compute *absolute* replica targets must
    #: compare against this instead.  ``None`` falls back to
    #: ``total_instances``.
    provisioned_instances: Optional[int] = None

    @property
    def total_instances(self) -> int:
        """Instances the pool counts against its ceiling (draining excluded).

        Mirrors the legacy accounting: a loading instance contributes both
        its instance object and its still-open launch, so this can briefly
        exceed :attr:`provisioned`.
        """
        return self.ready_instances + self.starting_instances

    @property
    def provisioned(self) -> int:
        """Deduplicated provisioned count (see ``provisioned_instances``)."""
        if self.provisioned_instances is not None:
            return self.provisioned_instances
        return self.total_instances

    @property
    def busy_fraction(self) -> float:
        """Demand over ready slot capacity (can exceed 1 when work queues)."""
        capacity = self.ready_instances * self.slots_per_instance
        demand = self.in_flight_tasks + self.waiting_tasks
        if capacity <= 0:
            return 0.0 if demand == 0 else float("inf")
        return demand / capacity

    @property
    def queue_per_ready(self) -> float:
        if self.ready_instances <= 0:
            return float("inf") if self.waiting_tasks else 0.0
        return self.waiting_tasks / self.ready_instances


class MetricsFeed:
    """Samples a pool source (and optionally the gateway metrics layer).

    Rates are measured between *advancing* samples: the periodic controller
    advances the window each tick, while reactive (demand-driven) checks
    sample without advancing so they do not shorten the measurement window.
    """

    def __init__(self, env: Environment, source, gateway_metrics=None):
        self.env = env
        self.source = source
        #: Set post-assembly by the deployment (the gateway is built after
        #: the endpoints); feeds work without it, just without TTFT/ITL.
        self.gateway_metrics = gateway_metrics
        self._window_start = env.now
        self._arrivals_at_start = source.arrivals_total
        self._completions_at_start = source.completions_total

    def sample(self, advance: bool = True) -> MetricsSample:
        src = self.source
        now = self.env.now
        dt = now - self._window_start
        arrivals = src.arrivals_total
        completions = src.completions_total
        if dt > 0:
            arrival_rate = (arrivals - self._arrivals_at_start) / dt
            completion_rate = (completions - self._completions_at_start) / dt
        else:
            arrival_rate = 0.0
            completion_rate = 0.0
        if advance:
            self._window_start = now
            self._arrivals_at_start = arrivals
            self._completions_at_start = completions

        ready = src.ready_count
        draining = src.draining_count
        # Legacy accounting quirk, kept deliberately: a loading instance is
        # counted both in instance_count and in launching_count, which stops
        # the queue-depth heuristic from piling on launches while the first
        # instance loads.
        total = src.instance_count + src.launching_count - draining

        # Gateway medians cost a sort over the rolling windows, so they are
        # computed only for periodic (advancing) samples; the reactive path
        # runs on every task arrival and its policies only read counts.
        latency_p50 = ttft_p50 = itl_p50 = None
        if advance and self.gateway_metrics is not None:
            recent = self.gateway_metrics.recent_timings(src.model)
            if recent:
                latency_p50 = recent.get("latency_p50_s")
                ttft_p50 = recent.get("ttft_p50_s")
                itl_p50 = recent.get("itl_p50_s")

        return MetricsSample(
            time=now,
            model=src.model,
            ready_instances=ready,
            starting_instances=max(0, total - ready),
            draining_instances=draining,
            waiting_tasks=src.waiting_tasks,
            in_flight_tasks=src.in_flight_tasks,
            slots_per_instance=src.slots_per_instance,
            arrival_rate_rps=arrival_rate,
            completion_rate_rps=completion_rate,
            kv_utilization=src.kv_utilization,
            cold_start_estimate_s=src.cold_start_estimate_s,
            latency_p50_s=latency_p50,
            ttft_p50_s=ttft_p50,
            itl_p50_s=itl_p50,
            provisioned_instances=src.provisioned_count,
        )
