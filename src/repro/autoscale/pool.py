"""Cold-start-aware replica pool: the control plane's actuator.

A :class:`ReplicaPool` binds one model's metrics feed and scaling policy to
a *backend* — the endpoint-side instance pool that can actually launch and
drain instances.  It owns target clamping (min/max), converts policy
targets into launch / drain actions, and keeps an audit log of every scale
event for benchmarks and the dashboard.

The backend protocol (implemented by the FaaS endpoint's ``_ModelPool``)::

    launch_one()            submit a scheduler job + bring up an instance
    start_drain_one() -> bool
                            begin drain-before-terminate on one ready
                            instance (False when none is drainable)

plus the metrics-source attributes documented in
:mod:`repro.autoscale.metrics`.
"""

from __future__ import annotations

from typing import List, Optional

from ..common import sim_logger
from ..sim import Environment
from .metrics import MetricsFeed, MetricsSample
from .policy import ScalingPolicy

__all__ = ["ReplicaPool"]


class ReplicaPool:
    """Policy-driven scaling of one model's instances."""

    def __init__(
        self,
        env: Environment,
        feed: MetricsFeed,
        policy: ScalingPolicy,
        backend,
        min_instances: int = 0,
        max_instances: int = 1,
    ):
        self.env = env
        self.feed = feed
        self.policy = policy
        self.backend = backend
        self.min_instances = min_instances
        self.max_instances = max_instances
        #: Audit log of applied scale events (time, current, target, reason).
        self.actions: List[dict] = []
        self.launches = 0
        self.drains = 0
        self._log = sim_logger("repro.autoscale.pool", env)

    @property
    def model(self) -> str:
        return self.feed.source.model

    # -- control entry points --------------------------------------------------
    def reactive(self) -> None:
        """Demand-driven check (a task just started waiting)."""
        sample = self.feed.sample(advance=False)
        self._apply(sample, self.policy.reactive(sample), reason="reactive")

    def tick(self) -> None:
        """Periodic controller evaluation."""
        sample = self.feed.sample()
        decision = self.policy.decide(sample)
        self._apply(sample, decision.target, reason=decision.reason or "tick")

    def scale_to(self, target: int, reason: str = "manual") -> None:
        """Imperative scaling (operator/benchmark override)."""
        self._apply(self.feed.sample(advance=False), target, reason=reason)

    # -- actuation -------------------------------------------------------------
    def _clamp(self, target: int) -> int:
        return max(self.min_instances, min(self.max_instances, target))

    def _apply(self, sample: MetricsSample, target: Optional[int], reason: str) -> None:
        if target is None:
            return
        current = sample.total_instances
        clamped = self._clamp(target)
        launched = drained = 0
        if clamped > current:
            for _ in range(clamped - current):
                self.backend.launch_one()
                launched += 1
        elif clamped < current and target < current:
            # Drain only when the *policy* asked for fewer instances.  A
            # clamp-down alone can be a transient artifact: while an instance
            # loads, the pool counts it twice (created + launching), so the
            # observed total can exceed the ceiling without any real excess.
            for _ in range(current - clamped):
                if not self.backend.start_drain_one():
                    self._log.warning("scale-down stopped short: no drainable instance",
                                      model=self.model, requested=current - clamped,
                                      drained=drained, reason=reason)
                    break
                drained += 1
        if launched == 0 and drained == 0:
            return
        self.launches += launched
        self.drains += drained
        # Audit the scaling that actually started (a drain request can stop
        # short when no further ready instance is drainable).
        self.actions.append(
            {"time": sample.time, "from": current,
             "to": current + launched - drained, "reason": reason}
        )

    def snapshot(self) -> dict:
        """Scale-event summary (surfaced by benchmarks and ``/metrics``)."""
        return {
            "model": self.model,
            "policy": self.policy.name,
            "min_instances": self.min_instances,
            "max_instances": self.max_instances,
            "launches": self.launches,
            "drains": self.drains,
            "actions": list(self.actions),
        }
