"""Per-model autoscaling configuration.

``AutoscaleConfig`` is the single knob surface users touch: it selects a
:mod:`~repro.autoscale.policy` by name, bounds the replica count, and
carries every policy's tunables.  Deployments attach it per model through
``ModelDeploymentSpec.autoscale`` / ``ModelHostingConfig.autoscale``; when
it is ``None`` the endpoint falls back to the legacy demand-driven
queue-depth behaviour (reactive scale-up only, no periodic controller), so
existing deployments are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = ["AutoscaleConfig"]


@dataclass
class AutoscaleConfig:
    """How one model's replica pool is autoscaled.

    Only the fields relevant to the selected ``policy`` are read; the rest
    are ignored, so a config can be switched between policies by changing
    one string.
    """

    #: Policy name registered in :data:`repro.autoscale.policy.POLICIES`
    #: (``queue_depth`` | ``target_utilization`` | ``scheduled`` |
    #: ``predictive``).
    policy: str = "queue_depth"
    #: Floor the controller maintains even with zero demand (pre-warmed).
    min_instances: int = 0
    #: Ceiling; ``None`` uses the hosting config's ``max_instances``.
    max_instances: Optional[int] = None
    #: Controller sampling/decision interval.
    interval_s: float = 15.0

    # -- queue-depth policy -------------------------------------------------
    #: Waiting tasks per ready instance that trigger scale-up; ``None`` uses
    #: the hosting config's ``scale_up_queue_per_instance``.
    queue_per_instance: Optional[int] = None
    #: Whether the periodic controller may drain idle capacity back down.
    scale_down: bool = True
    #: How long the scale-down condition must hold before an instance drains.
    scale_down_hold_s: float = 60.0

    # -- target-utilization (PID-style) policy -------------------------------
    #: Desired busy fraction (in-flight + waiting over ready slot capacity).
    target_utilization: float = 0.7
    #: Hysteresis band around the target inside which no action is taken.
    deadband: float = 0.15
    #: Integral gain (PI control); 0 disables the integral term.
    ki: float = 0.0
    #: Minimum time between consecutive scale-ups / scale-downs.
    cooldown_up_s: float = 30.0
    cooldown_down_s: float = 120.0

    # -- scheduled (cron-like) policy ---------------------------------------
    #: Capacity plan: ``(offset_into_period_s, replicas)`` entries; the entry
    #: with the largest offset <= (now mod period) wins.
    schedule: List[Tuple[float, int]] = field(default_factory=list)
    #: Plan period (one simulated "day" by default).
    schedule_period_s: float = 86400.0
    #: Anchor of the plan's t=0 (e.g. local midnight, or when traffic opens).
    schedule_epoch_s: float = 0.0

    # -- federated (cross-cluster shifting) policy ---------------------------
    #: How much hotter (queue per ready instance) a sibling cluster must be
    #: than this one before this cluster donates a replica.
    imbalance_ratio: float = 2.0
    #: How long a queue imbalance must hold before capacity shifts.
    imbalance_hold_s: float = 45.0

    # -- predictive (EWMA/Holt forecast) policy ------------------------------
    #: Level smoothing factor for the arrival-rate EWMA.
    ewma_alpha: float = 0.35
    #: Trend smoothing factor (Holt's linear method); 0 = plain EWMA.
    trend_beta: float = 0.15
    #: Forecast horizon; ``None`` uses the pool's observed cold-start time,
    #: which is the whole point: pre-warm exactly one cold start ahead.
    prewarm_lead_s: Optional[float] = None
    #: Requests/s one ready instance sustains; ``None`` lets the policy
    #: estimate it online from observed completion rates.
    instance_rps: Optional[float] = None
    #: Fractional capacity headroom provisioned above the forecast.
    headroom: float = 0.15
    #: Seasonal cycle lengths in seconds (e.g. ``(86400, 604800)`` for
    #: daily + weekly terms); ``None``/empty keeps the plain Holt forecast.
    seasonal_periods: Optional[Tuple[float, ...]] = None
    #: Smoothing factor for the additive seasonal indices.
    seasonal_gamma: float = 0.3
    #: Buckets per seasonal period: an int broadcasts to every period
    #: (24 ≈ hourly resolution for a day); a tuple gives each period its own
    #: resolution (e.g. ``(24, 168)`` for hourly daily *and* weekly terms).
    seasonal_buckets: Union[int, Tuple[int, ...]] = 24

    def __post_init__(self):
        if self.min_instances < 0:
            raise ValueError("min_instances must be >= 0")
        if self.max_instances is not None and self.max_instances < max(1, self.min_instances):
            raise ValueError("max_instances must be >= max(1, min_instances)")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        if self.schedule:
            self.schedule = sorted(self.schedule)
        if self.seasonal_periods:
            if any(period <= 0 for period in self.seasonal_periods):
                raise ValueError("seasonal_periods must be > 0")
            if not 0.0 <= self.seasonal_gamma <= 1.0:
                raise ValueError("seasonal_gamma must be in [0, 1]")
            buckets = self.seasonal_buckets
            if isinstance(buckets, int):
                buckets = (buckets,) * len(self.seasonal_periods)
            elif len(buckets) != len(self.seasonal_periods):
                raise ValueError(
                    "seasonal_buckets must match seasonal_periods in length")
            if any(count < 1 for count in buckets):
                raise ValueError("seasonal_buckets must be >= 1")
