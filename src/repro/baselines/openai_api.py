"""The commercial-cloud baseline of §5.3.3 (OpenAI API serving GPT-4o-mini).

The paper contrasts FIRST with the OpenAI API: the cloud service delivers
much lower per-request latency (≈2 s median) but, under the account's rate
limits, completes far fewer requests per second (≈6.7 req/s, ≈1200 tok/s).
The model here captures exactly those two properties:

* each admitted request completes after a lognormal service latency centred
  on ``median_latency_s``;
* the service enforces an account-level rate limit (token bucket) plus a
  concurrency cap; requests beyond it wait (the benchmark client in the
  paper was likewise throttled by "service-side rate limiting").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common import RandomSource
from ..serving import InferenceRequest, InferenceResult
from ..sim import Environment, Event, Resource

__all__ = ["OpenAIAPIConfig", "OpenAIAPITarget"]


@dataclass
class OpenAIAPIConfig:
    """Cloud-service behaviour (defaults match the paper's observations)."""

    model_name: str = "gpt-4o-mini"
    median_latency_s: float = 2.0
    latency_sigma: float = 0.25
    #: Requests per second the account's rate limit admits.
    rate_limit_rps: float = 6.7
    #: Maximum simultaneously processed requests.
    max_concurrency: int = 32
    seed: int = 99


class OpenAIAPITarget:
    """Benchmark target modelling a commercial cloud inference API."""

    name = "OpenAI API"

    def __init__(self, env: Environment, config: Optional[OpenAIAPIConfig] = None):
        self.env = env
        self.config = config or OpenAIAPIConfig()
        self._random = RandomSource(seed=self.config.seed)
        self._concurrency = Resource(env, capacity=self.config.max_concurrency)
        self._next_admission = 0.0
        self.completed = 0
        self.rate_limited_waits = 0

    def submit(self, request: InferenceRequest) -> Event:
        done = self.env.event()
        self.env.process(self._serve(request, done))
        return done

    def _serve(self, request: InferenceRequest, done: Event):
        cfg = self.config
        # Account-level admission (token bucket at rate_limit_rps).
        interval = 1.0 / cfg.rate_limit_rps
        admit_at = max(self.env.now, self._next_admission)
        self._next_admission = admit_at + interval
        if admit_at > self.env.now:
            self.rate_limited_waits += 1
            yield self.env.timeout(admit_at - self.env.now)

        with self._concurrency.request() as slot:
            yield slot
            latency = self._random.lognormal(cfg.median_latency_s, cfg.latency_sigma)
            yield self.env.timeout(latency)

        self.completed += 1
        result = InferenceResult(
            request_id=request.request_id,
            model=cfg.model_name,
            prompt_tokens=request.prompt_tokens,
            output_tokens=request.max_output_tokens,
            success=True,
            arrival_time=request.arrival_time,
            engine_enqueue_time=request.arrival_time,
            first_token_time=self.env.now,
            completion_time=self.env.now,
            instance_id="openai-cloud",
            cluster="openai",
        )
        if not done.triggered:
            done.succeed(result)
