"""The "vLLM Direct" baseline of §5.2.3.

"Requests were sent directly from the benchmarking client to the vLLM
OpenAI-compatible API endpoint running on the designated Sophia nodes" — no
gateway, no Globus Compute, no authentication.  The target simply wraps a
ready :class:`~repro.serving.ServingInstance` and submits to its API
front-end, which is exactly where the front-end concurrency limitation that
FIRST sidesteps lives.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..cluster import Node
from ..serving import (
    APIServerConfig,
    EngineConfig,
    InferenceRequest,
    ModelSpec,
    PerfModelConfig,
    ServingInstance,
)
from ..sim import Environment, Event

__all__ = ["DirectVLLMTarget"]


class DirectVLLMTarget:
    """Benchmark target that talks straight to a model instance's API server."""

    name = "vLLM Direct"

    def __init__(self, instance: ServingInstance):
        if not instance.is_ready:
            raise RuntimeError("DirectVLLMTarget requires a ready instance; "
                               "use DirectVLLMTarget.launch(...)")
        self.instance = instance

    @classmethod
    def launch(
        cls,
        env: Environment,
        model: ModelSpec,
        nodes: List[Node],
        tensor_parallel: Optional[int] = None,
        perf_config: Optional[PerfModelConfig] = None,
        engine_config: Optional[EngineConfig] = None,
        api_config: Optional[APIServerConfig] = None,
    ) -> Tuple["DirectVLLMTarget", Event]:
        """Start an instance and return ``(target_factory, ready_event)``.

        Run the environment until ``ready_event`` fires, then call
        ``target_factory.materialise()`` (or simply construct the target from
        the instance) to obtain a usable target.
        """
        instance = ServingInstance(
            env,
            model,
            nodes,
            tensor_parallel=tensor_parallel,
            perf_config=perf_config,
            engine_config=engine_config or EngineConfig(generate_text=False),
            api_config=api_config,
            via_api_server=True,
        )
        holder = _PendingDirectTarget(instance)
        return holder, instance.ready

    def submit(self, request: InferenceRequest) -> Event:
        return self.instance.submit(request)


class _PendingDirectTarget:
    """Deferred handle returned by :meth:`DirectVLLMTarget.launch`."""

    def __init__(self, instance: ServingInstance):
        self.instance = instance

    def materialise(self) -> DirectVLLMTarget:
        return DirectVLLMTarget(self.instance)
