"""Comparison baselines: direct vLLM access and the OpenAI-API cloud service."""

from .direct import DirectVLLMTarget
from .openai_api import OpenAIAPIConfig, OpenAIAPITarget

__all__ = ["DirectVLLMTarget", "OpenAIAPIConfig", "OpenAIAPITarget"]
