"""Ready-made facility descriptions modelled on the paper's deployment.

* ``sophia_like()`` — 24 DGX A100 nodes, 8 GPUs each, two nodes with 80 GB
  GPUs (the paper's proof-of-concept deployment target at ALCF).
* ``polaris_like()`` — a second ALCF system used for the federation
  proof-of-concept; modelled as 4-GPU A100 nodes.
"""

from __future__ import annotations

from typing import Optional

from .cluster import Cluster, Interconnect
from .gpu import A100_40GB, A100_80GB
from .node import Node, NodeSpec, dgx_a100_spec

__all__ = ["sophia_like", "polaris_like", "small_test_cluster"]


def sophia_like(num_nodes: int = 24, num_80gb_nodes: int = 2) -> Cluster:
    """A Sophia-like cluster: ``num_nodes`` DGX A100 nodes, last two with 80 GB GPUs."""
    if num_80gb_nodes > num_nodes:
        raise ValueError("num_80gb_nodes cannot exceed num_nodes")
    spec_40 = dgx_a100_spec(A100_40GB)
    spec_80 = dgx_a100_spec(A100_80GB)
    nodes = []
    for i in range(num_nodes):
        spec = spec_80 if i >= num_nodes - num_80gb_nodes else spec_40
        nodes.append(Node(f"sophia-{i:03d}", spec))
    fabric = Interconnect(name="Mellanox HDR InfiniBand fat-tree", bandwidth_gbps=200.0)
    return Cluster("sophia", nodes, fabric)


def polaris_like(num_nodes: int = 40) -> Cluster:
    """A Polaris-like cluster: A100 nodes with 4 GPUs each."""
    spec = NodeSpec(
        name="Polaris-node",
        gpu_spec=A100_40GB,
        gpus_per_node=4,
        cpu_cores=64,
        memory_gb=512.0,
        local_ssd_tb=3.2,
        storage_read_gbps=2.0,
    )
    nodes = [Node(f"polaris-{i:03d}", spec) for i in range(num_nodes)]
    fabric = Interconnect(name="Slingshot-11 dragonfly", bandwidth_gbps=200.0)
    return Cluster("polaris", nodes, fabric)


def small_test_cluster(name: str = "testcluster", num_nodes: int = 2,
                       gpus_per_node: int = 8) -> Cluster:
    """A tiny cluster for unit tests and the quickstart example."""
    spec = NodeSpec(
        name="test-node",
        gpu_spec=A100_40GB,
        gpus_per_node=gpus_per_node,
        cpu_cores=32,
        memory_gb=256.0,
        local_ssd_tb=1.0,
        storage_read_gbps=4.0,
    )
    return Cluster.homogeneous(name, spec, num_nodes)
