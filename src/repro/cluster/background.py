"""Background (non-inference) load on a shared cluster.

Sophia is a *shared* 24-node cluster: inference jobs compete with other
users' batch jobs for nodes.  :class:`BackgroundLoadGenerator` submits
synthetic jobs so the federation and cold-start experiments can exercise
realistic queue-wait behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..common import RandomSource
from ..sim import Environment
from .job import JobRequest
from .scheduler import SchedulerBase

__all__ = ["BackgroundLoadConfig", "BackgroundLoadGenerator"]


@dataclass
class BackgroundLoadConfig:
    """Parameters of the synthetic background job stream."""

    #: Mean inter-arrival time between background jobs (seconds).
    mean_interarrival_s: float = 600.0
    #: Mean job duration (seconds); actual durations are lognormal.
    mean_duration_s: float = 1800.0
    duration_sigma: float = 0.6
    min_nodes: int = 1
    max_nodes: int = 4
    #: Stop submitting after this many jobs (None = unlimited).
    max_jobs: Optional[int] = None


class BackgroundLoadGenerator:
    """Submits a stream of synthetic batch jobs to a scheduler."""

    def __init__(
        self,
        env: Environment,
        scheduler: SchedulerBase,
        config: Optional[BackgroundLoadConfig] = None,
        random: Optional[RandomSource] = None,
    ):
        self.env = env
        self.scheduler = scheduler
        self.config = config or BackgroundLoadConfig()
        self.random = random or RandomSource(seed=1234)
        self.submitted: List[str] = []
        self._proc = None

    def start(self) -> None:
        """Begin submitting background jobs."""
        if self._proc is None:
            self._proc = self.env.process(self._run())

    def _run(self):
        cfg = self.config
        count = 0
        while cfg.max_jobs is None or count < cfg.max_jobs:
            yield self.env.timeout(self.random.exponential(cfg.mean_interarrival_s))
            nodes = self.random.integers(cfg.min_nodes, cfg.max_nodes)
            duration = max(60.0, self.random.lognormal(cfg.mean_duration_s, cfg.duration_sigma))
            request = JobRequest(
                name=f"background-{count}",
                num_nodes=nodes,
                gpus_per_node=self.scheduler.cluster.nodes[0].spec.gpus_per_node,
                walltime_s=duration,
                metadata={"kind": "background"},
            )
            handle = self.scheduler.submit(request)
            self.submitted.append(handle.job.job_id)
            count += 1
