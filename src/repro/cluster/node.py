"""Compute-node model: a set of GPUs plus host resources.

Nodes are what the scheduler allocates to jobs and what Globus-Compute-like
endpoint managers hold while a model instance is "hot".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .gpu import GPU, GPUSpec, A100_40GB

__all__ = ["NodeSpec", "Node", "dgx_a100_spec"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a node type."""

    name: str
    gpu_spec: GPUSpec
    gpus_per_node: int = 8
    cpu_cores: int = 128
    memory_gb: float = 1024.0
    local_ssd_tb: float = 15.0
    #: Sustained read bandwidth of local storage in GB/s; bounds model-weight
    #: load time together with the parallelism of the load.
    storage_read_gbps: float = 4.0

    def __post_init__(self):
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be > 0")


def dgx_a100_spec(gpu_spec: GPUSpec = A100_40GB) -> NodeSpec:
    """The DGX A100 node type used by Sophia (8 GPUs, dual AMD Rome, 15 TB SSD)."""
    return NodeSpec(
        name="DGX-A100",
        gpu_spec=gpu_spec,
        gpus_per_node=8,
        cpu_cores=128,
        memory_gb=1024.0,
        local_ssd_tb=15.0,
        storage_read_gbps=4.0,
    )


class Node:
    """A compute node with individually reservable GPUs."""

    def __init__(self, name: str, spec: NodeSpec):
        self.name = name
        self.spec = spec
        self.gpus: List[GPU] = [GPU(index=i, spec=spec.gpu_spec) for i in range(spec.gpus_per_node)]
        #: Name of the job currently holding the whole node, if any.
        self.allocated_to: Optional[str] = None
        self.up: bool = True

    # -- whole-node allocation (scheduler level) ---------------------------
    @property
    def allocated(self) -> bool:
        return self.allocated_to is not None

    def allocate(self, job_id: str) -> None:
        if not self.up:
            raise RuntimeError(f"Node {self.name} is down")
        if self.allocated:
            raise RuntimeError(f"Node {self.name} already allocated to {self.allocated_to}")
        self.allocated_to = job_id

    def deallocate(self) -> None:
        self.allocated_to = None
        for gpu in self.gpus:
            gpu.free()

    # -- GPU-level reservation (model co-location) -------------------------
    @property
    def free_gpus(self) -> List[GPU]:
        """GPUs with no model instance on them."""
        return [g for g in self.gpus if not g.in_use]

    @property
    def total_vram_gb(self) -> float:
        return sum(g.spec.memory_gb for g in self.gpus)

    @property
    def free_vram_gb(self) -> float:
        return sum(g.free_gb for g in self.gpus)

    def reserve_gpus(self, count: int, vram_per_gpu_gb: float, owner: str) -> List[GPU]:
        """Reserve ``count`` free GPUs for a model instance.

        Raises ``RuntimeError`` if not enough free GPUs (or per-GPU VRAM) are
        available; the caller (endpoint manager) decides whether to acquire
        another node instead.
        """
        candidates = [g for g in self.free_gpus if g.spec.memory_gb >= vram_per_gpu_gb]
        if len(candidates) < count:
            raise RuntimeError(
                f"Node {self.name} has {len(candidates)} suitable free GPUs, need {count}"
            )
        selected = candidates[:count]
        for gpu in selected:
            gpu.reserve(vram_per_gpu_gb, owner)
        return selected

    def release_gpus(self, owner: str) -> int:
        """Release every GPU held by ``owner``; returns how many were freed."""
        released = 0
        for gpu in self.gpus:
            if gpu.owner == owner:
                gpu.free()
                released += 1
        return released

    def fail(self) -> None:
        """Mark the node as down (used for fault-tolerance tests)."""
        self.up = False

    def recover(self) -> None:
        self.up = True

    def __repr__(self) -> str:
        state = "busy" if self.allocated else "free"
        return f"<Node {self.name} ({self.spec.gpus_per_node}x{self.spec.gpu_spec.name}) {state}>"
