"""Batch-job model shared by every scheduler implementation."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["JobState", "JobRequest", "Job"]


class JobState(str, enum.Enum):
    """Lifecycle of a scheduler job.

    Mirrors the states surfaced by the paper's ``/jobs`` endpoint:
    ``queued`` (waiting for allocation), ``starting`` (nodes acquired, model
    loading), ``running`` (hot), plus terminal states.
    """

    QUEUED = "queued"
    STARTING = "starting"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"
    TIMEOUT = "timeout"

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.CANCELLED, JobState.FAILED, JobState.TIMEOUT)


@dataclass
class JobRequest:
    """Resource request submitted to a scheduler."""

    name: str
    num_nodes: int = 1
    gpus_per_node: int = 8
    walltime_s: float = 7200.0
    queue: str = "default"
    priority: int = 0
    #: Free-form metadata (e.g. which model instance this job will host).
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be > 0")
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be > 0")
        if self.walltime_s <= 0:
            raise ValueError("walltime_s must be > 0")


@dataclass
class Job:
    """A job tracked by a scheduler, with timing bookkeeping."""

    job_id: str
    request: JobRequest
    state: JobState = JobState.QUEUED
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    nodes: List = field(default_factory=list)  # List[Node] once allocated
    exit_reason: Optional[str] = None

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Seconds spent waiting in the queue, once started."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def runtime_s(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def is_active(self) -> bool:
        return self.state in (JobState.STARTING, JobState.RUNNING)

    def to_dict(self) -> dict:
        """Serialisable summary, as returned by the gateway's ``/jobs`` endpoint."""
        return {
            "job_id": self.job_id,
            "name": self.request.name,
            "state": self.state.value,
            "num_nodes": self.request.num_nodes,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "queue_wait_s": self.queue_wait_s,
            "metadata": dict(self.request.metadata),
        }
