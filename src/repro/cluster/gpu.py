"""GPU device models.

The reproduction does not execute kernels on real accelerators; a GPU is a
named capacity (VRAM plus relative compute throughput) that model instances
reserve.  Relative throughput factors are used by the serving timing model
(:mod:`repro.serving.timing`) to scale prefill/decode rates across device
generations, mirroring the paper's statement that FIRST targets NVIDIA A100,
H100 and AMD MI250 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["GPUSpec", "GPU", "A100_40GB", "A100_80GB", "H100_80GB", "MI250_64GB"]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"NVIDIA A100-SXM4-40GB"``.
    memory_gb:
        Usable device memory in GiB.
    compute_factor:
        Relative throughput versus an A100-40GB (1.0).  Used to scale the
        serving timing model across hardware generations.
    mem_bandwidth_gbps:
        Device memory bandwidth, informational.
    """

    name: str
    memory_gb: float
    compute_factor: float = 1.0
    mem_bandwidth_gbps: float = 1555.0

    def __post_init__(self):
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be > 0")
        if self.compute_factor <= 0:
            raise ValueError("compute_factor must be > 0")


#: The GPU that makes up most of Sophia (24 DGX A100 nodes).
A100_40GB = GPUSpec("NVIDIA A100-SXM4-40GB", memory_gb=40.0, compute_factor=1.0,
                    mem_bandwidth_gbps=1555.0)
#: Two Sophia nodes carry 80 GB A100s.
A100_80GB = GPUSpec("NVIDIA A100-SXM4-80GB", memory_gb=80.0, compute_factor=1.05,
                    mem_bandwidth_gbps=2039.0)
H100_80GB = GPUSpec("NVIDIA H100-SXM5-80GB", memory_gb=80.0, compute_factor=2.2,
                    mem_bandwidth_gbps=3350.0)
MI250_64GB = GPUSpec("AMD MI250-64GB", memory_gb=64.0, compute_factor=0.9,
                     mem_bandwidth_gbps=3276.0)


@dataclass
class GPU:
    """A physical GPU inside a node.

    Tracks how much VRAM has been reserved by model instances so that several
    models can be co-located on one node (the paper's example: a 70B model on
    6 GPUs while 8B and 7B models use the remaining 2).
    """

    index: int
    spec: GPUSpec
    reserved_gb: float = 0.0
    owner: Optional[str] = None

    @property
    def free_gb(self) -> float:
        """VRAM not yet reserved."""
        return self.spec.memory_gb - self.reserved_gb

    @property
    def in_use(self) -> bool:
        return self.owner is not None

    def reserve(self, vram_gb: float, owner: str) -> None:
        """Reserve ``vram_gb`` of this GPU for ``owner`` (a model instance id)."""
        if self.in_use:
            raise RuntimeError(f"GPU {self.index} already reserved by {self.owner}")
        if vram_gb > self.spec.memory_gb + 1e-9:
            raise ValueError(
                f"Cannot reserve {vram_gb:.1f} GB on a {self.spec.memory_gb:.1f} GB GPU"
            )
        self.reserved_gb = vram_gb
        self.owner = owner

    def free(self) -> None:
        """Release the reservation."""
        self.reserved_gb = 0.0
        self.owner = None
