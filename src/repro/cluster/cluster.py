"""Cluster model: a named collection of nodes plus interconnect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .gpu import GPUSpec
from .node import Node, NodeSpec

__all__ = ["Interconnect", "ClusterStatus", "Cluster"]


@dataclass(frozen=True)
class Interconnect:
    """Inter-node fabric description.

    Multi-node model loads (e.g. a 405B model spanning nodes) pay a
    coordination cost derived from the fabric latency, mirroring the paper's
    note that large models "require coordinating the loading process across
    multiple nodes and GPUs, significantly increasing the cold start time".
    """

    name: str = "HDR InfiniBand fat-tree"
    bandwidth_gbps: float = 200.0
    latency_us: float = 1.5

    def coordination_overhead_s(self, num_nodes: int) -> float:
        """Extra start-up seconds incurred when a model spans ``num_nodes``."""
        if num_nodes <= 1:
            return 0.0
        # Collective setup + NCCL-style ring formation grows with node count.
        return 5.0 * (num_nodes - 1)


@dataclass
class ClusterStatus:
    """Publicly queryable snapshot used by the federation layer (§4.5)."""

    cluster: str
    total_nodes: int
    free_nodes: int
    allocated_nodes: int
    down_nodes: int
    queued_jobs: int
    running_jobs: int

    def to_dict(self) -> dict:
        return {
            "cluster": self.cluster,
            "total_nodes": self.total_nodes,
            "free_nodes": self.free_nodes,
            "allocated_nodes": self.allocated_nodes,
            "down_nodes": self.down_nodes,
            "queued_jobs": self.queued_jobs,
            "running_jobs": self.running_jobs,
        }


class Cluster:
    """A named HPC cluster: nodes + interconnect.

    The scheduler (see :mod:`repro.cluster.scheduler`) owns job admission;
    the cluster only tracks physical node state.
    """

    def __init__(
        self,
        name: str,
        nodes: List[Node],
        interconnect: Optional[Interconnect] = None,
    ):
        if not nodes:
            raise ValueError("A cluster needs at least one node")
        self.name = name
        self.nodes = list(nodes)
        self.interconnect = interconnect or Interconnect()

    # -- factory -----------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        name: str,
        node_spec: NodeSpec,
        num_nodes: int,
        interconnect: Optional[Interconnect] = None,
        node_prefix: Optional[str] = None,
    ) -> "Cluster":
        prefix = node_prefix or name.lower()
        nodes = [Node(f"{prefix}-{i:03d}", node_spec) for i in range(num_nodes)]
        return cls(name, nodes, interconnect)

    # -- queries -----------------------------------------------------------
    @property
    def total_nodes(self) -> int:
        return len(self.nodes)

    @property
    def up_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.up]

    @property
    def free_nodes(self) -> List[Node]:
        """Nodes that are up and not allocated to any job."""
        return [n for n in self.nodes if n.up and not n.allocated]

    @property
    def allocated_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.allocated]

    @property
    def down_nodes(self) -> List[Node]:
        return [n for n in self.nodes if not n.up]

    def find_node(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"No node named {name} in cluster {self.name}")

    def status(self, queued_jobs: int = 0, running_jobs: int = 0) -> ClusterStatus:
        """Snapshot of node availability (job counts supplied by the scheduler)."""
        return ClusterStatus(
            cluster=self.name,
            total_nodes=self.total_nodes,
            free_nodes=len(self.free_nodes),
            allocated_nodes=len(self.allocated_nodes),
            down_nodes=len(self.down_nodes),
            queued_jobs=queued_jobs,
            running_jobs=running_jobs,
        )

    def __repr__(self) -> str:
        return f"<Cluster {self.name}: {len(self.free_nodes)}/{self.total_nodes} nodes free>"
