"""HPC cluster substrate: GPUs, nodes, clusters, jobs and batch schedulers.

This package simulates the compute facilities FIRST deploys onto (Sophia,
Polaris) including their batch schedulers, so that node acquisition, queue
waits, co-location and hot/cold starts behave as in the paper without any
real hardware.
"""

from .background import BackgroundLoadConfig, BackgroundLoadGenerator
from .cluster import Cluster, ClusterStatus, Interconnect
from .facilities import polaris_like, small_test_cluster, sophia_like
from .gpu import A100_40GB, A100_80GB, GPU, GPUSpec, H100_80GB, MI250_64GB
from .job import Job, JobRequest, JobState
from .node import Node, NodeSpec, dgx_a100_spec
from .scheduler import (
    JobHandle,
    KubernetesScheduler,
    LocalScheduler,
    PBSScheduler,
    SchedulerBase,
    SchedulerConfig,
    SlurmScheduler,
    make_scheduler,
)
from .status import FacilityStatusProvider

__all__ = [
    "GPU",
    "GPUSpec",
    "A100_40GB",
    "A100_80GB",
    "H100_80GB",
    "MI250_64GB",
    "Node",
    "NodeSpec",
    "dgx_a100_spec",
    "Cluster",
    "ClusterStatus",
    "Interconnect",
    "sophia_like",
    "polaris_like",
    "small_test_cluster",
    "Job",
    "JobRequest",
    "JobState",
    "JobHandle",
    "SchedulerBase",
    "SchedulerConfig",
    "PBSScheduler",
    "SlurmScheduler",
    "KubernetesScheduler",
    "LocalScheduler",
    "make_scheduler",
    "FacilityStatusProvider",
    "BackgroundLoadConfig",
    "BackgroundLoadGenerator",
]
