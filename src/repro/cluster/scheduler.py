"""Batch-scheduler simulators: PBS, Slurm, Kubernetes and a local provider.

The paper's endpoints acquire nodes "either on local nodes, inside a
Kubernetes pod, or through a batch-scheduler submission (e.g., PBS or
Slurm)".  Each scheduler here exposes the same interface —
:meth:`SchedulerBase.submit` returning a :class:`JobHandle` — so the
Globus-Compute-like endpoint manager (:mod:`repro.faas`) is provider
agnostic, exactly as in FIRST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common import IdGenerator, NotFoundError
from ..sim import Environment, Event
from .cluster import Cluster
from .job import Job, JobRequest, JobState

__all__ = [
    "SchedulerConfig",
    "JobHandle",
    "SchedulerBase",
    "PBSScheduler",
    "SlurmScheduler",
    "KubernetesScheduler",
    "LocalScheduler",
    "make_scheduler",
]


@dataclass
class SchedulerConfig:
    """Tunable scheduler behaviour.

    ``cycle_latency_s`` models the scheduler's scheduling-iteration delay:
    even on an idle cluster a PBS job does not start instantaneously.
    """

    cycle_latency_s: float = 5.0
    backfill: bool = True
    enforce_walltime: bool = True
    #: Extra fixed provisioning delay once nodes are assigned (node prologue,
    #: container/pod start, environment setup) before the job is "running".
    prologue_s: float = 10.0
    max_queued_jobs: int = 10000


class JobHandle:
    """Handle returned by :meth:`SchedulerBase.submit`.

    Attributes
    ----------
    job:
        The underlying :class:`Job` record (state, timings, nodes).
    started:
        Event that succeeds with the list of allocated nodes when the job
        transitions to RUNNING.  Fails if the job is cancelled while queued.
    finished:
        Event that succeeds with the terminal :class:`JobState` when the job
        ends for any reason (released, cancelled, walltime exceeded, failed).
    """

    def __init__(self, env: Environment, job: Job):
        self.job = job
        self.started: Event = env.event()
        self.finished: Event = env.event()

    @property
    def nodes(self):
        return self.job.nodes

    @property
    def state(self) -> JobState:
        return self.job.state


class SchedulerBase:
    """Shared machinery for every scheduler flavour."""

    scheduler_type = "base"

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        config: Optional[SchedulerConfig] = None,
        ids: Optional[IdGenerator] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.config = config or SchedulerConfig()
        self._ids = ids or IdGenerator()
        self._queue: List[JobHandle] = []
        self._running: Dict[str, JobHandle] = {}
        self._all_jobs: Dict[str, JobHandle] = {}
        self.jobs_drained = 0
        self._wakeup = env.event()
        self._loop = env.process(self._scheduling_loop())

    # -- public API --------------------------------------------------------
    def submit(self, request: JobRequest) -> JobHandle:
        """Submit a job request; returns immediately with a :class:`JobHandle`."""
        if len(self._queue) >= self.config.max_queued_jobs:
            raise RuntimeError(f"{self.cluster.name} scheduler queue is full")
        if request.num_nodes > self.cluster.total_nodes:
            raise ValueError(
                f"Job requests {request.num_nodes} nodes but cluster "
                f"{self.cluster.name} only has {self.cluster.total_nodes}"
            )
        job = Job(
            job_id=self._ids.next(f"{self.cluster.name}-job"),
            request=request,
            submit_time=self.env.now,
        )
        handle = JobHandle(self.env, job)
        self._queue.append(handle)
        self._all_jobs[job.job_id] = handle
        self._notify()
        return handle

    def cancel(self, job_id: str, reason: str = "cancelled") -> None:
        """Cancel a queued or running job."""
        handle = self._lookup(job_id)
        job = handle.job
        if job.state.terminal:
            return
        if job.state == JobState.QUEUED:
            self._queue.remove(handle)
            job.state = JobState.CANCELLED
            job.end_time = self.env.now
            job.exit_reason = reason
            if not handle.started.triggered:
                handle.started.fail(RuntimeError(f"job {job_id} cancelled while queued"))
                handle.started.defuse()
            handle.finished.succeed(JobState.CANCELLED)
        else:
            self._end_job(handle, JobState.CANCELLED, reason)

    def release(self, job_id: str) -> None:
        """Normal completion: the job's owner relinquishes its nodes."""
        handle = self._lookup(job_id)
        if handle.job.state.terminal:
            return
        if handle.job.state == JobState.QUEUED:
            self.cancel(job_id, reason="released before start")
            return
        self._end_job(handle, JobState.COMPLETED, "released")

    def release_drained(self, job_id: str) -> None:
        """Release a job whose instance the autoscaler drained.

        Identical lifecycle to :meth:`release` but tagged so operators (and
        leak tests) can tell planned scale-downs from walltime expiries and
        crashes in the job history.
        """
        handle = self._lookup(job_id)
        if handle.job.state.terminal:
            return
        self.jobs_drained += 1
        if handle.job.state == JobState.QUEUED:
            self.cancel(job_id, reason="drained before start")
            return
        self._end_job(handle, JobState.COMPLETED, "drained (scale-down)")

    def gpu_seconds(self, now: Optional[float] = None) -> float:
        """GPU-seconds consumed by every job this scheduler ever started.

        Running jobs are charged up to ``now`` (defaults to the current
        simulation time); this is the cost axis autoscaling benchmarks trade
        against latency.
        """
        now = self.env.now if now is None else now
        total = 0.0
        for handle in self._all_jobs.values():
            job = handle.job
            if job.start_time is None:
                continue
            end = job.end_time if job.end_time is not None else now
            gpus = job.request.num_nodes * job.request.gpus_per_node
            total += max(0.0, end - job.start_time) * gpus
        return total

    def get_job(self, job_id: str) -> Job:
        return self._lookup(job_id).job

    @property
    def queued_jobs(self) -> List[Job]:
        return [h.job for h in self._queue]

    @property
    def running_jobs(self) -> List[Job]:
        return [h.job for h in self._running.values()]

    @property
    def all_jobs(self) -> List[Job]:
        return [h.job for h in self._all_jobs.values()]

    def status(self):
        """Cluster status including this scheduler's queue depth (for federation)."""
        return self.cluster.status(
            queued_jobs=len(self._queue), running_jobs=len(self._running)
        )

    # -- scheduling loop ----------------------------------------------------
    def _notify(self) -> None:
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _scheduling_loop(self):
        while True:
            yield self._wakeup
            self._wakeup = self.env.event()
            if self.config.cycle_latency_s > 0:
                yield self.env.timeout(self.config.cycle_latency_s)
            self._schedule_pass()

    def _order_queue(self) -> List[JobHandle]:
        """Queue ordering policy; overridden by subclasses."""
        return list(self._queue)

    def _schedule_pass(self) -> None:
        ordered = self._order_queue()
        free = list(self.cluster.free_nodes)
        started: List[JobHandle] = []
        blocked_head: Optional[JobHandle] = None
        shadow_time: Optional[float] = None
        spare_at_shadow: Optional[int] = None

        for handle in ordered:
            need = handle.job.request.num_nodes
            if blocked_head is None:
                if need <= len(free):
                    nodes, free = free[:need], free[need:]
                    self._start_job(handle, nodes)
                    started.append(handle)
                else:
                    blocked_head = handle
                    if not self.config.backfill:
                        break
                    shadow_time, spare_at_shadow = self._compute_shadow(need, len(free))
            else:
                # EASY backfill: a later job may start now if it fits in the
                # currently free nodes and does not delay the blocked head job.
                if need > len(free):
                    continue
                finishes_before_shadow = (
                    shadow_time is None
                    or self.env.now + handle.job.request.walltime_s <= shadow_time
                )
                within_spare = spare_at_shadow is not None and need <= spare_at_shadow
                if finishes_before_shadow or within_spare:
                    nodes, free = free[:need], free[need:]
                    self._start_job(handle, nodes)
                    started.append(handle)
                    if within_spare and not finishes_before_shadow:
                        spare_at_shadow -= need

        if started:
            # One O(n) rebuild instead of an O(n) remove per started job.
            started_set = set(started)
            self._queue = [h for h in self._queue if h not in started_set]

    def _compute_shadow(self, need: int, currently_free: int):
        """Estimate when the blocked head job could start (EASY backfill)."""
        releases = sorted(
            (
                (h.job.start_time or self.env.now) + h.job.request.walltime_s,
                h.job.request.num_nodes,
            )
            for h in self._running.values()
        )
        available = currently_free
        for when, count in releases:
            available += count
            if available >= need:
                return when, available - need
        return None, None

    # -- job lifecycle -------------------------------------------------------
    def _start_job(self, handle: JobHandle, nodes) -> None:
        job = handle.job
        job.state = JobState.STARTING
        job.start_time = self.env.now
        job.nodes = list(nodes)
        for node in nodes:
            node.allocate(job.job_id)
        self._running[job.job_id] = handle
        self.env.process(self._job_runner(handle))

    def _job_runner(self, handle: JobHandle):
        job = handle.job
        if self.config.prologue_s > 0:
            yield self.env.timeout(self.config.prologue_s)
        if job.state.terminal:
            return
        job.state = JobState.RUNNING
        if not handle.started.triggered:
            handle.started.succeed(list(job.nodes))
        if self.config.enforce_walltime:
            expiry = self.env.timeout(job.request.walltime_s)
            result = yield expiry | handle.finished
            if handle.finished not in result and not job.state.terminal:
                self._end_job(handle, JobState.TIMEOUT, "walltime exceeded")

    def _end_job(self, handle: JobHandle, state: JobState, reason: str) -> None:
        job = handle.job
        if job.state.terminal:
            return
        job.state = state
        job.end_time = self.env.now
        job.exit_reason = reason
        for node in job.nodes:
            node.deallocate()
        self._running.pop(job.job_id, None)
        if not handle.started.triggered:
            handle.started.fail(RuntimeError(f"job {job.job_id} ended before starting: {reason}"))
            handle.started.defuse()
        if not handle.finished.triggered:
            handle.finished.succeed(state)
        self._notify()

    def _lookup(self, job_id: str) -> JobHandle:
        try:
            return self._all_jobs[job_id]
        except KeyError:
            raise NotFoundError(f"Unknown job id {job_id}") from None


class PBSScheduler(SchedulerBase):
    """PBS Professional-like FIFO scheduler with EASY backfill (Sophia's default)."""

    scheduler_type = "pbs"

    def _order_queue(self) -> List[JobHandle]:
        return sorted(self._queue, key=lambda h: h.job.submit_time)


class SlurmScheduler(SchedulerBase):
    """Slurm-like scheduler: priority first, then submission order, with backfill."""

    scheduler_type = "slurm"

    def __init__(self, env, cluster, config: Optional[SchedulerConfig] = None, ids=None):
        config = config or SchedulerConfig(cycle_latency_s=2.0)
        super().__init__(env, cluster, config, ids)

    def _order_queue(self) -> List[JobHandle]:
        return sorted(
            self._queue,
            key=lambda h: (-h.job.request.priority, h.job.submit_time),
        )


class KubernetesScheduler(SchedulerBase):
    """Kubernetes-like provider: near-immediate pod placement, no walltime kill."""

    scheduler_type = "kubernetes"

    def __init__(self, env, cluster, config: Optional[SchedulerConfig] = None, ids=None):
        config = config or SchedulerConfig(
            cycle_latency_s=1.0, prologue_s=3.0, enforce_walltime=False, backfill=False
        )
        super().__init__(env, cluster, config, ids)


class LocalScheduler(SchedulerBase):
    """Bare-metal/local provider: nodes handed out immediately with no queue delay."""

    scheduler_type = "local"

    def __init__(self, env, cluster, config: Optional[SchedulerConfig] = None, ids=None):
        config = config or SchedulerConfig(
            cycle_latency_s=0.0, prologue_s=0.0, enforce_walltime=False, backfill=False
        )
        super().__init__(env, cluster, config, ids)


_SCHEDULERS = {
    "pbs": PBSScheduler,
    "slurm": SlurmScheduler,
    "kubernetes": KubernetesScheduler,
    "local": LocalScheduler,
}


def make_scheduler(
    kind: str,
    env: Environment,
    cluster: Cluster,
    config: Optional[SchedulerConfig] = None,
    ids: Optional[IdGenerator] = None,
) -> SchedulerBase:
    """Factory used by deployment configs (``scheduler: pbs|slurm|kubernetes|local``)."""
    try:
        cls = _SCHEDULERS[kind.lower()]
    except KeyError:
        raise ValueError(
            f"Unknown scheduler kind {kind!r}; expected one of {sorted(_SCHEDULERS)}"
        ) from None
    return cls(env, cluster, config, ids)
