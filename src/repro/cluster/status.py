"""Facility status providers.

The paper's federation layer "queries the publicly available status of each
cluster" before deciding where to route a request (§4.5).  A
:class:`FacilityStatusProvider` wraps a scheduler and exposes that public
view, optionally with a query latency (the real query hits a facility web
service) and a staleness window (status pages are refreshed periodically,
not on every request).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Environment
from .cluster import ClusterStatus
from .scheduler import SchedulerBase

__all__ = ["FacilityStatusProvider"]


@dataclass
class _CachedStatus:
    status: ClusterStatus
    at: float


class FacilityStatusProvider:
    """Publicly queryable cluster status with latency and caching."""

    def __init__(
        self,
        env: Environment,
        scheduler: SchedulerBase,
        query_latency_s: float = 0.2,
        refresh_interval_s: float = 60.0,
    ):
        self.env = env
        self.scheduler = scheduler
        self.query_latency_s = query_latency_s
        self.refresh_interval_s = refresh_interval_s
        self._cache: Optional[_CachedStatus] = None
        self.query_count = 0

    @property
    def cluster_name(self) -> str:
        return self.scheduler.cluster.name

    def snapshot(self) -> ClusterStatus:
        """Instantaneous status (no latency); used internally and in tests."""
        return self.scheduler.status()

    def query(self):
        """Simulation process: query the public status endpoint.

        Yields the query latency, then returns a possibly stale
        :class:`ClusterStatus` (refreshed at most every
        ``refresh_interval_s`` seconds, like a real facility status page).
        """
        self.query_count += 1
        if self.query_latency_s > 0:
            yield self.env.timeout(self.query_latency_s)
        now = self.env.now
        if self._cache is None or now - self._cache.at >= self.refresh_interval_s:
            self._cache = _CachedStatus(status=self.snapshot(), at=now)
        return self._cache.status
