"""repro — reproduction of FIRST (Federated Inference Resource Scheduling Toolkit).

The package is organised as a set of substrates (``sim``, ``cluster``,
``serving``, ``faas``, ``auth``) with the paper's contribution layered on top
(``gateway``, ``federation``, ``core``) plus the workload/metrics/baseline
machinery needed to regenerate every figure and table in the paper's
evaluation (``workload``, ``metrics``, ``baselines``, ``webui``, ``rag``).

The gateway speaks **API v2**: a composable middleware pipeline
(Validation → Auth → RateLimit → ResponseCache → Accounting → Routing →
Dispatch) over a typed request context, typed error envelopes on every
OpenAI-style endpoint, and end-to-end streaming with gateway-observed
TTFT/ITL — see :mod:`repro.gateway` for the stage diagram.

Most users should start from :mod:`repro.core`:

>>> from repro.core import FIRSTDeployment
>>> deployment = FIRSTDeployment.quickstart()
>>> client = deployment.client(user="alice@university.edu")
>>> response = client.chat_completion(
...     "Qwen/Qwen2.5-7B-Instruct",
...     [{"role": "user", "content": "Hello"}],
... )

Streaming responses arrive as OpenAI-style ``chat.completion.chunk`` dicts:

>>> for chunk in client.chat_completion(
...     "Qwen/Qwen2.5-7B-Instruct",
...     [{"role": "user", "content": "Hello"}],
...     stream=True,
... ):
...     print(chunk["choices"][0]["delta"].get("content", ""), end="")
"""

from . import (
    auth,
    baselines,
    cluster,
    common,
    core,
    faas,
    federation,
    gateway,
    metrics,
    rag,
    serving,
    sim,
    webui,
    workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "sim",
    "common",
    "cluster",
    "serving",
    "faas",
    "auth",
    "gateway",
    "federation",
    "workload",
    "metrics",
    "baselines",
    "webui",
    "rag",
    "core",
]
