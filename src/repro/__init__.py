"""repro — reproduction of FIRST (Federated Inference Resource Scheduling Toolkit).

The package is organised as a set of substrates (``sim``, ``cluster``,
``serving``, ``faas``, ``auth``) with the paper's contribution layered on top
(``gateway``, ``federation``, ``core``) plus the workload/metrics/baseline
machinery needed to regenerate every figure and table in the paper's
evaluation (``workload``, ``metrics``, ``baselines``, ``webui``, ``rag``).

Most users should start from :mod:`repro.core`:

>>> from repro.core import FIRSTDeployment
>>> deployment = FIRSTDeployment.quickstart()
>>> client = deployment.client(user="alice@university.edu")
>>> response = client.chat_completion(
...     "Qwen/Qwen2.5-7B-Instruct",
...     [{"role": "user", "content": "Hello"}],
... )
"""

from . import (
    auth,
    baselines,
    cluster,
    common,
    core,
    faas,
    federation,
    gateway,
    metrics,
    rag,
    serving,
    sim,
    webui,
    workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "sim",
    "common",
    "cluster",
    "serving",
    "faas",
    "auth",
    "gateway",
    "federation",
    "workload",
    "metrics",
    "baselines",
    "webui",
    "rag",
    "core",
]
