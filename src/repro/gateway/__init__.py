"""The FIRST Inference Gateway: OpenAI-compatible API over the compute layer.

Implements §3.1 of the paper as **Gateway API v2** — a composable middleware
pipeline over a typed request context::

    request ──▶ Validation ─▶ Auth ─▶ RateLimit ─▶ ResponseCache
                    │                                   │ (hit: short-circuit)
                    ▼                                   ▼
               Accounting ─▶ Routing ─▶ Dispatch ──▶ result

* **Pipeline** (:mod:`.pipeline`, :mod:`.context`) — each concern of the
  request path (validation, token introspection with caching, rate limiting,
  response caching, logging/metrics, federated routing, compute dispatch) is
  one :class:`Middleware` stage; deployments insert/replace stages through
  ``GatewayConfig.middleware_factories`` without touching the application.
* **Typed error envelopes** (:mod:`.responses`) — endpoints return OpenAI-style
  ``{"error": {"type", "code", "message", "status"}}`` bodies mapped from
  :mod:`repro.common.errors`; the client SDK can re-raise them as typed
  exceptions.
* **End-to-end streaming** — ``stream=True`` threads a
  :class:`~repro.serving.StreamChannel` through the compute layer down to the
  serving engine; the gateway timestamps each token (gateway-observed
  TTFT/ITL) and relays OpenAI-style ``chat.completion.chunk`` events to the
  caller::

      for chunk in client.chat_completion(model, messages, stream=True):
          print(chunk["choices"][0]["delta"].get("content", ""), end="")

Plus batch jobs (§4.4), the ``/jobs`` model-status endpoint, PostgreSQL-style
logging and the metrics dashboard.
"""

from .app import InferenceGatewayAPI
from .authlayer import GatewayAuthLayer
from .cache import ResponseCache
from .config import GatewayConfig, RetrievalMode, ServerMode
from .context import GatewayStream, RequestContext
from .database import BatchRecord, GatewayDatabase, RequestLogEntry
from .metrics import GatewayMetrics, ModelUsage
from .pipeline import (
    AccountingMiddleware,
    AuthMiddleware,
    DispatchMiddleware,
    GatewayPipeline,
    Middleware,
    RateLimitMiddleware,
    ResponseCacheMiddleware,
    RoutingMiddleware,
    ValidationMiddleware,
    default_middleware_factories,
)
from .ratelimit import SlidingWindowRateLimiter
from .responses import error_envelope, exception_from_envelope, is_error_envelope

__all__ = [
    "InferenceGatewayAPI",
    "GatewayConfig",
    "ServerMode",
    "RetrievalMode",
    "GatewayAuthLayer",
    "GatewayDatabase",
    "RequestLogEntry",
    "BatchRecord",
    "GatewayMetrics",
    "ModelUsage",
    "SlidingWindowRateLimiter",
    "ResponseCache",
    # -- API v2 pipeline -------------------------------------------------------
    "RequestContext",
    "GatewayStream",
    "GatewayPipeline",
    "Middleware",
    "ValidationMiddleware",
    "AuthMiddleware",
    "RateLimitMiddleware",
    "ResponseCacheMiddleware",
    "AccountingMiddleware",
    "RoutingMiddleware",
    "DispatchMiddleware",
    "default_middleware_factories",
    # -- error envelopes -------------------------------------------------------
    "error_envelope",
    "exception_from_envelope",
    "is_error_envelope",
]
