"""The FIRST Inference Gateway: OpenAI-compatible API over the compute layer.

Implements §3.1 of the paper: authentication/authorization with token
caching, request validation, rate limiting, response caching, conversion of
user requests into compute tasks, federated routing, result retrieval
(futures or legacy polling), PostgreSQL-style logging, batch jobs, the
``/jobs`` model-status endpoint and the metrics dashboard.
"""

from .app import InferenceGatewayAPI
from .authlayer import GatewayAuthLayer
from .cache import ResponseCache
from .config import GatewayConfig, RetrievalMode, ServerMode
from .database import BatchRecord, GatewayDatabase, RequestLogEntry
from .metrics import GatewayMetrics, ModelUsage
from .ratelimit import SlidingWindowRateLimiter

__all__ = [
    "InferenceGatewayAPI",
    "GatewayConfig",
    "ServerMode",
    "RetrievalMode",
    "GatewayAuthLayer",
    "GatewayDatabase",
    "RequestLogEntry",
    "BatchRecord",
    "GatewayMetrics",
    "ModelUsage",
    "SlidingWindowRateLimiter",
    "ResponseCache",
]
