"""Typed error envelopes for the gateway's OpenAI-compatible endpoints.

Gateway API v2 never leaks raw exceptions to HTTP callers: every failure in
the request pipeline is mapped from the :mod:`repro.common.errors` hierarchy
to an OpenAI-style error body::

    {"error": {"type": "rate_limit_error",
               "code": "rate_limit_exceeded",
               "message": "...",
               "status": 429}}

:func:`error_envelope` performs the forward mapping; the client SDK uses
:func:`exception_from_envelope` to optionally re-raise the typed exception
on the caller's side, so both calling styles (dict-inspecting HTTP clients
and exception-based Python code) are supported.
"""

from __future__ import annotations

from typing import Optional, Tuple, Type

from ..common import (
    AuthenticationError,
    AuthorizationError,
    CapacityError,
    ConfigurationError,
    NotFoundError,
    RateLimitError,
    ReproError,
    ValidationError,
)

__all__ = [
    "error_envelope",
    "envelope_for_reason",
    "exception_from_envelope",
    "is_error_envelope",
]

#: Exception class → (OpenAI-style error type, machine-readable code).
_ERROR_TYPES: dict = {
    AuthenticationError: ("authentication_error", "invalid_token"),
    AuthorizationError: ("permission_error", "access_denied"),
    ValidationError: ("invalid_request_error", "invalid_request"),
    RateLimitError: ("rate_limit_error", "rate_limit_exceeded"),
    NotFoundError: ("not_found_error", "not_found"),
    CapacityError: ("overloaded_error", "no_capacity"),
    ConfigurationError: ("api_error", "misconfigured"),
}

#: Error type string → exception class (for the client-side re-raise).
_TYPE_TO_EXCEPTION: dict = {
    type_name: cls for cls, (type_name, _code) in _ERROR_TYPES.items()
}


def _classify(exc: BaseException) -> Tuple[str, str, int]:
    for cls in type(exc).__mro__:
        if cls in _ERROR_TYPES:
            type_name, code = _ERROR_TYPES[cls]
            return type_name, code, getattr(cls, "status_code", 500)
    return "internal_error", "internal_error", 500


def error_envelope(exc: BaseException) -> dict:
    """Map an exception onto the OpenAI-style ``{"error": {...}}`` body."""
    type_name, code, status = _classify(exc)
    return {
        "error": {
            "type": type_name,
            "code": code,
            "message": str(exc) or type(exc).__name__,
            "status": status,
        }
    }


def envelope_for_reason(reason: str) -> dict:
    """Map an engine/endpoint failure-reason *string* onto a typed envelope.

    Per-request failures inside a batch surface as strings (the engine's
    ``InferenceResult.error``), not exceptions; this classifies the known
    reasons onto the same typed envelope vocabulary the interactive
    endpoints use, so batch error reporting matches the rest of the API.
    """
    lowered = reason.lower()
    if "kv cache" in lowered or "capacity" in lowered:
        return error_envelope(CapacityError(reason))
    if "engine stopped" in lowered or "not running" in lowered:
        return error_envelope(CapacityError(reason))
    if "not hosted" in lowered or "unknown model" in lowered:
        return error_envelope(NotFoundError(reason))
    return error_envelope(RuntimeError(reason))


def is_error_envelope(obj) -> bool:
    """Whether ``obj`` is a response body produced by :func:`error_envelope`."""
    return isinstance(obj, dict) and isinstance(obj.get("error"), dict)


def exception_from_envelope(envelope: dict) -> ReproError:
    """Reconstruct the typed exception an error envelope was mapped from.

    Unknown types fall back to the :class:`ReproError` base class, so a
    client talking to a newer gateway still raises something sensible.
    """
    body: Optional[dict] = envelope.get("error") if isinstance(envelope, dict) else None
    if not isinstance(body, dict):
        raise ValueError(f"Not an error envelope: {envelope!r}")
    cls: Type[ReproError] = _TYPE_TO_EXCEPTION.get(body.get("type"), ReproError)
    return cls(body.get("message", "gateway error"))
