"""The Inference Gateway API application.

This is the OpenAI-compatible entry point of FIRST (§3.1): it validates the
caller's Globus-Auth-like token, validates the request body, applies rate
limits and optional response caching, converts the request into a
Globus-Compute-like task, picks a federated endpoint, retrieves the result
(via futures or legacy polling) and logs everything to the database.

All request-handling methods are simulation processes (generators): drive
them with ``env.process(...)`` or through the client SDK in
:mod:`repro.core.client`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..auth import GlobusAuthLikeService, TokenInfo
from ..common import (
    IdGenerator,
    NotFoundError,
    ValidationError,
)
from ..faas import HANDLER_BATCH, HANDLER_CHAT, HANDLER_EMBEDDING, ComputeClient
from ..federation import FederationRouter
from ..serving import (
    InferenceRequest,
    InferenceResult,
    ModelCatalog,
    RequestKind,
    estimate_tokens,
)
from ..sim import Environment, Event, Resource
from ..workload.batchfile import parse_batch_lines
from .authlayer import GatewayAuthLayer
from .cache import ResponseCache
from .config import GatewayConfig, RetrievalMode, ServerMode
from .database import BatchRecord, GatewayDatabase, RequestLogEntry
from .metrics import GatewayMetrics
from .ratelimit import SlidingWindowRateLimiter

__all__ = ["InferenceGatewayAPI"]


@dataclass
class _RoutingCacheEntry:
    endpoint_id: str
    cached_at: float


class InferenceGatewayAPI:
    """The gateway application (Django-Ninja + Gunicorn/Uvicorn equivalent)."""

    def __init__(
        self,
        env: Environment,
        auth: GlobusAuthLikeService,
        compute_client: ComputeClient,
        router: FederationRouter,
        catalog: ModelCatalog,
        function_ids: Dict[str, str],
        config: Optional[GatewayConfig] = None,
        database: Optional[GatewayDatabase] = None,
        ids: Optional[IdGenerator] = None,
    ):
        self.env = env
        self.config = config or GatewayConfig()
        self.auth_service = auth
        self.compute_client = compute_client
        self.router = router
        self.catalog = catalog
        self.function_ids = dict(function_ids)
        self.db = database or GatewayDatabase()
        self._ids = ids or IdGenerator()

        self.auth_layer = GatewayAuthLayer(
            env,
            auth,
            cache_enabled=self.config.cache_token_introspection,
            cache_ttl_s=self.config.token_cache_ttl_s,
            uncached_connection_setup_s=self.config.uncached_connection_setup_s,
        )
        self.rate_limiter = SlidingWindowRateLimiter(
            self.config.rate_limit_requests, self.config.rate_limit_window_s
        )
        self.metrics = GatewayMetrics(env)
        self.response_cache = (
            ResponseCache(self.config.response_cache_ttl_s)
            if self.config.enable_response_cache
            else None
        )
        self.workers = Resource(env, capacity=self.config.worker_slots())
        self._routing_cache: Dict[str, _RoutingCacheEntry] = {}

    # ------------------------------------------------------------------ helpers
    def _function_for(self, handler: str) -> str:
        try:
            return self.function_ids[handler]
        except KeyError:
            raise NotFoundError(f"No registered function for handler {handler!r}") from None

    def _worker_slot(self, duration_s: float):
        """Hold a worker slot for ``duration_s`` of CPU work (async mode)."""
        with self.workers.request() as slot:
            yield slot
            if duration_s > 0:
                yield self.env.timeout(duration_s)

    def _route(self, model: str):
        """Pick a federated endpoint for ``model`` (with a short-lived cache)."""
        cached = self._routing_cache.get(model)
        now = self.env.now
        if cached is not None and now - cached.cached_at < self.config.routing_cache_ttl_s:
            return self.router.registry.get(cached.endpoint_id).endpoint
        endpoint = yield from self.router.select(model)
        self._routing_cache[model] = _RoutingCacheEntry(endpoint.endpoint_id, now)
        return endpoint

    def _validate_model(self, model: Optional[str]) -> str:
        if not model:
            raise ValidationError("Request body is missing 'model'")
        if model not in self.catalog:
            raise ValidationError(f"Unknown model: {model}")
        return self.catalog.get(model).name

    # ------------------------------------------------------------- typed request path
    def submit_request(self, access_token: str, request: InferenceRequest) -> Event:
        """Submit a typed :class:`InferenceRequest`; returns an event with the
        :class:`InferenceResult` (the benchmark client's target protocol)."""
        done = self.env.event()
        self.env.process(self._handle(access_token, request, done))
        return done

    def _handle(self, access_token: str, request: InferenceRequest, done: Event):
        cfg = self.config
        model_name = request.model
        sync_slot = None
        try:
            model_name = self._validate_model(request.model)
            request.model = model_name
            if cfg.server_mode == ServerMode.SYNC_LEGACY:
                # A synchronous worker blocks for the entire request.
                sync_slot = self.workers.request()
                yield sync_slot

            # Ingress CPU work (parse/validate/convert).
            if cfg.server_mode == ServerMode.ASYNC:
                yield from self._worker_slot(cfg.ingress_processing_s)
            else:
                yield self.env.timeout(cfg.ingress_processing_s)

            # Authentication + authorization (Optimization 2 path).
            info = yield from self.auth_layer.authenticate(access_token)
            self.auth_layer.authorize(info, f"model:{model_name}")
            request.user = info.username
            self.rate_limiter.check(info.username, self.env.now)

            # Response cache.
            cache_key = None
            if self.response_cache is not None and request.kind != RequestKind.EMBEDDING:
                cache_key = ResponseCache.key_for(
                    model_name, request.prompt_text, request.max_output_tokens, request.params
                )
                cached = self.response_cache.get(cache_key, self.env.now)
                if cached is not None:
                    self.metrics.request_started(model_name, request.prompt_tokens)
                    self.metrics.request_completed(model_name, cached.output_tokens, 0.0)
                    self._finish(done, cached, sync_slot)
                    return

            # Bookkeeping.
            self.metrics.request_started(model_name, request.prompt_tokens)
            entry = RequestLogEntry(
                request_id=request.request_id,
                user=info.username,
                model=model_name,
                endpoint="",
                kind=request.kind.value,
                submitted_at=self.env.now,
                prompt_tokens=request.prompt_tokens,
            )
            if cfg.db_write_s > 0:
                yield self.env.timeout(cfg.db_write_s)
            self.db.log_request(entry)

            # Routing + dispatch to the compute layer.
            endpoint = yield from self._route(model_name)
            entry.endpoint = endpoint.endpoint_id
            handler = (
                HANDLER_EMBEDDING if request.kind == RequestKind.EMBEDDING else HANDLER_CHAT
            )
            future = self.compute_client.submit(
                self._function_for(handler),
                endpoint.endpoint_id,
                {"request": request},
                submitter=info.username,
            )
            if cfg.retrieval_mode == RetrievalMode.FUTURES:
                result: InferenceResult = yield from self.compute_client.wait_future(future)
            else:
                result = yield from self.compute_client.wait_polling(future)

            # Egress CPU work (serialise the response).
            if cfg.server_mode == ServerMode.ASYNC:
                yield from self._worker_slot(cfg.egress_processing_s)
            else:
                yield self.env.timeout(cfg.egress_processing_s)

            latency = self.env.now - entry.submitted_at
            self.db.complete_request(entry, result.output_tokens, self.env.now,
                                     status="completed" if result.success else "failed",
                                     error=result.error)
            if result.success:
                self.metrics.request_completed(model_name, result.output_tokens, latency)
            else:
                self.metrics.request_failed(model_name)
            if cache_key is not None and result.success:
                self.response_cache.put(cache_key, result, self.env.now)
            self._finish(done, result, sync_slot)
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            self._classify_failure(exc, model_name)
            if sync_slot is not None:
                self.workers.release(sync_slot)
            if not done.triggered:
                done.fail(exc)
                done.defuse()

    def _finish(self, done: Event, result: InferenceResult, sync_slot) -> None:
        if sync_slot is not None:
            self.workers.release(sync_slot)
        if not done.triggered:
            done.succeed(result)

    def _classify_failure(self, exc: Exception, model: str) -> None:
        from ..common import AuthenticationError, AuthorizationError, RateLimitError

        if isinstance(exc, (AuthenticationError, AuthorizationError)):
            self.metrics.auth_failures += 1
        elif isinstance(exc, RateLimitError):
            self.metrics.rate_limited += 1
        elif isinstance(exc, ValidationError):
            self.metrics.validation_failures += 1

    # ------------------------------------------------------------- OpenAI-style endpoints
    def chat_completions(self, access_token: str, body: dict):
        """``POST /v1/chat/completions`` — returns the OpenAI response dict."""
        request = self._request_from_body(body, RequestKind.CHAT_COMPLETION)
        result = yield self.submit_request(access_token, request)
        return result.to_openai_dict()

    def completions(self, access_token: str, body: dict):
        """``POST /v1/completions``."""
        request = self._request_from_body(body, RequestKind.COMPLETION)
        result = yield self.submit_request(access_token, request)
        return result.to_openai_dict()

    def embeddings(self, access_token: str, body: dict):
        """``POST /v1/embeddings``."""
        request = self._request_from_body(body, RequestKind.EMBEDDING)
        result = yield self.submit_request(access_token, request)
        return result.to_openai_dict()

    def _request_from_body(self, body: dict, kind: RequestKind) -> InferenceRequest:
        model = self._validate_model(body.get("model"))
        if kind == RequestKind.CHAT_COMPLETION:
            messages = body.get("messages")
            if not messages:
                raise ValidationError("chat completion requires 'messages'")
            prompt_text = " ".join(str(m.get("content", "")) for m in messages)
        elif kind == RequestKind.COMPLETION:
            prompt_text = str(body.get("prompt", ""))
            if not prompt_text:
                raise ValidationError("completion requires 'prompt'")
        else:
            prompt_text = str(body.get("input", ""))
            if not prompt_text:
                raise ValidationError("embedding requires 'input'")
        max_tokens = int(body.get("max_tokens", self.config.default_max_tokens))
        if max_tokens <= 0 or max_tokens > self.config.max_allowed_output_tokens:
            raise ValidationError(
                f"max_tokens must be in (0, {self.config.max_allowed_output_tokens}]"
            )
        prompt_tokens = int(body.get("prompt_tokens_hint") or estimate_tokens(prompt_text))
        params = {
            k: body[k]
            for k in ("temperature", "top_p", "frequency_penalty", "presence_penalty", "seed")
            if k in body
        }
        return InferenceRequest(
            request_id=body.get("request_id") or self._ids.next("gw-req"),
            model=model,
            prompt_tokens=prompt_tokens,
            max_output_tokens=1 if kind == RequestKind.EMBEDDING else max_tokens,
            kind=kind,
            prompt_text=prompt_text,
            params=params,
            stream=bool(body.get("stream", False)),
        )

    # ------------------------------------------------------------- batches (§4.4)
    def create_batch(self, access_token: str, input_jsonl: str,
                     endpoint_id: Optional[str] = None):
        """``POST /v1/batches`` — validate the JSONL input and launch a batch job."""
        info = yield from self.auth_layer.authenticate(access_token)
        requests = parse_batch_lines(input_jsonl, default_user=info.username)
        models = {r.model for r in requests}
        if len(models) != 1:
            raise ValidationError("All requests in a batch must target the same model")
        model = self._validate_model(next(iter(models)))
        self.auth_layer.authorize(info, f"model:{model}")
        for request in requests:
            request.model = model
            request.user = info.username

        if endpoint_id is None:
            endpoint = yield from self._route(model)
        else:
            endpoint = self.router.registry.get(endpoint_id).endpoint

        record = BatchRecord(
            batch_id=self._ids.next("batch"),
            user=info.username,
            model=model,
            endpoint=endpoint.endpoint_id,
            num_requests=len(requests),
            status="in_progress",
            created_at=self.env.now,
        )
        self.db.insert_batch(record)
        future = self.compute_client.submit(
            self._function_for(HANDLER_BATCH),
            endpoint.endpoint_id,
            {"model": model, "requests": requests},
            submitter=info.username,
        )
        self.env.process(self._track_batch(record, future))
        return record.to_dict()

    def _track_batch(self, record: BatchRecord, future):
        try:
            run_result = yield from self.compute_client.wait_future(future)
        except Exception as exc:  # noqa: BLE001
            record.status = "failed"
            record.error = str(exc)
            record.completed_at = self.env.now
            return
        record.status = "completed"
        record.completed_at = self.env.now
        record.completed_requests = run_result.num_completed
        record.failed_requests = record.num_requests - run_result.num_completed
        record.output_tokens = run_result.total_output_tokens
        record.results = run_result.results
        user = self.db.upsert_user(record.user)
        user["tokens"] += record.output_tokens

    def get_batch(self, access_token: str, batch_id: str):
        """``GET /v1/batches/{id}``."""
        yield from self.auth_layer.authenticate(access_token)
        record = self.db.get_batch(batch_id)
        if record is None:
            raise NotFoundError(f"Unknown batch id {batch_id}")
        return record.to_dict()

    # ------------------------------------------------------------- informational endpoints
    def list_models(self) -> dict:
        """``GET /v1/models`` — models hosted anywhere in the federation."""
        models = self.router.registry.hosted_models()
        return {
            "object": "list",
            "data": [{"id": m, "object": "model"} for m in sorted(models)],
        }

    def jobs(self) -> List[dict]:
        """``GET /jobs`` — model/instance states across the federation (§4.3)."""
        statuses = []
        for entry in self.router.registry.entries:
            for status in entry.endpoint.model_status():
                statuses.append(status.to_dict())
        return statuses

    def dashboard(self) -> dict:
        """``GET /metrics`` — real-time monitoring summary (§3.1.1)."""
        extra = {
            "database": self.db.usage_summary(),
            "auth_cache": {
                "hits": self.auth_layer.cache_hits,
                "misses": self.auth_layer.cache_misses,
            },
            "queued_at_relay": self.compute_client.relay.queued_tasks,
        }
        if self.response_cache is not None:
            extra["response_cache"] = {
                "hits": self.response_cache.hits,
                "misses": self.response_cache.misses,
            }
        return self.metrics.dashboard(extra=extra)
